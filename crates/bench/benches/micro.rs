//! Criterion micro-benchmarks: the per-frame costs of the system's hot
//! paths. Not figures from the paper — engineering due diligence showing
//! the sync layer's overhead is negligible next to a 16.7 ms frame budget.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use coplay_clock::{SimDuration, SimTime};
use coplay_games::{rom_pong, Brawler, GameId, Pong};
use coplay_net::{NetemChannel, NetemConfig};
use coplay_sim::{run_experiment, ExperimentConfig};
use coplay_sync::{InputMsg, InputSync, Message, SyncConfig};
use coplay_vm::{Console, InputWord, Machine};

fn bench_machines(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_step_frame");
    g.bench_function("pong_native", |b| {
        let mut m = Pong::new();
        let mut f = 0u32;
        b.iter(|| {
            f = f.wrapping_add(1);
            m.step_frame(black_box(InputWord(f & 0x3F)));
        });
    });
    g.bench_function("brawler_native", |b| {
        let mut m = Brawler::new();
        let mut f = 0u32;
        b.iter(|| {
            f = f.wrapping_add(1);
            m.step_frame(black_box(InputWord(f & 0x3F3F)));
        });
    });
    g.bench_function("rom_pong_emulated_cpu", |b| {
        let mut m = Console::new(rom_pong());
        let mut f = 0u32;
        b.iter(|| {
            f = f.wrapping_add(1);
            m.step_frame(black_box(InputWord(f & 0x3F)));
        });
    });
    g.finish();

    c.bench_function("machine_state_hash/brawler", |b| {
        let mut m = Brawler::new();
        m.step_frame(InputWord::NONE);
        b.iter(|| black_box(m.state_hash()));
    });
    c.bench_function("machine_save_state/console", |b| {
        let m = Console::new(rom_pong());
        b.iter(|| black_box(m.save_state().len()));
    });
}

fn bench_wire(c: &mut Criterion) {
    let msg = Message::Input(InputMsg {
        from: 1,
        ack: 1000,
        first: 1001,
        inputs: (0..8).map(InputWord).collect(),
    });
    let encoded = msg.encode();
    c.bench_function("wire_encode/input_8_frames", |b| {
        b.iter(|| black_box(msg.encode().len()));
    });
    c.bench_function("wire_decode/input_8_frames", |b| {
        b.iter(|| black_box(Message::decode(&encoded).unwrap()));
    });
}

fn bench_sync_engine(c: &mut Criterion) {
    // One full lockstep frame: begin, exchange, take, on both engines.
    c.bench_function("sync_engine/lockstep_frame_pair", |b| {
        b.iter_batched(
            || {
                let mut cfg0 = SyncConfig::two_player(0);
                let mut cfg1 = SyncConfig::two_player(1);
                cfg0.send_interval = SimDuration::ZERO;
                cfg1.send_interval = SimDuration::ZERO;
                (InputSync::new(cfg0), InputSync::new(cfg1), 0u64)
            },
            |(mut a, mut b, _)| {
                for f in 0..64u64 {
                    let t = SimTime::from_micros(f * 16_667);
                    a.begin_frame(f, InputWord(1), t);
                    b.begin_frame(f, InputWord(0x0100), t);
                    for (_, m) in a.outgoing(t) {
                        b.on_message(&m, t);
                    }
                    for (_, m) in b.outgoing(t) {
                        a.on_message(&m, t);
                    }
                    black_box((a.take(), b.take()));
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_netem(c: &mut Criterion) {
    c.bench_function("netem_process/impaired_packet", |b| {
        let cfg = NetemConfig::new()
            .delay(SimDuration::from_millis(50))
            .jitter(SimDuration::from_millis(5))
            .loss(0.02)
            .duplicate(0.01)
            .tx_slice(SimDuration::from_millis(10));
        let mut ch = NetemChannel::new(cfg, 42);
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            black_box(ch.process(SimTime::from_micros(t), 64));
        });
    });
}

fn bench_full_experiment(c: &mut Criterion) {
    // Whole-system throughput: simulated frames per wall second.
    let mut g = c.benchmark_group("experiment_600_frames");
    g.sample_size(10);
    g.bench_function("rtt_60ms_pong", |b| {
        b.iter(|| {
            let mut cfg = ExperimentConfig::with_rtt(SimDuration::from_millis(60));
            cfg.frames = 600;
            cfg.game = GameId::Pong;
            black_box(run_experiment(cfg).unwrap().converged)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_machines,
    bench_wire,
    bench_sync_engine,
    bench_netem,
    bench_full_experiment
);
criterion_main!(benches);
