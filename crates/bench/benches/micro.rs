//! Micro-benchmarks: the per-frame costs of the system's hot paths. Not
//! figures from the paper — engineering due diligence showing the sync
//! layer's overhead is negligible next to a 16.7 ms frame budget.
//!
//! Self-contained harness (`harness = false`): each benchmark is timed
//! with `std::time::Instant` over enough iterations to amortize clock
//! overhead, reporting ns/iter. Run with `cargo bench -p coplay-bench`.

use std::hint::black_box;
use std::time::Instant;

use coplay_clock::{SimDuration, SimTime};
use coplay_games::{rom_pong, Brawler, GameId, Pong};
use coplay_net::{NetemChannel, NetemConfig};
use coplay_sim::{run_experiment, ExperimentConfig};
use coplay_sync::{InputMsg, InputSync, Message, SyncConfig};
use coplay_vm::{Console, InputWord, Machine};

/// Times `f` over `iters` iterations (after a warmup tenth) and prints
/// a `name: X ns/iter` line.
#[allow(clippy::disallowed_methods)] // the bench harness must time itself
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<44} {per_iter:>12.1} ns/iter   ({iters} iters)");
}

fn bench_machines() {
    let mut m = Pong::new();
    let mut f = 0u32;
    bench("machine_step_frame/pong_native", 100_000, || {
        f = f.wrapping_add(1);
        m.step_frame(black_box(InputWord(f & 0x3F)));
    });

    let mut m = Brawler::new();
    let mut f = 0u32;
    bench("machine_step_frame/brawler_native", 100_000, || {
        f = f.wrapping_add(1);
        m.step_frame(black_box(InputWord(f & 0x3F3F)));
    });

    let mut m = Console::new(rom_pong());
    let mut f = 0u32;
    bench("machine_step_frame/rom_pong_emulated_cpu", 20_000, || {
        f = f.wrapping_add(1);
        m.step_frame(black_box(InputWord(f & 0x3F)));
    });

    let mut m = Brawler::new();
    m.step_frame(InputWord::NONE);
    bench("machine_state_hash/brawler", 100_000, || {
        black_box(m.state_hash());
    });

    let m = Console::new(rom_pong());
    bench("machine_save_state/console", 50_000, || {
        black_box(m.save_state().len());
    });
}

fn bench_wire() {
    let msg = Message::Input(InputMsg {
        from: 1,
        ack: 1000,
        first: 1001,
        inputs: (0..8).map(InputWord).collect(),
    });
    let encoded = msg.encode();
    bench("wire_encode/input_8_frames", 200_000, || {
        black_box(msg.encode().len());
    });
    bench("wire_decode/input_8_frames", 200_000, || {
        black_box(Message::decode(&encoded).unwrap());
    });
}

fn bench_sync_engine() {
    // One full lockstep frame: begin, exchange, take, on both engines.
    bench("sync_engine/lockstep_frame_pair_x64", 1_000, || {
        let mut cfg0 = SyncConfig::two_player(0);
        let mut cfg1 = SyncConfig::two_player(1);
        cfg0.send_interval = SimDuration::ZERO;
        cfg1.send_interval = SimDuration::ZERO;
        let mut a = InputSync::new(cfg0);
        let mut b = InputSync::new(cfg1);
        for f in 0..64u64 {
            let t = SimTime::from_micros(f * 16_667);
            a.begin_frame(f, InputWord(1), t);
            b.begin_frame(f, InputWord(0x0100), t);
            for (_, m) in a.outgoing(t) {
                b.on_message(&m, t);
            }
            for (_, m) in b.outgoing(t) {
                a.on_message(&m, t);
            }
            black_box((a.take(), b.take()));
        }
    });
}

fn bench_netem() {
    let cfg = NetemConfig::new()
        .delay(SimDuration::from_millis(50))
        .jitter(SimDuration::from_millis(5))
        .loss(0.02)
        .duplicate(0.01)
        .tx_slice(SimDuration::from_millis(10));
    let mut ch = NetemChannel::new(cfg, 42);
    let mut t = 0u64;
    bench("netem_process/impaired_packet", 500_000, || {
        t += 100;
        black_box(ch.process(SimTime::from_micros(t), 64));
    });
}

fn bench_full_experiment() {
    // Whole-system throughput: simulated frames per wall second.
    bench("experiment_600_frames/rtt_60ms_pong", 10, || {
        let mut cfg = ExperimentConfig::with_rtt(SimDuration::from_millis(60));
        cfg.frames = 600;
        cfg.game = GameId::Pong;
        black_box(run_experiment(cfg).unwrap().converged);
    });
}

fn main() {
    println!("coplay micro-benchmarks (ns/iter, lower is better)");
    bench_machines();
    bench_wire();
    bench_sync_engine();
    bench_netem();
    bench_full_experiment();
}
