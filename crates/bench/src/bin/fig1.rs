//! Regenerates **Figure 1** of the paper: average frame time and average
//! deviation of frame time vs. RTT (Experiment Series 1, §4.1.1).
//!
//! The paper sweeps RTT 0–200 ms in 10 ms steps and 200–400 ms in 50 ms
//! steps, recording 3600 frame-begin stamps per site per point, then plots
//! the per-site mean frame time and the footnote-10 average deviation.
//!
//! Expected shape (paper): ~17 ms / ~0 ms deviation up to an RTT threshold
//! around 140 ms; a deviation spike at the inflection just past the
//! threshold; slower, stretched frames beyond.
//!
//! Run: `cargo run --release -p coplay-bench --bin fig1 [--quick]`

use coplay_bench::{banner, figure1_json, write_results_json, Options};
use coplay_sim::{
    format_figure1, paper_rtt_points, run_sweep_parallel, threshold_rtt, ExperimentConfig,
};

fn main() {
    let opts = Options::from_env();
    banner("Figure 1 — Frame rates and smoothness vs RTT", &opts);
    let base = opts.apply(ExperimentConfig::default());
    let rows = run_sweep_parallel(
        &base,
        &paper_rtt_points(),
        opts.sweep_threads(),
        |rtt, r| {
            eprintln!(
                "  rtt {:3}ms: frame {:6.2}ms, deviation {:5.2}ms, converged {}",
                rtt.as_millis(),
                r.master_frame_time_ms(),
                r.worst_deviation_ms(),
                r.converged
            );
        },
    )
    .expect("sweep failed");
    println!("{}", format_figure1(&rows));
    let threshold = threshold_rtt(&rows, 1_000.0 / 60.0, 0.5);
    match threshold {
        Some(th) => println!(
            "Measured RTT threshold (last point at full 60 FPS): {} (paper: ~140ms)",
            th
        ),
        None => println!("No full-speed point found (unexpected)"),
    }
    let json = figure1_json(&opts, &rows, threshold.map(|t| t.as_millis()));
    match write_results_json("BENCH_fig1.json", &json) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
