//! Regenerates **Figure 2** of the paper: average absolute inter-site
//! frame-begin time difference vs. RTT (Experiment Series 2, §4.1.2).
//!
//! Both sites stamp every frame begin to a LAN time server; the per-frame
//! difference of the two stamps, averaged in absolute value (footnote 11),
//! measures how closely the replicas run.
//!
//! Expected shape (paper): under 10 ms up to ~130 ms RTT, rising sharply
//! beyond the ~140 ms threshold.
//!
//! Run: `cargo run --release -p coplay-bench --bin fig2 [--quick]`

use coplay_bench::{banner, figure2_json, write_results_json, Options};
use coplay_sim::{format_figure2, paper_rtt_points, run_sweep_parallel, ExperimentConfig};

fn main() {
    let opts = Options::from_env();
    banner("Figure 2 — Synchrony between two sites vs RTT", &opts);
    let base = opts.apply(ExperimentConfig::default());
    let rows = run_sweep_parallel(
        &base,
        &paper_rtt_points(),
        opts.sweep_threads(),
        |rtt, r| {
            eprintln!(
                "  rtt {:3}ms: |Δ| {:6.2}ms, converged {}",
                rtt.as_millis(),
                r.synchrony_ms,
                r.converged
            );
        },
    )
    .expect("sweep failed");
    println!("{}", format_figure2(&rows));
    let below_10 = rows
        .iter()
        .take_while(|r| r.result.synchrony_ms < 10.0)
        .last()
        .map(|r| r.rtt);
    if let Some(rtt) = below_10 {
        println!("Synchrony stays under 10ms up to RTT {rtt} (paper: up to ~130ms)");
    }
    let json = figure2_json(&opts, &rows);
    match write_results_json("BENCH_fig2.json", &json) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
