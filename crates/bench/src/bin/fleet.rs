//! Fleet load-generator for the relay: thousands of in-process clients.
//!
//! Drives N two-player sessions (plus a spectator on every 8th) through
//! one `RelayCore`, with every client behind its own pair of netem-impaired
//! links (delay + jitter + loss), inside a discrete-event simulation. Each
//! player paces one broadcast forward every 20 ms — the sync protocol's
//! send cadence — with the send timestamp embedded, so delivery latency
//! through link + relay + link is measured exactly. Writes
//! `results/BENCH_fleet.json` with sessions/sec, p99 forward latency, and
//! drop rate.
//!
//! Run: `cargo run --release -p coplay-bench --bin fleet [--sessions N] [--quick]`
//!
//! Perf-regression guard: `--check <baseline.json>` compares against a
//! committed run and exits non-zero when throughput halves or latency/drops
//! double (the hotpath guard's shape, with direction per metric). The
//! reference lives at `results/fleet_baseline.json`.

// This harness times the event loop from outside the determinism fence, so
// the wall-clock ban does not apply (see detlint policy for
// crates/bench/src/bin/).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use coplay_bench::write_results_json;
use coplay_clock::{EventQueue, SimDuration, SimTime};
use coplay_net::bytes::{Buf, BufMut};
use coplay_net::{NetemChannel, NetemConfig};
use coplay_relay::wire::{self, RelayMessage};
use coplay_relay::{RelayConfig, RelayCore};

/// Throughput metrics fail the guard below `baseline / REGRESSION_FACTOR`;
/// cost metrics fail above `baseline * REGRESSION_FACTOR` (plus a floor).
const REGRESSION_FACTOR: u64 = 2;

/// Absolute slack so near-zero baselines (e.g. sub-ms latencies or a
/// zero drop rate) cannot trip the guard on noise alone.
const NOISE_FLOOR: u64 = 500;

/// The sync protocol's outbound cadence (§4.2: one message per 20 ms).
const SEND_EVERY: SimDuration = SimDuration::from_millis(20);

/// Spectators idle between heartbeats this long (well under the TTL).
const HEARTBEAT_EVERY: SimDuration = SimDuration::from_secs(5);

/// A spectator joins every this-many sessions.
const SPECTATOR_EVERY: usize = 8;

/// Spectators register with this site number (players use 0 and 1).
const SPECTATOR_SITE: u8 = 9;

/// Bytes of padding after the 12-byte seq + timestamp header, bringing the
/// payload to a typical input-batch size.
const PAYLOAD_PAD: usize = 20;

struct FleetOptions {
    sessions: usize,
    forwards_per_player: u32,
    seed: u64,
    check_path: Option<String>,
}

impl FleetOptions {
    fn parse(args: &[String]) -> FleetOptions {
        let mut o = FleetOptions {
            sessions: 1000,
            forwards_per_player: 150,
            seed: 0x0F1E_E7F1,
            check_path: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--sessions" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        o.sessions = v;
                    }
                }
                "--forwards" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        o.forwards_per_player = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        o.seed = v;
                    }
                }
                "--check" => o.check_path = it.next().cloned(),
                "--quick" => {
                    o.sessions = 64;
                    o.forwards_per_player = 50;
                }
                _ => {}
            }
        }
        o
    }
}

/// What a simulated client is.
struct Client {
    session: u32,
    site: u8,
    spectator: bool,
    registered: bool,
    /// Forwards sent so far (players only).
    sent: u32,
    /// Deliveries received, with latency accounting below.
    received: u64,
    up: NetemChannel,
    down: NetemChannel,
}

/// Simulation events: a datagram landing at the relay or at a client, and
/// a client's paced wakeup.
enum Ev {
    ToRelay { client: u32, bytes: Vec<u8> },
    ToClient { client: u32, bytes: Vec<u8> },
    Tick { client: u32 },
}

/// One measured metric, rendered as a `{"key": ..., "value": ...}` row.
struct Metric {
    key: &'static str,
    value: u64,
}

/// The impairment each direction of every client link suffers: a coastal
/// last-mile — 15 ms one-way, a few ms of jitter, 1% loss.
fn link_config() -> NetemConfig {
    NetemConfig::new()
        .delay(SimDuration::from_millis(15))
        .jitter(SimDuration::from_millis(3))
        .loss(0.01)
}

fn forward_payload(seq: u32, now: SimTime) -> Vec<u8> {
    let mut p = Vec::with_capacity(12 + PAYLOAD_PAD);
    p.put_u32_le(seq);
    p.put_u64_le(now.as_micros());
    p.extend(std::iter::repeat_n(0xABu8, PAYLOAD_PAD));
    p
}

/// Extracts the embedded send time from a delivered payload.
fn payload_send_time(mut p: &[u8]) -> Option<SimTime> {
    if p.remaining() < 12 {
        return None;
    }
    let _seq = p.get_u32_le();
    Some(SimTime::from_micros(p.get_u64_le()))
}

struct FleetResult {
    metrics: Vec<Metric>,
}

fn run_fleet(o: &FleetOptions) -> FleetResult {
    let n_clients = o.sessions * 2 + o.sessions.div_ceil(SPECTATOR_EVERY);
    let mut core: RelayCore<u32> = RelayCore::new(RelayConfig {
        max_sessions: o.sessions.max(16),
        ..RelayConfig::default()
    });
    let mut clients: Vec<Client> = Vec::with_capacity(n_clients);
    let mut queue: EventQueue<Ev> = EventQueue::new();

    let make_client = |session: u32, site: u8, spectator: bool, idx: usize| Client {
        session,
        site,
        spectator,
        registered: false,
        sent: 0,
        received: 0,
        up: NetemChannel::new(link_config(), o.seed ^ (idx as u64).wrapping_mul(0x9E37)),
        down: NetemChannel::new(link_config(), o.seed ^ (idx as u64).wrapping_mul(0x85EB)),
    };
    for s in 0..o.sessions {
        for player in 0..2u8 {
            clients.push(make_client(s as u32, player, false, clients.len()));
        }
        if s % SPECTATOR_EVERY == 0 {
            clients.push(make_client(s as u32, SPECTATOR_SITE, true, clients.len()));
        }
    }
    // Stagger starts so the relay sees a ragged arrival wave, not one
    // synchronized burst per tick.
    for (i, _) in clients.iter().enumerate() {
        queue.schedule(
            SimTime::from_micros((i as u64 % 977) * 41),
            Ev::Tick { client: i as u32 },
        );
    }

    let mut latencies_us: Vec<u64> = Vec::new();
    let mut expected_deliveries: u64 = 0;
    // The run's horizon: enough sim time to register (staggered starts,
    // lossy handshakes) and pace out every forward, plus in-flight slack.
    // Ticks past the horizon are not rescheduled, so the queue drains.
    let horizon = SimTime::from_millis(500)
        + SEND_EVERY * (o.forwards_per_player as u64 + 2)
        + SimDuration::from_secs(1);
    let wall_start = Instant::now();

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Tick { client } => {
                if now > horizon {
                    continue;
                }
                let c = &mut clients[client as usize];
                let site = c.site;
                let (bytes, next) = if !c.registered {
                    (
                        RelayMessage::Register {
                            session: c.session,
                            site,
                            spectator: c.spectator,
                        }
                        .encode(),
                        Some(now + SimDuration::from_millis(50)),
                    )
                } else if c.spectator {
                    (
                        RelayMessage::Heartbeat { session: c.session }.encode(),
                        Some(now + HEARTBEAT_EVERY),
                    )
                } else if c.sent < o.forwards_per_player {
                    c.sent += 1;
                    let payload = forward_payload(c.sent, now);
                    let mut bytes = Vec::new();
                    wire::encode_forward_into(&mut bytes, wire::DEST_BROADCAST, &payload);
                    // The partner should see this; the session's spectator
                    // (if any) also counts toward fan-out but not drops.
                    expected_deliveries += 1;
                    (bytes, Some(now + SEND_EVERY))
                } else {
                    continue; // done sending; stay subscribed
                };
                let fate = c.up.process(now, bytes.len());
                for at in fate.deliveries {
                    queue.schedule(
                        at,
                        Ev::ToRelay {
                            client,
                            bytes: bytes.clone(),
                        },
                    );
                }
                if let Some(at) = next {
                    queue.schedule(at, Ev::Tick { client });
                }
            }
            Ev::ToRelay { client, bytes } => {
                let replies: Vec<(u32, Vec<u8>)> = core.handle(client, &bytes, now).to_vec();
                for (to, reply) in replies {
                    let c = &mut clients[to as usize];
                    let fate = c.down.process(now, reply.len());
                    for at in fate.deliveries {
                        queue.schedule(
                            at,
                            Ev::ToClient {
                                client: to,
                                bytes: reply.clone(),
                            },
                        );
                    }
                }
            }
            Ev::ToClient { client, bytes } => {
                let c = &mut clients[client as usize];
                if let Ok((_from_site, payload)) = wire::decode_deliver(&bytes) {
                    c.received += 1;
                    if !c.spectator {
                        if let Some(sent_at) = payload_send_time(payload) {
                            latencies_us.push(now.saturating_since(sent_at).as_micros());
                        }
                    }
                } else if let Ok(RelayMessage::Registered { .. }) = RelayMessage::decode(&bytes) {
                    if !c.registered {
                        c.registered = true;
                        // Start the paced sends right away.
                        queue.schedule(now, Ev::Tick { client });
                    }
                }
            }
        }
    }
    let wall = wall_start.elapsed();

    let stats = core.stats();
    let player_deliveries: u64 = clients
        .iter()
        .filter(|c| !c.spectator)
        .map(|c| c.received)
        .sum();
    let spectator_deliveries: u64 = clients
        .iter()
        .filter(|c| c.spectator)
        .map(|c| c.received)
        .sum();
    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let rank = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[rank.min(latencies_us.len() - 1)]
    };
    // Per-mille of expected partner deliveries that never arrived (link
    // loss in both directions plus any relay backpressure).
    let drop_rate_milli = (player_deliveries * 1000)
        .checked_div(expected_deliveries)
        .map_or(0, |delivered| 1000u64.saturating_sub(delivered));
    let per_sec = |count: u64| -> u64 {
        let secs = wall.as_secs_f64();
        if secs > 0.0 {
            (count as f64 / secs) as u64
        } else {
            0
        }
    };

    let metrics = vec![
        Metric {
            key: "sessions",
            value: o.sessions as u64,
        },
        Metric {
            key: "clients",
            value: n_clients as u64,
        },
        Metric {
            key: "sessions_per_sec",
            value: per_sec(o.sessions as u64),
        },
        Metric {
            key: "forwards_per_sec",
            value: per_sec(stats.forwarded),
        },
        Metric {
            key: "forwarded",
            value: stats.forwarded,
        },
        Metric {
            key: "fanout_copies",
            value: stats.fanout_copies,
        },
        Metric {
            key: "player_deliveries",
            value: player_deliveries,
        },
        Metric {
            key: "spectator_deliveries",
            value: spectator_deliveries,
        },
        Metric {
            key: "p50_forward_latency_us",
            value: pct(0.50),
        },
        Metric {
            key: "p99_forward_latency_us",
            value: pct(0.99),
        },
        Metric {
            key: "drop_rate_milli",
            value: drop_rate_milli,
        },
        Metric {
            key: "backpressure_drops",
            value: stats.dropped_backpressure,
        },
        Metric {
            key: "evicted_members",
            value: stats.evicted_members,
        },
    ];
    FleetResult { metrics }
}

fn render_json(o: &FleetOptions, metrics: &[Metric]) -> String {
    let mut out = String::from("{\n  \"figure\": \"fleet\",\n");
    out.push_str(&format!(
        "  \"seed\": {}, \"forwards_per_player\": {},\n  \"metrics\": [\n",
        o.seed, o.forwards_per_player
    ));
    for (i, m) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"key\": \"{}\", \"value\": {}}}{}\n",
            m.key,
            m.value,
            if i + 1 < metrics.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `key -> value` pairs from a fleet results document (one metric
/// per line, shaped `{"key": "...", "value": N}`).
fn parse_metrics(json: &str) -> Vec<(String, u64)> {
    let mut pairs = Vec::new();
    for line in json.lines() {
        let Some(key_at) = line.find("\"key\": \"") else {
            continue;
        };
        let rest = &line[key_at + 8..];
        let Some(key_end) = rest.find('"') else {
            continue;
        };
        let key = &rest[..key_end];
        let Some(v_at) = line.find("\"value\": ") else {
            continue;
        };
        let digits: String = line[v_at + 9..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(v) = digits.parse() {
            pairs.push((key.to_string(), v));
        }
    }
    pairs
}

/// `true` for metrics where *lower* is worse (throughput); the rest are
/// costs where *higher* is worse. Size-of-run metrics are not guarded.
fn guard_direction(key: &str) -> Option<bool> {
    if key.ends_with("_per_sec") {
        return Some(true);
    }
    if key.ends_with("_latency_us") || key == "drop_rate_milli" || key == "backpressure_drops" {
        return Some(false);
    }
    None
}

/// Compares fresh metrics against a baseline document. Returns the number
/// of regressions: throughput below `baseline / 2`, costs above
/// `baseline * 2` (plus the noise floor on both sides).
fn check_against(baseline_json: &str, metrics: &[Metric]) -> usize {
    let baseline = parse_metrics(baseline_json);
    if baseline.is_empty() {
        eprintln!("baseline contains no metrics; nothing to check");
        return 0;
    }
    let mut regressions = 0;
    println!(
        "{:<26} {:>12} {:>12}  verdict",
        "metric", "baseline", "current"
    );
    for (key, base) in &baseline {
        let Some(throughput) = guard_direction(key) else {
            continue;
        };
        let Some(cur) = metrics.iter().find(|m| m.key == key.as_str()) else {
            println!("{key:<26} {base:>12} {:>12}  missing from this run", "-");
            continue;
        };
        let bad = if throughput {
            cur.value.saturating_mul(REGRESSION_FACTOR) + NOISE_FLOOR < *base
        } else {
            cur.value > base.saturating_mul(REGRESSION_FACTOR) + NOISE_FLOOR
        };
        let verdict = if bad {
            regressions += 1;
            "REGRESSION"
        } else {
            "ok"
        };
        println!("{:<26} {:>12} {:>12}  {}", key, base, cur.value, verdict);
    }
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = FleetOptions::parse(&args);
    println!("=== Fleet load-generator — relay under impaired links ===");
    println!(
        "sessions: {}, forwards/player: {}, seed: {:#x}",
        o.sessions, o.forwards_per_player, o.seed
    );
    println!();

    let result = run_fleet(&o);
    for m in &result.metrics {
        println!("{:<26} {:>12}", m.key, m.value);
    }

    let json = render_json(&o, &result.metrics);
    match write_results_json("BENCH_fleet.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("cannot write results: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = &o.check_path {
        let baseline = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let regressions = check_against(&baseline, &result.metrics);
        if regressions > 0 {
            eprintln!("\n{regressions} fleet regression(s) against {path}");
            std::process::exit(1);
        }
        println!("\nno regressions against {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fleet_converges_and_measures() {
        let o = FleetOptions {
            sessions: 4,
            forwards_per_player: 10,
            seed: 1,
            check_path: None,
        };
        let r = run_fleet(&o);
        let get = |key: &str| {
            r.metrics
                .iter()
                .find(|m| m.key == key)
                .map(|m| m.value)
                .unwrap()
        };
        // 8 players x 10 forwards, minus ~1% uplink loss, reach the relay.
        assert!(get("forwarded") > 60, "forwarded={}", get("forwarded"));
        // Most partner deliveries arrive; the drop rate stays modest.
        assert!(get("player_deliveries") > 50);
        assert!(get("drop_rate_milli") < 300);
        // Two one-way link delays of 15ms put latency near 30ms.
        let p50 = get("p50_forward_latency_us");
        assert!((20_000..60_000).contains(&p50), "p50={p50}");
        assert_eq!(get("evicted_members"), 0);
        // The 1st session's spectator saw traffic.
        assert!(get("spectator_deliveries") > 0);
    }

    #[test]
    fn fleet_is_deterministic_in_sim_metrics() {
        let o = FleetOptions {
            sessions: 3,
            forwards_per_player: 8,
            seed: 42,
            check_path: None,
        };
        let pick = |r: &FleetResult| {
            r.metrics
                .iter()
                .filter(|m| guard_direction(m.key) != Some(true))
                .map(|m| (m.key, m.value))
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(&run_fleet(&o)), pick(&run_fleet(&o)));
    }

    #[test]
    fn guard_catches_both_directions() {
        let baseline = r#"
    {"key": "forwards_per_sec", "value": 100000},
    {"key": "p99_forward_latency_us", "value": 40000},
    {"key": "drop_rate_milli", "value": 20},
    {"key": "sessions", "value": 64},
"#;
        // Healthy run: same numbers pass.
        let ok = vec![
            Metric {
                key: "forwards_per_sec",
                value: 100_000,
            },
            Metric {
                key: "p99_forward_latency_us",
                value: 40_000,
            },
            Metric {
                key: "drop_rate_milli",
                value: 20,
            },
        ];
        assert_eq!(check_against(baseline, &ok), 0);
        // Throughput collapse and latency blow-up both trip it.
        let bad = vec![
            Metric {
                key: "forwards_per_sec",
                value: 10_000,
            },
            Metric {
                key: "p99_forward_latency_us",
                value: 200_000,
            },
            Metric {
                key: "drop_rate_milli",
                value: 21,
            },
        ];
        assert_eq!(check_against(baseline, &bad), 2);
    }

    #[test]
    fn parse_roundtrips_render() {
        let o = FleetOptions {
            sessions: 2,
            forwards_per_player: 1,
            seed: 9,
            check_path: None,
        };
        let metrics = vec![
            Metric {
                key: "sessions_per_sec",
                value: 123,
            },
            Metric {
                key: "drop_rate_milli",
                value: 4,
            },
        ];
        let parsed = parse_metrics(&render_json(&o, &metrics));
        assert_eq!(
            parsed,
            vec![
                ("sessions_per_sec".to_string(), 123),
                ("drop_rate_milli".to_string(), 4),
            ]
        );
    }

    #[test]
    fn quick_flag_shrinks_the_run() {
        let o = FleetOptions::parse(&["--quick".to_string()]);
        assert_eq!(o.sessions, 64);
        let o = FleetOptions::parse(&["--sessions".to_string(), "9".to_string()]);
        assert_eq!(o.sessions, 9);
    }
}
