//! Microbenchmarks for the rollback hot loop.
//!
//! Rollback repair happens *inside* a 16.7 ms frame budget: checkpoint
//! capture, delta encoding, checkpoint restore, and resimulation all run on
//! the critical path, and the per-frame input send shares it. This binary
//! times each of those operations per bundled game (plus the wire codec)
//! and writes `results/BENCH_hotpath.json` with ns/op and bytes/op, the
//! pooled-buffer hit rate, and the delta-vs-full compression ratio.
//!
//! Run: `cargo run --release -p coplay-bench --bin hotpath [--quick]`
//!
//! Perf-regression guard: `--check <baseline.json>` compares the fresh
//! numbers against a previously written run and exits non-zero when any
//! operation got more than 2x slower (with a small absolute noise floor so
//! single-digit-nanosecond ops cannot trip the guard on scheduler jitter).
//! The guard is direction-aware: an op that got more than 2x *faster* is
//! reported as a stale-baseline warning — repin the baseline so the guard
//! keeps protecting the improvement — but does not fail the run.
//! The checked-in reference lives at `results/hotpath_baseline.json`.

// This harness times the hot loop from outside the determinism fence, so
// the wall-clock ban does not apply (see detlint policy for
// crates/bench/src/bin/).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use coplay_bench::{banner, write_results_json, Options};
use coplay_games::{catalog, rom_pong_console, rom_race_console};
use coplay_rollback::{delta, SnapshotRing};
use coplay_sync::{InputMsg, Message};
use coplay_vm::{
    Console, Cpu, Devices, DirtyPages, InputWord, Instruction, InterpMode, Machine, Reg, Rom,
    StepMode, Syscall, DEFAULT_CYCLES_PER_FRAME,
};

/// Regression threshold: fail when an op is more than this many times
/// slower than the baseline.
const REGRESSION_FACTOR: u64 = 2;

/// Absolute slack added to every threshold so fast ops (a few ns) cannot
/// trip the guard on measurement noise alone.
const NOISE_FLOOR_NS: u64 = 200;

/// One timed operation.
struct Measurement {
    key: String,
    ns_per_op: u64,
    bytes_per_op: u64,
}

/// Per-game summary stats (not timings).
struct GameSummary {
    name: &'static str,
    snapshot_bytes: u64,
    /// Full-snapshot bytes vs delta bytes over consecutive frames, in
    /// thousandths (4000 = deltas are 4x smaller).
    delta_ratio_milli: u64,
    /// Snapshot-ring buffer-pool hit rate after warmup, in thousandths.
    pool_hit_rate_milli: u64,
    /// Interpreter decode-cache warm-dispatch rate in thousandths; 0 for
    /// native-Rust machines that have no interpreter.
    decode_hit_rate_milli: u64,
    /// Share of dispatched instructions retired through fused
    /// superinstruction pairs, in thousandths; 0 for native machines.
    fusion_rate_milli: u64,
}

/// Times `f` repeatedly, doubling the iteration count until one batch
/// fills `budget`, then takes the *minimum* mean over three batches at
/// that count — a scheduler preemption landing inside one batch inflates
/// that batch only, and the minimum discards it.
fn bench_ns(budget: Duration, mut f: impl FnMut()) -> u64 {
    f(); // warmup: touch caches, fault in pages
    let mut iters: u64 = 4;
    let mut batch = |iters: u64| {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed()
    };
    loop {
        let elapsed = batch(iters);
        if elapsed >= budget {
            let best = elapsed.min(batch(iters)).min(batch(iters));
            return (best.as_nanos() / u128::from(iters)) as u64;
        }
        iters = iters.saturating_mul(2);
    }
}

/// Deterministic pseudo-input for a frame (splitmix-style mix).
fn input_for(frame: u64) -> InputWord {
    let mut x = frame.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0C05_01A1;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 31;
    InputWord((x & 0xFFFF_FFFF) as u32)
}

fn measure_games(budget: Duration) -> (Vec<Measurement>, Vec<GameSummary>) {
    let mut measurements = Vec::new();
    let mut summaries = Vec::new();

    for game in catalog() {
        let name = game.name();
        let mut m = game.create();
        // Warm the machine into a representative mid-game state.
        for f in 0..120 {
            m.step_frame(input_for(f));
        }
        let base = m.save_state();
        m.step_frame(input_for(120));
        let next = m.save_state();
        let snapshot_bytes = next.len() as u64;

        let ns = bench_ns(budget, || {
            std::hint::black_box(m.save_state().len());
        });
        measurements.push(Measurement {
            key: format!("{name}/save_state"),
            ns_per_op: ns,
            bytes_per_op: snapshot_bytes,
        });

        let mut cap = Vec::new();
        let ns = bench_ns(budget, || {
            m.save_state_into(&mut cap);
            std::hint::black_box(cap.len());
        });
        measurements.push(Measurement {
            key: format!("{name}/save_state_into"),
            ns_per_op: ns,
            bytes_per_op: snapshot_bytes,
        });

        let mut dbuf = Vec::new();
        let ns = bench_ns(budget, || {
            delta::encode_into(&base, &next, &mut dbuf);
            std::hint::black_box(dbuf.len());
        });
        let delta_bytes = dbuf.len() as u64;
        measurements.push(Measurement {
            key: format!("{name}/delta_encode"),
            ns_per_op: ns,
            bytes_per_op: delta_bytes,
        });

        // Average one-frame delta size over a window of consecutive
        // frames: this is the "delta checkpoints are Nx smaller" number.
        let mut full_total = 0u64;
        let mut delta_total = 0u64;
        let mut prev = m.save_state();
        let mut cur = Vec::new();
        for f in 121..153 {
            m.step_frame(input_for(f));
            m.save_state_into(&mut cur);
            delta::encode_into(&prev, &cur, &mut dbuf);
            full_total += cur.len() as u64;
            delta_total += dbuf.len() as u64;
            std::mem::swap(&mut prev, &mut cur);
        }
        let delta_ratio_milli = full_total.saturating_mul(1000) / delta_total.max(1);

        // Restore from the deepest point of a back-delta chain.
        let mut ring = SnapshotRing::new(8);
        for _ in 0..8 {
            let f = m.frame();
            m.step_frame(input_for(f));
            m.save_state_into(&mut cap);
            ring.push(m.frame(), &cap, m.state_hash());
        }
        let newest = ring.newest_frame().expect("ring was just filled");
        let mut rbuf = Vec::new();
        let ns = bench_ns(budget, || {
            ring.restore_into(newest, &mut rbuf)
                .expect("newest checkpoint restores");
            std::hint::black_box(rbuf.len());
        });
        measurements.push(Measurement {
            key: format!("{name}/ring_restore"),
            ns_per_op: ns,
            bytes_per_op: rbuf.len() as u64,
        });

        let ns = bench_ns(budget, || {
            let f = m.frame();
            m.step_frame(input_for(f));
        });
        let resim_ns = ns;
        measurements.push(Measurement {
            key: format!("{name}/resim_frame"),
            ns_per_op: ns,
            bytes_per_op: 0,
        });

        // A full rollback repair: restore the checkpoint, reload the
        // machine, resimulate 8 frames.
        let ns = bench_ns(budget, || {
            ring.restore_into(newest, &mut rbuf)
                .expect("newest checkpoint restores");
            m.load_state(&rbuf).expect("checkpoint bytes reload");
            for k in 1..=8 {
                m.step_frame(input_for(newest + k));
            }
        });
        measurements.push(Measurement {
            key: format!("{name}/rollback_repair_8"),
            ns_per_op: ns / 8,
            bytes_per_op: 0,
        });

        // The production repair shape since headless stepping landed:
        // every repair frame but the last skips presentation side effects
        // (framebuffer draws, audio sample rendering), and the final frame
        // presents so the display catches up. Same restore + reload + 8
        // frames as `rollback_repair_8`, so the delta is pure rendering.
        let ns = bench_ns(budget, || {
            ring.restore_into(newest, &mut rbuf)
                .expect("newest checkpoint restores");
            m.load_state(&rbuf).expect("checkpoint bytes reload");
            for k in 1..=8 {
                let mode = if k == 8 {
                    StepMode::Present
                } else {
                    StepMode::Headless
                };
                m.step_frame_mode(input_for(newest + k), mode);
            }
        });
        measurements.push(Measurement {
            key: format!("{name}/repair_headless"),
            ns_per_op: ns / 8,
            bytes_per_op: 0,
        });

        // Checkpoint restores diff the incoming image block-by-block and
        // invalidate only decode slots covering bytes that actually
        // changed — so across the thousands of repairs the two benches
        // above just ran, the cache must have stayed warm. A whole-table
        // flush on restore would show up here immediately.
        if let Some(stats) = m.interp_stats() {
            assert!(
                stats.hit_rate_milli() >= 990,
                "{name}: decode cache went cold across rollback restores \
                 ({} hits / {} misses)",
                stats.hits,
                stats.misses,
            );
        }

        // O(dirty) checkpoint capture: step a frame, then capture straight
        // into the ring — the machine's dirty accumulators pick the byte
        // ranges, the old tail bytes become a raw back-patch, and the
        // machine rewrites only those ranges in the tail. The step itself
        // is measured above (`resim_frame`), so the difference is the pure
        // checkpoint cost — the number the dirty tracking exists to
        // shrink. Hashes are dummies: the ring stores them opaquely and
        // per-frame hashing is costed elsewhere.
        let mut dirty_ring = SnapshotRing::new(8);
        // Ring frames use their own counter: native games reset their
        // frame counter when a match ends, and the loop below runs long
        // enough to cross several match boundaries.
        let mut ck = 0u64;
        let mut last = dirty_ring.checkpoint_from(ck, 0, &mut m);
        let ckpt_total_ns = bench_ns(budget, || {
            let f = m.frame();
            m.step_frame(input_for(f));
            ck += 1;
            last = dirty_ring.checkpoint_from(ck, 0, &mut m);
        });
        measurements.push(Measurement {
            key: format!("{name}/checkpoint_dirty"),
            ns_per_op: ckpt_total_ns.saturating_sub(resim_ns),
            bytes_per_op: last.dirty_bytes as u64,
        });

        // Bitmap-guided rollback restore, production shape: the machine
        // drifts one frame off the anchor checkpoint, saves the due
        // checkpoint, then a misprediction rewinds the ring to the anchor
        // and patches only the divergent pages back into the machine.
        // Each iteration is step + checkpoint + repair; subtracting the
        // previous bench's step + checkpoint total isolates the repair.
        let mut rring = SnapshotRing::new(8);
        let mut kr = 0u64;
        rring.checkpoint_from(kr, 0, &mut m);
        let mut rout = Vec::new();
        rring
            .restore_into(kr, &mut rout)
            .expect("anchor checkpoint restores");
        let mut rdirty = DirtyPages::default();
        let ns = bench_ns(budget, || {
            let f = m.frame();
            m.step_frame(input_for(f));
            kr += 1;
            rring.checkpoint_from(kr, 0, &mut m);
            m.collect_dirty_into(&mut rdirty);
            rring
                .rewind_into(0, &mut rout, &mut rdirty)
                .expect("anchor checkpoint rewinds");
            m.load_state_dirty(&rout, &rdirty)
                .expect("checkpoint bytes reload");
        });
        let restored_bytes: usize = rdirty.byte_ranges().map(|(s, e)| e - s).sum();
        measurements.push(Measurement {
            key: format!("{name}/restore_dirty"),
            ns_per_op: ns.saturating_sub(ckpt_total_ns),
            bytes_per_op: restored_bytes as u64,
        });

        // Steady-state pool behaviour: after the ring warms up, every
        // eviction recycles exactly one buffer, so misses stay bounded by
        // the warmup while hits grow with every push.
        let mut pool_ring = SnapshotRing::new(8);
        m.save_state_into(&mut cap);
        let hash = m.state_hash();
        let start = m.frame();
        for i in 1..=1000u64 {
            pool_ring.push(start + i, &cap, hash);
        }
        let pool_hit_rate_milli = pool_ring.pool_stats().hit_rate_milli();
        let decode_hit_rate_milli = m.interp_stats().map_or(0, |s| s.hit_rate_milli());
        let fusion_rate_milli = m.interp_stats().map_or(0, |s| s.fusion_rate_milli());

        summaries.push(GameSummary {
            name,
            snapshot_bytes,
            delta_ratio_milli,
            pool_hit_rate_milli,
            decode_hit_rate_milli,
            fusion_rate_milli,
        });
    }

    (measurements, summaries)
}

/// A self-modifying program: each frame stores the frame counter into the
/// immediate of a later `ldi`, forcing the decode cache to invalidate and
/// re-fill that slot every frame. Its `step_frame` cost is the
/// cache-invalidation metric — the worst case the cache can be driven to.
fn smc_rom() -> Rom {
    let program: Vec<u8> = [
        Instruction::In(Reg(4), 2),
        Instruction::Ldi(Reg(3), 0x12),
        Instruction::Stb(Reg(3), Reg(4), 0),
        Instruction::Nop,
        Instruction::Ldi(Reg(1), 0xAA00), // imm low byte at 0x12, patched above
        Instruction::Yield,
        Instruction::Jmp(0),
    ]
    .iter()
    .flat_map(|i| i.encode())
    .collect();
    Rom::builder("SMC Probe").image(program).build()
}

/// A do-nothing device bus: isolates raw interpreter dispatch cost from
/// framebuffer/audio work when timing `interp_step`.
struct NullDev;

impl Devices for NullDev {
    fn input_port(&mut self, _port: u8) -> u16 {
        0
    }
    fn syscall(&mut self, _call: Syscall, _regs: &[u16; 16]) {}
}

/// Interpreter fast-path metrics per ROM game: the reference-decoder
/// counterparts of `resim_frame` / `rollback_repair_8` (the on-vs-off
/// speedup the predecode cache buys), per-instruction dispatch cost, and
/// the self-modifying-code worst case in both modes.
type MakeConsole = fn() -> Console;

fn measure_interp(budget: Duration) -> Vec<Measurement> {
    let mut out = Vec::new();
    let roms: [(&str, MakeConsole); 2] = [
        ("ROM Pong", rom_pong_console as MakeConsole),
        ("Button Race", rom_race_console as MakeConsole),
    ];
    for (name, make) in roms {
        // Phase-lock with `measure_games`: replicate its exact stepping
        // schedule (120-frame warmup, the +1/+32 snapshot and delta-window
        // steps, 8 ring pushes) so the reference numbers pin the *same*
        // checkpoint frame as the cache-on ones — both interpreter loops
        // are state-identical, so any cost difference is pure mode.
        let mut slow = make().with_interp_mode(InterpMode::Reference);
        for f in 0..153 {
            slow.step_frame(input_for(f));
        }
        let mut ring = SnapshotRing::new(8);
        let mut cap = Vec::new();
        for _ in 0..8 {
            let f = slow.frame();
            slow.step_frame(input_for(f));
            slow.save_state_into(&mut cap);
            ring.push(slow.frame(), &cap, slow.state_hash());
        }
        let newest = ring.newest_frame().expect("ring was just filled");

        // Reference-mode resimulation: same loop shape as the cache-on
        // `resim_frame` measurement over in `measure_games`.
        let ns = bench_ns(budget, || {
            let f = slow.frame();
            slow.step_frame(input_for(f));
        });
        out.push(Measurement {
            key: format!("{name}/resim_frame_ref"),
            ns_per_op: ns,
            bytes_per_op: 0,
        });

        // Reference-mode full repair, same shape as the cache-on metric —
        // ring restore, state reload, 8 resimulated frames — so the on/off
        // ratio compares like with like.
        let mut rbuf = Vec::new();
        let ns = bench_ns(budget, || {
            ring.restore_into(newest, &mut rbuf)
                .expect("newest checkpoint restores");
            slow.load_state(&rbuf).expect("checkpoint bytes reload");
            for k in 1..=8 {
                slow.step_frame(input_for(newest + k));
            }
        });
        out.push(Measurement {
            key: format!("{name}/rollback_repair_8_ref"),
            ns_per_op: ns / 8,
            bytes_per_op: 0,
        });

        // Pure interpreter dispatch cost per instruction, isolated from the
        // mode-independent frame work (drawing, audio, bus glue) that
        // dilutes whole-frame ratios: a bare CPU running the same program
        // against a do-nothing device. bytes_per_op carries the
        // instructions retired per frame. `interp_step` pins fusion off so
        // the row keeps measuring what it always measured (plain predecoded
        // dispatch); `interp_step_fused` is the production configuration.
        for (mode, fusion, key) in [
            (InterpMode::Predecoded, false, "interp_step"),
            (InterpMode::Predecoded, true, "interp_step_fused"),
            (InterpMode::Reference, false, "interp_step_ref"),
        ] {
            let rom = make().rom().clone();
            let mut cpu = Cpu::new(rom.entry(), rom.seed());
            cpu.load_image(rom.image());
            cpu.set_interp_mode(mode);
            cpu.set_fusion_enabled(fusion);
            let mut dev = NullDev;
            for _ in 0..120 {
                cpu.run_frame(DEFAULT_CYCLES_PER_FRAME, &mut dev);
            }
            let (_, instr_per_frame) = cpu.run_frame(DEFAULT_CYCLES_PER_FRAME, &mut dev);
            let instr = u64::from(instr_per_frame).max(1);
            let ns_frame = bench_ns(budget, || {
                std::hint::black_box(cpu.run_frame(DEFAULT_CYCLES_PER_FRAME, &mut dev));
            });
            out.push(Measurement {
                key: format!("{name}/{key}"),
                ns_per_op: ns_frame / instr,
                bytes_per_op: instr,
            });
        }
    }

    // Cache-invalidation worst case: a program that patches its own code
    // every frame, cache on vs off.
    let mut fast = Console::new(smc_rom());
    let mut slow = Console::new(smc_rom()).with_interp_mode(InterpMode::Reference);
    for _ in 0..10 {
        fast.step_frame(InputWord::NONE);
        slow.step_frame(InputWord::NONE);
    }
    let ns = bench_ns(budget, || fast.step_frame(InputWord::NONE));
    out.push(Measurement {
        key: "smc/step_frame".to_string(),
        ns_per_op: ns,
        bytes_per_op: 0,
    });
    let ns = bench_ns(budget, || slow.step_frame(InputWord::NONE));
    out.push(Measurement {
        key: "smc/step_frame_ref".to_string(),
        ns_per_op: ns,
        bytes_per_op: 0,
    });
    out
}

fn measure_wire(budget: Duration) -> Vec<Measurement> {
    let msg = Message::Input(InputMsg {
        from: 1,
        ack: 41,
        first: 42,
        inputs: (0..8).map(input_for).collect(),
    });
    let bytes = msg.encode().len() as u64;
    let mut out = Vec::new();

    let ns_alloc = bench_ns(budget, || {
        std::hint::black_box(msg.encode().len());
    });
    let ns_reuse = bench_ns(budget, || {
        msg.encode_into(&mut out);
        std::hint::black_box(out.len());
    });
    vec![
        Measurement {
            key: "wire/encode".to_string(),
            ns_per_op: ns_alloc,
            bytes_per_op: bytes,
        },
        Measurement {
            key: "wire/encode_into".to_string(),
            ns_per_op: ns_reuse,
            bytes_per_op: bytes,
        },
    ]
}

/// Frame-lifecycle tracing cost on the hot path: `Telemetry::span` with a
/// disabled handle (the production default), with a recording handle whose
/// tracing flag is off (telemetry without spans), and with tracing on (the
/// full record path into the flight-recorder ring). The first two must be
/// branch-cheap — every frame of every session pays them — and the guard
/// keeps them honest.
fn measure_telemetry(budget: Duration) -> Vec<Measurement> {
    use coplay_clock::SimTime;
    use coplay_telemetry::{SpanStage, Telemetry};
    let at = SimTime::from_micros(42);
    let mut out = Vec::new();
    let mut frame = 0u64;
    for (key, tel) in [
        ("telemetry/span_disabled", Telemetry::disabled()),
        ("telemetry/span_tracing_off", Telemetry::recording()),
        ("telemetry/span_tracing_on", Telemetry::tracing(1, 0)),
    ] {
        let ns = bench_ns(budget, || {
            frame += 1;
            tel.span(
                std::hint::black_box(at),
                SpanStage::Sampled,
                std::hint::black_box(frame),
                1,
            );
        });
        out.push(Measurement {
            key: key.to_string(),
            ns_per_op: ns,
            bytes_per_op: 0,
        });
    }
    out
}

fn render_json(opts: &Options, games: &[GameSummary], measurements: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"figure\": \"hotpath\",\n");
    out.push_str(&format!("  \"seed\": {},\n  \"games\": [\n", opts.seed));
    for (i, g) in games.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"game\": \"{}\", \"snapshot_bytes\": {}, \"delta_ratio_milli\": {}, \
             \"pool_hit_rate_milli\": {}, \"decode_hit_rate_milli\": {}, \
             \"fusion_rate_milli\": {}}}{}\n",
            g.name,
            g.snapshot_bytes,
            g.delta_ratio_milli,
            g.pool_hit_rate_milli,
            g.decode_hit_rate_milli,
            g.fusion_rate_milli,
            if i + 1 < games.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"key\": \"{}\", \"ns_per_op\": {}, \"bytes_per_op\": {}}}{}\n",
            m.key,
            m.ns_per_op,
            m.bytes_per_op,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `key -> ns_per_op` pairs from a hotpath results document.
///
/// Hand-rolled like the writers in this crate: each measurement sits on
/// one line shaped `{"key": "...", "ns_per_op": N, ...}`.
fn parse_measurements(json: &str) -> Vec<(String, u64)> {
    let mut pairs = Vec::new();
    for line in json.lines() {
        let Some(key_at) = line.find("\"key\": \"") else {
            continue;
        };
        let rest = &line[key_at + 8..];
        let Some(key_end) = rest.find('"') else {
            continue;
        };
        let key = &rest[..key_end];
        let Some(ns_at) = line.find("\"ns_per_op\": ") else {
            continue;
        };
        let digits: String = line[ns_at + 13..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(ns) = digits.parse() {
            pairs.push((key.to_string(), ns));
        }
    }
    pairs
}

/// Outcome of a baseline comparison. `regressions` fail the run;
/// `speedups` mean the baseline is stale — large improvements should be
/// repinned so the guard starts protecting them too.
#[derive(Default)]
struct CheckOutcome {
    regressions: usize,
    speedups: usize,
}

/// Compares fresh measurements against a baseline document, in both
/// directions: an op slower than `REGRESSION_FACTOR`x baseline (plus the
/// noise floor) is a regression; an op faster by the same margin is a
/// stale-baseline warning.
fn check_against(baseline_json: &str, measurements: &[Measurement]) -> CheckOutcome {
    let baseline = parse_measurements(baseline_json);
    let mut outcome = CheckOutcome::default();
    if baseline.is_empty() {
        eprintln!("baseline contains no measurements; nothing to check");
        return outcome;
    }
    println!(
        "{:<28} {:>12} {:>12}  verdict",
        "op", "baseline ns", "current ns"
    );
    for (key, base_ns) in &baseline {
        let Some(cur) = measurements.iter().find(|m| &m.key == key) else {
            println!("{key:<28} {base_ns:>12} {:>12}  missing from this run", "-");
            continue;
        };
        let slow_limit = base_ns.saturating_mul(REGRESSION_FACTOR) + NOISE_FLOOR_NS;
        let verdict = if cur.ns_per_op > slow_limit {
            outcome.regressions += 1;
            "REGRESSION"
        } else if cur.ns_per_op.saturating_mul(REGRESSION_FACTOR) + NOISE_FLOOR_NS < *base_ns {
            outcome.speedups += 1;
            "FASTER (repin baseline)"
        } else {
            "ok"
        };
        println!(
            "{:<28} {:>12} {:>12}  {}",
            key, base_ns, cur.ns_per_op, verdict
        );
    }
    outcome
}

fn main() {
    let opts = Options::from_env();
    banner(
        "Hot-path microbenchmarks — rollback repair + wire codec",
        &opts,
    );

    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let budget = if quick {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(10)
    };

    let (mut measurements, games) = measure_games(budget);
    measurements.extend(measure_interp(budget));
    measurements.extend(measure_wire(budget));
    measurements.extend(measure_telemetry(budget));

    println!("{:<28} {:>10} {:>10}", "op", "ns/op", "bytes/op");
    for m in &measurements {
        println!("{:<28} {:>10} {:>10}", m.key, m.ns_per_op, m.bytes_per_op);
    }
    println!();
    println!(
        "{:<12} {:>14} {:>16} {:>15} {:>15} {:>12}",
        "game", "snapshot B", "delta ratio", "pool hits", "decode hits", "fused"
    );
    for g in &games {
        println!(
            "{:<12} {:>14} {:>13}.{:01}x {:>13}.{:01}% {:>13}.{:01}% {:>10}.{:01}%",
            g.name,
            g.snapshot_bytes,
            g.delta_ratio_milli / 1000,
            (g.delta_ratio_milli % 1000) / 100,
            g.pool_hit_rate_milli / 10,
            g.pool_hit_rate_milli % 10,
            g.decode_hit_rate_milli / 10,
            g.decode_hit_rate_milli % 10,
            g.fusion_rate_milli / 10,
            g.fusion_rate_milli % 10,
        );
    }
    println!();

    // The headline the predecode cache exists for: cache-on vs reference
    // interpreter on the resimulation/repair path.
    let ns_of = |key: &str| {
        measurements
            .iter()
            .find(|m| m.key == key)
            .map(|m| m.ns_per_op)
    };
    for name in ["ROM Pong", "Button Race"] {
        for (op, op_ref) in [
            ("interp_step", "interp_step_ref"),
            ("interp_step_fused", "interp_step_ref"),
            ("resim_frame", "resim_frame_ref"),
            ("rollback_repair_8", "rollback_repair_8_ref"),
        ] {
            if let (Some(on), Some(off)) = (
                ns_of(&format!("{name}/{op}")),
                ns_of(&format!("{name}/{op_ref}")),
            ) {
                println!(
                    "{name}/{op}: {off} -> {on} ns/op ({}.{:01}x with decode cache)",
                    off / on.max(1),
                    (off * 10 / on.max(1)) % 10,
                );
            }
        }
        // The repair budget this whole PR chases: headless resimulation of
        // the 8-frame repair window at under a microsecond per frame.
        if let Some(ns) = ns_of(&format!("{name}/repair_headless")) {
            let verdict = if ns < 1000 { "within" } else { "OVER" };
            println!("{name}/repair_headless: {ns} ns/frame ({verdict} the 1 us/frame budget)");
        }
        // Dirty-page checkpointing budgets: a delta checkpoint save in
        // 300 ns and a same-session bitmap-guided restore in 1 us.
        if let Some(ns) = ns_of(&format!("{name}/checkpoint_dirty")) {
            let verdict = if ns <= 300 { "within" } else { "OVER" };
            println!("{name}/checkpoint_dirty: {ns} ns/op ({verdict} the 0.3 us capture budget)");
        }
        if let Some(ns) = ns_of(&format!("{name}/restore_dirty")) {
            let verdict = if ns <= 1000 { "within" } else { "OVER" };
            println!("{name}/restore_dirty: {ns} ns/op ({verdict} the 1 us restore budget)");
        }
    }
    if let (Some(on), Some(off)) = (ns_of("smc/step_frame"), ns_of("smc/step_frame_ref")) {
        println!(
            "smc/step_frame: {off} -> {on} ns/op ({}.{:01}x with decode cache under self-modification)",
            off / on.max(1),
            (off * 10 / on.max(1)) % 10,
        );
    }
    if let (Some(off), Some(on)) = (
        ns_of("telemetry/span_tracing_off"),
        ns_of("telemetry/span_tracing_on"),
    ) {
        println!(
            "telemetry/span: {off} ns/op tracing-off vs {on} ns/op tracing-on \
             (off must stay branch-cheap; the guard enforces it)"
        );
    }
    println!();

    let json = render_json(&opts, &games, &measurements);
    match write_results_json("BENCH_hotpath.json", &json) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let outcome = check_against(&baseline, &measurements);
        if outcome.speedups > 0 {
            eprintln!(
                "{} op(s) ran >{REGRESSION_FACTOR}x faster than {path}; the baseline is \
                 stale — rerun without --quick and copy results/BENCH_hotpath.json over it \
                 so the guard protects the improvement",
                outcome.speedups
            );
        }
        if outcome.regressions > 0 {
            eprintln!("{} hot-path regression(s) vs {path}", outcome.regressions);
            std::process::exit(1);
        }
        eprintln!("no hot-path regressions vs {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_render() {
        let opts = Options::default();
        let ms = vec![
            Measurement {
                key: "pong/save_state".into(),
                ns_per_op: 123,
                bytes_per_op: 2048,
            },
            Measurement {
                key: "wire/encode_into".into(),
                ns_per_op: 45,
                bytes_per_op: 64,
            },
        ];
        let json = render_json(&opts, &[], &ms);
        let parsed = parse_measurements(&json);
        assert_eq!(
            parsed,
            vec![
                ("pong/save_state".to_string(), 123),
                ("wire/encode_into".to_string(), 45),
            ]
        );
    }

    #[test]
    fn check_flags_only_real_regressions() {
        let opts = Options::default();
        let baseline = render_json(
            &opts,
            &[],
            &[
                Measurement {
                    key: "a".into(),
                    ns_per_op: 1000,
                    bytes_per_op: 0,
                },
                Measurement {
                    key: "b".into(),
                    ns_per_op: 10,
                    bytes_per_op: 0,
                },
            ],
        );
        // 2x + noise floor: 1000 -> limit 2200; 10 -> limit 220.
        let fine = [
            Measurement {
                key: "a".into(),
                ns_per_op: 2200,
                bytes_per_op: 0,
            },
            Measurement {
                key: "b".into(),
                ns_per_op: 200,
                bytes_per_op: 0,
            },
        ];
        let outcome = check_against(&baseline, &fine);
        assert_eq!(outcome.regressions, 0);
        assert_eq!(outcome.speedups, 0);
        let slow = [
            Measurement {
                key: "a".into(),
                ns_per_op: 2201,
                bytes_per_op: 0,
            },
            Measurement {
                key: "b".into(),
                ns_per_op: 200,
                bytes_per_op: 0,
            },
        ];
        let outcome = check_against(&baseline, &slow);
        assert_eq!(outcome.regressions, 1);
        assert_eq!(outcome.speedups, 0);
    }

    #[test]
    fn check_warns_on_large_speedups_without_failing() {
        let opts = Options::default();
        let baseline = render_json(
            &opts,
            &[],
            &[
                Measurement {
                    key: "a".into(),
                    ns_per_op: 10_000,
                    bytes_per_op: 0,
                },
                Measurement {
                    key: "b".into(),
                    ns_per_op: 10,
                    bytes_per_op: 0,
                },
            ],
        );
        // `a` at 2x-minus-noise-floor is a speedup (4900*2 + 200 < 10000);
        // `b` is tiny, so the noise floor keeps even a 10 -> 1 drop quiet.
        let fast = [
            Measurement {
                key: "a".into(),
                ns_per_op: 4899,
                bytes_per_op: 0,
            },
            Measurement {
                key: "b".into(),
                ns_per_op: 1,
                bytes_per_op: 0,
            },
        ];
        let outcome = check_against(&baseline, &fast);
        assert_eq!(outcome.regressions, 0);
        assert_eq!(outcome.speedups, 1);
    }

    #[test]
    fn inputs_vary_by_frame() {
        assert_ne!(input_for(1), input_for(2));
    }
}
