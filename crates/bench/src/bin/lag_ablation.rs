//! Experiment E4 (DESIGN.md): fixed vs. adapted local lag (§4.2).
//!
//! The paper fixes `BufFrame` at 6 (≈100 ms) and argues adapting it to the
//! RTT "does not pay off". This ablation sweeps the local lag against RTT
//! and prints where the game stays at full speed — showing the trade the
//! paper describes: a smaller lag is more responsive but collapses at lower
//! RTT; a larger lag tolerates more latency but delays every input.
//!
//! Run: `cargo run --release -p coplay-bench --bin lag_ablation [--quick]`

use coplay_bench::{banner, Options};
use coplay_clock::SimDuration;
use coplay_sim::{run_experiment, ExperimentConfig};

fn main() {
    let opts = Options::from_env();
    banner("Local-lag ablation — BufFrame × RTT", &opts);

    let rtts: Vec<u64> = vec![0, 40, 80, 120, 160, 200, 240, 280];
    println!("rows: BufFrame (input delay); cols: RTT ms; cell: avg frame time ms (* = stalling)");
    print!("{:>18}", "lag\\rtt");
    for r in &rtts {
        print!("{r:>8}");
    }
    println!();
    for buf in [2u64, 4, 6, 8, 10, 12] {
        print!("{:>4} ({:3}ms lag)  ", buf, buf * 1000 / 60);
        for &rtt in &rtts {
            let mut cfg = opts.apply(ExperimentConfig::with_rtt(SimDuration::from_millis(rtt)));
            cfg.buf_frames = buf;
            match run_experiment(cfg) {
                Ok(r) => {
                    let ft = r.master_frame_time_ms();
                    let marker = if ft > 17.2 { "*" } else { " " };
                    print!("{:>7.1}{marker}", ft);
                }
                Err(_) => print!("{:>8}", "err"),
            }
        }
        println!();
    }
    println!();
    println!(
        "Reading: each row's full-speed region ends at roughly\n\
         RTT ~ 2*(lag - overheads); the paper's BufFrame=6 buys ~100ms of\n\
         one-way budget at the cost of a 100ms input delay, the upper bound\n\
         HCI studies tolerate [Shneiderman 1984]."
    );
}
