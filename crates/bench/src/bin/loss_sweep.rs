//! Experiment E6 (DESIGN.md): behaviour under packet loss (journal-version
//! extension; the ICDCS paper's §6 defers loss experiments to it).
//!
//! Sweeps uncorrelated and bursty loss at several RTTs and reports pace,
//! smoothness, and convergence — demonstrating that the cumulative
//! ack/retransmission scheme masks loss completely (logical consistency)
//! at the cost of real-time smoothness as loss grows.
//!
//! Run: `cargo run --release -p coplay-bench --bin loss_sweep [--quick]`

use coplay_bench::{banner, Options};
use coplay_clock::SimDuration;
use coplay_sim::{run_experiment, ExperimentConfig};

fn main() {
    let opts = Options::from_env();
    banner("Loss sweep — retransmission under packet loss", &opts);

    println!("rtt(ms)  loss%  corr  frame(ms)  dev(ms)  sync(ms)  lost/offered  converged");
    for rtt in [20u64, 60, 100] {
        for (loss, corr) in [
            (0.0, 0.0),
            (0.01, 0.0),
            (0.05, 0.0),
            (0.10, 0.0),
            (0.10, 0.8),
            (0.20, 0.0),
        ] {
            let mut cfg = opts.apply(ExperimentConfig::with_rtt(SimDuration::from_millis(rtt)));
            cfg.loss = loss;
            cfg.loss_correlation = corr;
            match run_experiment(cfg) {
                Ok(r) => println!(
                    "{:7}  {:5.0}  {:4.1}  {:9.2}  {:7.2}  {:8.2}  {:6}/{:<7}  {}",
                    rtt,
                    loss * 100.0,
                    corr,
                    r.master_frame_time_ms(),
                    r.worst_deviation_ms(),
                    r.synchrony_ms,
                    r.packets_lost,
                    r.packets_offered,
                    r.converged,
                ),
                Err(e) => println!("{rtt:7}  {:5.0}  {corr:4.1}  error: {e}", loss * 100.0),
            }
        }
    }
    println!();
    println!(
        "Reading: convergence must hold at every loss rate (retransmission\n\
         is cumulative), while smoothness degrades with loss x RTT because a\n\
         lost batch costs at least one extra send interval plus a one-way trip."
    );
}
