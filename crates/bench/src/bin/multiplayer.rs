//! Experiment E7 (DESIGN.md): multiple players and observers (journal
//! extension named in the ICDCS paper's §6).
//!
//! Runs 2–4 player full-mesh sessions plus observer configurations and a
//! latecomer join, reporting pace and convergence: lockstep cost grows with
//! the slowest link, and observers follow for free.
//!
//! Run: `cargo run --release -p coplay-bench --bin multiplayer [--quick]`

use coplay_bench::{banner, Options};
use coplay_clock::SimDuration;
use coplay_sim::{run_experiment, ExperimentConfig};

fn main() {
    let opts = Options::from_env();
    banner("Multiplayer and observers", &opts);

    println!("players  observers  latecomer  rtt(ms)  frame(ms)  dev(ms)  converged");
    for rtt in [20u64, 80] {
        for (players, observers, latecomer) in [
            (2u8, 0u8, false),
            (3, 0, false),
            (4, 0, false),
            (2, 1, false),
            (2, 2, false),
            (2, 0, true),
        ] {
            let mut cfg = opts.apply(ExperimentConfig::with_rtt(SimDuration::from_millis(rtt)));
            cfg.num_players = players;
            cfg.observers = observers;
            if latecomer {
                cfg.latecomer_at = Some(SimDuration::from_secs(3));
            }
            match run_experiment(cfg) {
                Ok(r) => println!(
                    "{:7}  {:9}  {:9}  {:7}  {:9.2}  {:7.2}  {}",
                    players,
                    observers,
                    latecomer,
                    rtt,
                    r.master_frame_time_ms(),
                    r.worst_deviation_ms(),
                    r.converged,
                ),
                Err(e) => {
                    println!("{players:7}  {observers:9}  {latecomer:9}  {rtt:7}  error: {e}")
                }
            }
        }
    }
    println!();
    println!(
        "Reading: every replica (players, observers, the latecomer joining\n\
         mid-game from a snapshot) reports converged=true; frame pace is set\n\
         by the slowest inter-player link, and observers never slow players."
    );
}
