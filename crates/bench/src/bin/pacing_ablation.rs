//! Experiment E5 (DESIGN.md): Algorithm 4 on vs. off under startup skew
//! (§3.2).
//!
//! Without `BeginFrameTiming`'s master/slave smoothing, the paper predicts
//! the earlier site is "always penalized ... and will suffer from
//! considerable speed fluctuation": it races ahead, blocks in `SyncInput`,
//! gets compensated into a sprint by `EndFrameTiming`, blocks again. With
//! Algorithm 4, the slave absorbs the skew and both sites run smoothly.
//!
//! Run: `cargo run --release -p coplay-bench --bin pacing_ablation [--quick]`

use coplay_bench::{banner, Options};
use coplay_clock::SimDuration;
use coplay_sim::{run_experiment, ExperimentConfig};

fn main() {
    let opts = Options::from_env();
    banner("Pacing ablation — Algorithm 4 under startup skew", &opts);

    println!("skew(ms)  rate_sync  site0 dev(ms)  site1 dev(ms)  synchrony(ms)");
    for skew in [0u64, 100, 250, 500] {
        for rate_sync in [true, false] {
            let mut cfg = opts.apply(ExperimentConfig::with_rtt(SimDuration::from_millis(60)));
            cfg.start_skew = SimDuration::from_millis(skew);
            cfg.rate_sync = rate_sync;
            match run_experiment(cfg) {
                Ok(r) => println!(
                    "{:8}  {:9}  {:13.2}  {:13.2}  {:13.2}",
                    skew,
                    rate_sync,
                    r.sites[0].frame_time_deviation_ms,
                    r.sites[1].frame_time_deviation_ms,
                    r.synchrony_ms,
                ),
                Err(e) => println!("{skew:8}  {rate_sync:9}  error: {e}"),
            }
        }
    }
    println!();
    println!(
        "Reading: with rate_sync=false the master (which starts earlier)\n\
         shows the §3.2 speed fluctuation and the sites stay offset by the\n\
         startup skew; with Algorithm 4 the slave smooths the skew out\n\
         within a few frames and no site is penalized."
    );
}
