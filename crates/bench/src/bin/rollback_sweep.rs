//! Runs the paper's Figure 1/2 RTT sweep under **both** consistency modes
//! and writes the comparison to `results/BENCH_rollback.json`.
//!
//! Lockstep (the paper's Algorithm 2) buys logical consistency by waiting:
//! past the ~140 ms threshold every frame stretches and the game slows.
//! Rollback speculates with predicted inputs and repairs mispredictions by
//! checkpoint restore + resimulation, holding the nominal frame rate with
//! zero input-wait stalls as long as the RTT stays inside the speculation
//! window (30 frames ≈ 500 ms by default).
//!
//! Expected shape: the lockstep rows reproduce Figures 1 and 2; the
//! rollback rows hold ~16.7 ms mean frame time and near-zero deviation
//! across the whole 0–400 ms range, paying instead in `resimulated_frames`.
//!
//! Run: `cargo run --release -p coplay-bench --bin rollback_sweep [--quick]`

use coplay_bench::{banner, rollback_json, write_results_json, Options};
use coplay_sim::{paper_rtt_points, run_sweep_parallel, ExperimentConfig};
use coplay_sync::ConsistencyMode;

fn main() {
    let opts = Options::from_env();
    banner("Rollback vs lockstep — pacing under RTT", &opts);
    let threads = opts.sweep_threads();

    let lockstep_base = opts.apply(ExperimentConfig::default());
    eprintln!("lockstep sweep:");
    let lockstep = run_sweep_parallel(&lockstep_base, &paper_rtt_points(), threads, |rtt, r| {
        eprintln!(
            "  rtt {:3}ms: frame {:6.2}ms, dev {:5.2}ms, converged {}",
            rtt.as_millis(),
            r.master_frame_time_ms(),
            r.worst_deviation_ms(),
            r.converged
        );
    })
    .expect("lockstep sweep failed");

    let mut rollback_base = lockstep_base.clone();
    rollback_base.consistency = ConsistencyMode::rollback();
    eprintln!("rollback sweep:");
    let rollback = run_sweep_parallel(&rollback_base, &paper_rtt_points(), threads, |rtt, r| {
        let rolls: u64 = r.session_stats.iter().map(|s| s.rollbacks).sum();
        let resim: u64 = r.session_stats.iter().map(|s| s.resimulated_frames).sum();
        eprintln!(
            "  rtt {:3}ms: frame {:6.2}ms, dev {:5.2}ms, rollbacks {:4}, resim {:5}, converged {}",
            rtt.as_millis(),
            r.master_frame_time_ms(),
            r.worst_deviation_ms(),
            rolls,
            resim,
            r.converged
        );
    })
    .expect("rollback sweep failed");

    println!("RTT(ms)  lockstep frame(ms)/dev(ms)  rollback frame(ms)/dev(ms)  rollbacks");
    for (ls, rb) in lockstep.iter().zip(&rollback) {
        let rolls: u64 = rb.result.session_stats.iter().map(|s| s.rollbacks).sum();
        println!(
            "{:7}  {:12.2} / {:6.2}      {:12.2} / {:6.2}      {:9}",
            ls.rtt.as_millis(),
            ls.result.master_frame_time_ms(),
            ls.result.worst_deviation_ms(),
            rb.result.master_frame_time_ms(),
            rb.result.worst_deviation_ms(),
            rolls,
        );
    }

    let json = rollback_json(&opts, &lockstep, &rollback);
    match write_results_json("BENCH_rollback.json", &json) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
