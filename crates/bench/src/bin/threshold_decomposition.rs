//! Experiment E3 (DESIGN.md): the §4.2 threshold decomposition.
//!
//! The paper explains its 140 ms RTT threshold as the 100 ms local-lag
//! budget minus three overheads: ~15 ms synchrony deviation, ~10 ms average
//! send-buffering (one message per 20 ms), and ~5 ms thread-slice delay
//! (one-way budget 100 − 15 − 10 − 5 = 70 ms ⇒ RTT 140 ms). This binary
//! verifies that arithmetic *causally*: it sweeps the send interval and the
//! thread slice and reports how the measured threshold moves.
//!
//! Run: `cargo run --release -p coplay-bench --bin threshold_decomposition [--quick]`

use coplay_bench::{banner, Options};
use coplay_clock::SimDuration;
use coplay_sim::{run_sweep_parallel, threshold_rtt, ExperimentConfig};

fn main() {
    let opts = Options::from_env();
    banner(
        "Threshold decomposition — send pacing × thread slice (paper §4.2)",
        &opts,
    );

    // Sweep a coarse RTT grid around the interesting region.
    let points: Vec<SimDuration> = (8..=24).map(|i| SimDuration::from_millis(i * 10)).collect();

    println!("send_interval(ms)  tx_slice(ms)  measured RTT threshold(ms)  predicted(ms)");
    for (send_ms, slice_ms) in [(0u64, 0u64), (20, 0), (0, 10), (20, 10), (40, 10), (20, 30)] {
        let mut base = opts.apply(ExperimentConfig::default());
        base.send_interval = SimDuration::from_millis(send_ms);
        base.tx_slice = SimDuration::from_millis(slice_ms);
        let rows = run_sweep_parallel(&base, &points, opts.sweep_threads(), |_, _| {})
            .expect("sweep failed");
        let measured = threshold_rtt(&rows, 1_000.0 / 60.0, 0.5)
            .map(|t| t.as_millis() as i64)
            .unwrap_or(-1);
        // Paper-style prediction: one-way budget = local lag minus the
        // average overheads; threshold RTT is twice that.
        let predicted = 2 * (100i64 - send_ms as i64 / 2 - slice_ms as i64 / 2);
        println!(
            "{:17}  {:12}  {:26}  {:12}",
            send_ms, slice_ms, measured, predicted
        );
    }
    println!();
    println!(
        "Reading: larger sender-side overheads eat the 100ms local-lag budget\n\
         and pull the playable-RTT threshold down, exactly as §4.2 argues.\n\
         (The measured threshold exceeds the prediction because the paper's\n\
         arithmetic charges worst-case overheads while steady-state stalls\n\
         only begin once *average* overheads exhaust the budget.)"
    );
}
