//! Cross-site frame-lifecycle timeline merger and latency decomposition.
//!
//! Every input word leaves a causal span chain in its site's trace dump:
//! `sampled → encoded → sent` on the origin, `received → merged →
//! presented` (plus the rollback repair stages) on each consumer.
//! `tracescope` merges the per-site JSONL dumps of one session into a
//! single cross-site timeline keyed by `(origin site, frame)` and prints a
//! latency-breakdown table that telescopes the end-to-end path into
//! consecutive buckets:
//!
//! * **pacing** — `sent − sampled` on the origin: local-lag buffering plus
//!   the 20 ms outbound send pacing.
//! * **wire** — `received − sent`: the impaired network.
//! * **wait** — `merged − received` on the consumer, split into the share
//!   overlapping input stalls (**stall**) and the remainder (**lag**).
//! * **present** — `presented − merged` (zero under both drivers today,
//!   kept so renderer-side delay is attributable when one appears).
//! * **resim** — `authoritative − presented`, where `authoritative` is the
//!   last time the frame was (re)executed; nonzero only when a rollback
//!   re-simulated the frame after its first presentation.
//!
//! Because the buckets are consecutive intervals of one chain, their sum
//! equals the measured end-to-end latency *exactly*; the final check
//! verifies this within 5% and the binary exits nonzero otherwise (or when
//! no chain could be assembled at all).
//!
//! Usage:
//!   `tracescope [--quick] [--frames N] [--seed N] [--rollback] [--show F]`
//!       runs a lossy two-site simulation with tracing on, dumps
//!       `results/trace-site{N}.jsonl`, and analyzes them.
//!   `tracescope <dump.jsonl> <dump.jsonl> ...`
//!       merges existing per-site dumps instead of simulating.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

use coplay_bench::{write_results_json, Options};
use coplay_clock::SimDuration;
use coplay_games::GameId;
use coplay_sim::{run_experiment, ExperimentConfig};
use coplay_sync::ConsistencyMode;

/// One span record parsed back from a trace dump, tagged with the site
/// whose dump it came from.
#[derive(Debug, Clone)]
struct SpanRec {
    site: u8,
    t_us: u64,
    stage: String,
    frame: u64,
    peer: u8,
}

/// One site's parsed dump: identity header plus its spans and stalls.
#[derive(Debug, Default)]
struct SiteTrace {
    session: u64,
    site: u8,
    dropped_spans: u64,
    spans: Vec<SpanRec>,
    /// Stall intervals `(begin_us, end_us)` reconstructed from `stall_end`
    /// events (which carry their duration).
    stalls: Vec<(u64, u64)>,
}

/// Extracts the integer following `"key":` in a single JSON line. The dump
/// format is flat (no nesting, numeric fields unquoted), so a line scan is
/// sufficient — same approach as hotpath's baseline parser.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string following `"key":"` in a single JSON line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Parses one per-site trace dump (header line + event lines).
fn parse_trace(text: &str) -> Option<SiteTrace> {
    let mut t = SiteTrace::default();
    let mut saw_meta = false;
    for line in text.lines() {
        let Some(event) = json_str(line, "event") else {
            continue;
        };
        match event {
            "trace_meta" => {
                t.session = json_u64(line, "session")?;
                t.site = json_u64(line, "site")? as u8;
                t.dropped_spans = json_u64(line, "dropped_spans").unwrap_or(0);
                saw_meta = true;
            }
            "span" => {
                t.spans.push(SpanRec {
                    site: t.site,
                    t_us: json_u64(line, "t_us")?,
                    stage: json_str(line, "stage")?.to_string(),
                    frame: json_u64(line, "frame")?,
                    peer: json_u64(line, "peer")? as u8,
                });
            }
            "stall_end" => {
                let end = json_u64(line, "t_us")?;
                let dur = json_u64(line, "duration_us")?;
                t.stalls.push((end.saturating_sub(dur), end));
            }
            _ => {}
        }
    }
    saw_meta.then_some(t)
}

/// One assembled cross-site chain: input sampled at `origin`, consumed at
/// `dest`. All timestamps in microseconds of the shared session clock.
#[derive(Debug)]
struct Chain {
    origin: u8,
    dest: u8,
    frame: u64,
    sampled: u64,
    sent: u64,
    received: u64,
    merged: u64,
    presented: u64,
    /// Last (re)execution: `presented`, or the final `resimulated` span.
    authoritative: u64,
}

impl Chain {
    fn end_to_end(&self) -> u64 {
        self.authoritative.saturating_sub(self.sampled)
    }
}

/// Microseconds of `[a, b]` overlapped by any stall interval.
fn stall_overlap(stalls: &[(u64, u64)], a: u64, b: u64) -> u64 {
    stalls
        .iter()
        .map(|&(s, e)| e.min(b).saturating_sub(s.max(a)))
        .sum()
}

/// Assembles cross-site chains from the merged per-site traces: for every
/// (origin, frame) pair sent to a remote consumer, the first time each
/// stage was reached on the relevant site.
fn build_chains(traces: &[SiteTrace]) -> Vec<Chain> {
    // (site, frame) → stage → earliest/latest times.
    let mut first: BTreeMap<(u8, u64, &str), u64> = BTreeMap::new();
    let mut last: BTreeMap<(u8, u64, &str), u64> = BTreeMap::new();
    for t in traces {
        for s in &t.spans {
            let key = (s.site, s.frame, s.stage.as_str());
            first.entry(key).or_insert(s.t_us);
            last.insert(key, s.t_us);
        }
    }
    let mut chains = Vec::new();
    for origin in traces {
        for dest in traces {
            if dest.site == origin.site {
                continue;
            }
            // Frames the origin sent toward this destination.
            let sent_frames: BTreeMap<u64, u64> = origin
                .spans
                .iter()
                .filter(|s| s.stage == "sent" && s.peer == dest.site)
                .map(|s| (s.frame, s.t_us))
                .collect();
            for (&frame, &sent) in &sent_frames {
                let Some(&sampled) = first.get(&(origin.site, frame, "sampled")) else {
                    continue;
                };
                let Some(&received) = first.get(&(dest.site, frame, "received")) else {
                    continue;
                };
                let Some(&merged) = first.get(&(dest.site, frame, "merged")) else {
                    continue;
                };
                let Some(&presented) = first.get(&(dest.site, frame, "presented")) else {
                    continue;
                };
                let resim = last.get(&(dest.site, frame, "resimulated")).copied();
                chains.push(Chain {
                    origin: origin.site,
                    dest: dest.site,
                    frame,
                    sampled,
                    sent,
                    received,
                    merged,
                    presented,
                    authoritative: resim.map_or(presented, |r| r.max(presented)),
                });
            }
        }
    }
    chains
}

/// Mean of an iterator of microsecond quantities, as fractional ms.
fn mean_ms(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<u64>() as f64 / values.len() as f64 / 1000.0
}

fn print_frame(traces: &[SiteTrace], frame: u64) {
    println!("--- frame {frame} timeline (all sites, time-ordered) ---");
    let mut rows: Vec<&SpanRec> = traces
        .iter()
        .flat_map(|t| t.spans.iter())
        .filter(|s| s.frame == frame)
        .collect();
    rows.sort_by_key(|s| s.t_us);
    for s in rows {
        println!(
            "  {:>10.3} ms  site {}  {:<20} peer {}",
            s.t_us as f64 / 1000.0,
            s.site,
            s.stage,
            s.peer
        );
    }
    println!();
}

fn run_sim(opts: &Options, rollback: bool) -> Result<Vec<String>, String> {
    let cfg = ExperimentConfig {
        game: GameId::Pong,
        rtt: SimDuration::from_millis(150),
        jitter: SimDuration::from_millis(10),
        loss: 0.05,
        trace: true,
        forensics_root: Some("results/forensics".into()),
        consistency: if rollback {
            ConsistencyMode::rollback()
        } else {
            ConsistencyMode::Lockstep
        },
        ..opts.apply(ExperimentConfig::default())
    };
    let result = run_experiment(cfg).map_err(|e| e.to_string())?;
    let mut dumps = Vec::new();
    std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
    for (i, tel) in result.telemetry.iter().enumerate() {
        let text = tel.trace_jsonl();
        let path = format!("results/trace-site{i}.jsonl");
        std::fs::write(&path, &text).map_err(|e| e.to_string())?;
        println!("wrote {path} ({} lines)", text.lines().count());
        dumps.push(text);
    }
    println!();
    Ok(dumps)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = Options::parse(args.clone());
    let rollback = args.iter().any(|a| a == "--rollback");
    let show: Option<u64> = args
        .iter()
        .position(|a| a == "--show")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let files: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<u64>().is_err())
        .collect();

    let dumps: Vec<String> = if files.is_empty() {
        match run_sim(&opts, rollback) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("tracescope: simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut d = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(text) => d.push(text),
                Err(e) => {
                    eprintln!("tracescope: cannot read {f}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        d
    };

    let traces: Vec<SiteTrace> = dumps.iter().filter_map(|d| parse_trace(d)).collect();
    if traces.is_empty() {
        eprintln!("tracescope: no trace_meta header found in any dump");
        return ExitCode::FAILURE;
    }
    let session = traces[0].session;
    if traces.iter().any(|t| t.session != session) {
        eprintln!("tracescope: dumps are from different sessions");
        return ExitCode::FAILURE;
    }
    println!(
        "session {session:#x}: {} site dump(s), {} spans total",
        traces.len(),
        traces.iter().map(|t| t.spans.len()).sum::<usize>()
    );
    for t in &traces {
        if t.dropped_spans > 0 {
            println!(
                "  warning: site {} ring evicted {} spans — timeline has holes",
                t.site, t.dropped_spans
            );
        }
    }

    if let Some(f) = show {
        print_frame(&traces, f);
    }

    let chains = build_chains(&traces);
    if chains.is_empty() {
        eprintln!("tracescope: no cross-site chain could be assembled");
        return ExitCode::FAILURE;
    }

    // Per-direction breakdown.
    let stalls_of = |site: u8| {
        traces
            .iter()
            .find(|t| t.site == site)
            .map(|t| t.stalls.as_slice())
            .unwrap_or(&[])
    };
    let mut directions: BTreeMap<(u8, u8), Vec<&Chain>> = BTreeMap::new();
    for c in &chains {
        directions.entry((c.origin, c.dest)).or_default().push(c);
    }
    println!(
        "{:<12} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "direction", "chains", "pacing", "wire", "lag", "stall", "present", "resim", "end-to-end"
    );
    let mut total_sum_us: u64 = 0;
    let mut total_e2e_us: u64 = 0;
    let mut rows_json = Vec::new();
    for ((origin, dest), cs) in &directions {
        let stalls = stalls_of(*dest);
        let first_frame = cs.iter().map(|c| c.frame).min().unwrap_or(0);
        let last_frame = cs.iter().map(|c| c.frame).max().unwrap_or(0);
        let pacing: Vec<u64> = cs.iter().map(|c| c.sent - c.sampled).collect();
        let wire: Vec<u64> = cs
            .iter()
            .map(|c| c.received.saturating_sub(c.sent))
            .collect();
        let wait: Vec<u64> = cs
            .iter()
            .map(|c| c.merged.saturating_sub(c.received))
            .collect();
        let stall: Vec<u64> = cs
            .iter()
            .map(|c| stall_overlap(stalls, c.received, c.merged))
            .collect();
        let lag: Vec<u64> = wait
            .iter()
            .zip(&stall)
            .map(|(w, s)| w.saturating_sub(*s))
            .collect();
        let present: Vec<u64> = cs.iter().map(|c| c.presented - c.merged).collect();
        let resim: Vec<u64> = cs.iter().map(|c| c.authoritative - c.presented).collect();
        let e2e: Vec<u64> = cs.iter().map(|c| c.end_to_end()).collect();
        total_sum_us += pacing.iter().sum::<u64>()
            + wire.iter().sum::<u64>()
            + wait.iter().sum::<u64>()
            + present.iter().sum::<u64>()
            + resim.iter().sum::<u64>();
        total_e2e_us += e2e.iter().sum::<u64>();
        println!(
            "{origin} -> {dest:<7} {:>7} {:>8.2}m {:>8.2}m {:>8.2}m {:>8.2}m {:>8.2}m {:>8.2}m {:>9.2}m",
            cs.len(),
            mean_ms(&pacing),
            mean_ms(&wire),
            mean_ms(&lag),
            mean_ms(&stall),
            mean_ms(&present),
            mean_ms(&resim),
            mean_ms(&e2e),
        );
        rows_json.push(format!(
            "    {{\"origin\": {origin}, \"dest\": {dest}, \"chains\": {}, \
             \"first_frame\": {first_frame}, \"last_frame\": {last_frame}, \
             \"pacing_ms\": {:.3}, \"wire_ms\": {:.3}, \"lag_ms\": {:.3}, \
             \"stall_ms\": {:.3}, \"present_ms\": {:.3}, \"resim_ms\": {:.3}, \
             \"end_to_end_ms\": {:.3}}}",
            cs.len(),
            mean_ms(&pacing),
            mean_ms(&wire),
            mean_ms(&lag),
            mean_ms(&stall),
            mean_ms(&present),
            mean_ms(&resim),
            mean_ms(&e2e),
        ));
    }
    println!();

    // The buckets telescope, so their sum must reproduce the measured
    // end-to-end latency. Tolerate 5% for rounding/clamping.
    let diff = total_sum_us.abs_diff(total_e2e_us) as f64;
    let ok = total_e2e_us > 0 && diff / total_e2e_us as f64 <= 0.05;
    println!(
        "breakdown sum {:.2} ms vs end-to-end {:.2} ms over {} chains: {}",
        total_sum_us as f64 / 1000.0,
        total_e2e_us as f64 / 1000.0,
        chains.len(),
        if ok { "PASS (within 5%)" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"figure\": \"tracescope\",\n  \"session\": {session},\n  \
         \"chains\": {},\n  \"sum_us\": {total_sum_us},\n  \"end_to_end_us\": {total_e2e_us},\n  \
         \"within_5pct\": {ok},\n  \"rows\": [\n{}\n  ]\n}}\n",
        chains.len(),
        rows_json.join(",\n"),
    );
    match write_results_json("tracescope.json", &json) {
        Ok(path) => println!("wrote {}", Path::new(&path).display()),
        Err(e) => eprintln!("warning: could not write tracescope.json: {e}"),
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
