//! Shared plumbing for the paper-figure regeneration binaries.
//!
//! Every figure and extension experiment from DESIGN.md §4 has a binary in
//! `src/bin/`; they share the small argument parser and formatting helpers
//! here. Criterion micro-benchmarks live in `benches/micro.rs`.

use coplay_sim::ExperimentConfig;

/// Command-line options shared by the experiment binaries.
///
/// Usage: `<bin> [--frames N] [--seed N] [--quick]`. `--quick` cuts the
/// per-point frame count to 600 for fast smoke runs; the paper's value is
/// 3600 (one minute at 60 FPS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Frames per experiment point.
    pub frames: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            frames: 3600,
            seed: 0x0C05_01A1,
        }
    }
}

impl Options {
    /// Parses options from an iterator of arguments (excluding argv0).
    ///
    /// Unknown arguments are ignored so binaries can add their own.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Options {
        let mut opts = Options::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--frames" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        opts.frames = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        opts.seed = v;
                    }
                }
                "--quick" => opts.frames = 600,
                _ => {}
            }
        }
        opts
    }

    /// Parses from the process environment.
    pub fn from_env() -> Options {
        Options::parse(std::env::args().skip(1))
    }

    /// Applies these options to an experiment config.
    pub fn apply(&self, mut cfg: ExperimentConfig) -> ExperimentConfig {
        cfg.frames = self.frames;
        cfg.seed = self.seed;
        cfg
    }
}

/// Prints the standard experiment header.
pub fn banner(title: &str, opts: &Options) {
    println!("=== {title} ===");
    println!("frames/point: {}, seed: {:#x}", opts.frames, opts.seed);
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        assert_eq!(Options::default().frames, 3600);
    }

    #[test]
    fn parse_flags() {
        let o = Options::parse(
            ["--frames", "100", "--seed", "7"].map(String::from),
        );
        assert_eq!(o.frames, 100);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn quick_flag_shrinks_frames() {
        let o = Options::parse(["--quick".to_string()]);
        assert_eq!(o.frames, 600);
    }

    #[test]
    fn unknown_args_ignored() {
        let o = Options::parse(["--wat".to_string(), "--frames".into(), "9".into()]);
        assert_eq!(o.frames, 9);
    }

    #[test]
    fn apply_overrides_config() {
        let o = Options { frames: 42, seed: 9 };
        let cfg = o.apply(ExperimentConfig::default());
        assert_eq!(cfg.frames, 42);
        assert_eq!(cfg.seed, 9);
    }
}
