//! Shared plumbing for the paper-figure regeneration binaries.
//!
//! Every figure and extension experiment from DESIGN.md §4 has a binary in
//! `src/bin/`; they share the small argument parser and formatting helpers
//! here. Micro-benchmarks live in `benches/micro.rs`.

use std::path::{Path, PathBuf};

use coplay_sim::{ExperimentConfig, SweepRow};

/// Command-line options shared by the experiment binaries.
///
/// Usage: `<bin> [--frames N] [--seed N] [--threads N] [--quick]`.
/// `--quick` cuts the per-point frame count to 600 for fast smoke runs;
/// the paper's value is 3600 (one minute at 60 FPS). `--threads` caps the
/// sweep worker threads (0, the default, means one per core); thread
/// count never changes the output, only the wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Frames per experiment point.
    pub frames: u64,
    /// Master seed.
    pub seed: u64,
    /// Sweep worker threads; 0 = one per available core.
    pub threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            frames: 3600,
            seed: 0x0C05_01A1,
            threads: 0,
        }
    }
}

impl Options {
    /// Parses options from an iterator of arguments (excluding argv0).
    ///
    /// Unknown arguments are ignored so binaries can add their own.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Options {
        let mut opts = Options::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--frames" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        opts.frames = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        opts.seed = v;
                    }
                }
                "--threads" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        opts.threads = v;
                    }
                }
                "--quick" => opts.frames = 600,
                _ => {}
            }
        }
        opts
    }

    /// Parses from the process environment.
    pub fn from_env() -> Options {
        Options::parse(std::env::args().skip(1))
    }

    /// Applies these options to an experiment config.
    pub fn apply(&self, mut cfg: ExperimentConfig) -> ExperimentConfig {
        cfg.frames = self.frames;
        cfg.seed = self.seed;
        cfg
    }

    /// The worker-thread count for parallel sweeps: the `--threads`
    /// override, or one per available core.
    pub fn sweep_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Prints the standard experiment header.
pub fn banner(title: &str, opts: &Options) {
    println!("=== {title} ===");
    println!("frames/point: {}, seed: {:#x}", opts.frames, opts.seed);
    println!();
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Serialises a Figure-1 sweep as a machine-readable JSON document.
///
/// One object per swept point with the quantities behind the figure
/// (mean frame time, footnote-10 deviation, FPS, convergence), plus the
/// measured full-speed RTT threshold when one exists.
pub fn figure1_json(opts: &Options, rows: &[SweepRow], threshold_ms: Option<u64>) -> String {
    let mut out = String::from("{\n  \"figure\": \"fig1\",\n");
    out.push_str(&format!(
        "  \"frames\": {},\n  \"seed\": {},\n",
        opts.frames, opts.seed
    ));
    out.push_str(&format!(
        "  \"threshold_rtt_ms\": {},\n  \"rows\": [\n",
        threshold_ms.map_or("null".to_string(), |t| t.to_string())
    ));
    for (i, row) in rows.iter().enumerate() {
        let site = &row.result.sites[0];
        out.push_str(&format!(
            "    {{\"rtt_ms\": {}, \"frame_time_ms\": {}, \"deviation_ms\": {}, \
             \"fps\": {}, \"converged\": {}}}{}\n",
            row.rtt.as_millis(),
            json_num(site.mean_frame_time_ms),
            json_num(row.result.worst_deviation_ms()),
            json_num(site.fps()),
            row.result.converged,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serialises a Figure-2 sweep as a machine-readable JSON document.
///
/// One object per swept point with the footnote-11 inter-site synchrony
/// and convergence flag.
pub fn figure2_json(opts: &Options, rows: &[SweepRow]) -> String {
    let mut out = String::from("{\n  \"figure\": \"fig2\",\n");
    out.push_str(&format!(
        "  \"frames\": {},\n  \"seed\": {},\n  \"rows\": [\n",
        opts.frames, opts.seed
    ));
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rtt_ms\": {}, \"synchrony_ms\": {}, \"converged\": {}}}{}\n",
            row.rtt.as_millis(),
            json_num(row.result.synchrony_ms),
            row.result.converged,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serialises the lockstep-vs-rollback comparison sweep as a
/// machine-readable JSON document (`results/BENCH_rollback.json`).
///
/// `lockstep` and `rollback` must cover the same RTT points in the same
/// order. Each row carries both modes' pacing quality (mean frame time,
/// footnote-10 deviation, footnote-11 synchrony, input-wait stalls) plus
/// the rollback-only repair counters, so the trade can be read per point:
/// lockstep stretches frames past the local-lag budget, rollback holds the
/// nominal rate and pays in resimulated frames instead.
pub fn rollback_json(opts: &Options, lockstep: &[SweepRow], rollback: &[SweepRow]) -> String {
    assert_eq!(
        lockstep.len(),
        rollback.len(),
        "modes must sweep the same points"
    );
    let mut out = String::from("{\n  \"figure\": \"rollback\",\n");
    out.push_str(&format!(
        "  \"frames\": {},\n  \"seed\": {},\n  \"rows\": [\n",
        opts.frames, opts.seed
    ));
    for (i, (ls, rb)) in lockstep.iter().zip(rollback).enumerate() {
        assert_eq!(ls.rtt, rb.rtt, "modes must sweep the same points");
        let mode_common = |row: &SweepRow| {
            let site = &row.result.sites[0];
            let stalls: u64 = row
                .result
                .session_stats
                .iter()
                .map(|s| s.stalled_frames)
                .sum();
            format!(
                "\"frame_time_ms\": {}, \"deviation_ms\": {}, \"synchrony_ms\": {}, \
                 \"stalled_frames\": {}, \"converged\": {}",
                json_num(site.mean_frame_time_ms),
                json_num(row.result.worst_deviation_ms()),
                json_num(row.result.synchrony_ms),
                stalls,
                row.result.converged,
            )
        };
        let rollbacks: u64 = rb.result.session_stats.iter().map(|s| s.rollbacks).sum();
        let resim: u64 = rb
            .result
            .session_stats
            .iter()
            .map(|s| s.resimulated_frames)
            .sum();
        let depth = rb
            .result
            .session_stats
            .iter()
            .map(|s| s.max_rollback_depth)
            .max()
            .unwrap_or(0);
        out.push_str(&format!(
            "    {{\"rtt_ms\": {}, \"lockstep\": {{{}}}, \"rollback\": {{{}, \
             \"rollbacks\": {}, \"resimulated_frames\": {}, \"max_rollback_depth\": {}}}}}{}\n",
            ls.rtt.as_millis(),
            mode_common(ls),
            mode_common(rb),
            rollbacks,
            resim,
            depth,
            if i + 1 < lockstep.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `json` to `results/<file_name>`, creating the directory as
/// needed, and returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors from creating the directory or writing.
pub fn write_results_json(file_name: &str, json: &str) -> std::io::Result<PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file_name);
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        assert_eq!(Options::default().frames, 3600);
    }

    #[test]
    fn parse_flags() {
        let o =
            Options::parse(["--frames", "100", "--seed", "7", "--threads", "3"].map(String::from));
        assert_eq!(o.frames, 100);
        assert_eq!(o.seed, 7);
        assert_eq!(o.threads, 3);
        assert_eq!(o.sweep_threads(), 3);
        assert!(Options::default().sweep_threads() >= 1);
    }

    #[test]
    fn quick_flag_shrinks_frames() {
        let o = Options::parse(["--quick".to_string()]);
        assert_eq!(o.frames, 600);
    }

    #[test]
    fn unknown_args_ignored() {
        let o = Options::parse(["--wat".to_string(), "--frames".into(), "9".into()]);
        assert_eq!(o.frames, 9);
    }

    #[test]
    fn apply_overrides_config() {
        let o = Options {
            frames: 42,
            seed: 9,
            threads: 0,
        };
        let cfg = o.apply(ExperimentConfig::default());
        assert_eq!(cfg.frames, 42);
        assert_eq!(cfg.seed, 9);
    }

    fn mini_rows(opts: &Options) -> Vec<SweepRow> {
        let base = opts.apply(ExperimentConfig {
            game: coplay_games::GameId::Pong,
            ..ExperimentConfig::default()
        });
        let points = [
            coplay_clock::SimDuration::ZERO,
            coplay_clock::SimDuration::from_millis(40),
        ];
        coplay_sim::run_sweep(&base, &points, |_, _| {}).unwrap()
    }

    #[test]
    fn figure1_json_is_well_formed() {
        let opts = Options {
            frames: 120,
            seed: 7,
            threads: 0,
        };
        let rows = mini_rows(&opts);
        let json = figure1_json(&opts, &rows, Some(40));
        assert!(json.contains("\"figure\": \"fig1\""));
        assert!(json.contains("\"threshold_rtt_ms\": 40"));
        assert!(json.contains("\"rtt_ms\": 0"));
        assert!(json.contains("\"rtt_ms\": 40"));
        assert!(json.contains("\"frame_time_ms\": "));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Exactly one row separator for two rows.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn figure2_json_is_well_formed() {
        let opts = Options {
            frames: 120,
            seed: 7,
            threads: 0,
        };
        let rows = mini_rows(&opts);
        let json = figure2_json(&opts, &rows);
        assert!(json.contains("\"figure\": \"fig2\""));
        assert!(json.contains("\"synchrony_ms\": "));
        assert!(json.contains("\"converged\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn rollback_json_pairs_both_modes() {
        let opts = Options {
            frames: 120,
            seed: 7,
            threads: 0,
        };
        let lockstep = mini_rows(&opts);
        let base = opts.apply(ExperimentConfig {
            game: coplay_games::GameId::Pong,
            consistency: coplay_sync::ConsistencyMode::rollback(),
            ..ExperimentConfig::default()
        });
        let points = [
            coplay_clock::SimDuration::ZERO,
            coplay_clock::SimDuration::from_millis(40),
        ];
        let rollback = coplay_sim::run_sweep(&base, &points, |_, _| {}).unwrap();
        let json = rollback_json(&opts, &lockstep, &rollback);
        assert!(json.contains("\"figure\": \"rollback\""));
        assert!(json.contains("\"lockstep\": {"));
        assert!(json.contains("\"rollback\": {"));
        assert!(json.contains("\"rollbacks\": "));
        assert!(json.contains("\"max_rollback_depth\": "));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Two rows, each with two mode objects.
        assert_eq!(json.matches("\"rtt_ms\": ").count(), 2);
    }

    #[test]
    fn json_num_handles_non_finite() {
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert!(json_num(1.5).starts_with("1.5"));
    }
}
