//! Clock abstractions: virtual time for simulation, monotonic OS time for
//! live sessions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::time::SimTime;

/// A source of monotonic timestamps.
///
/// The synchronization core (Algorithms 1–4 of the paper) is written against
/// this trait so that the identical protocol code can be driven by the
/// deterministic discrete-event simulator ([`VirtualClock`]) and by the
/// real-time runner ([`SystemClock`]).
///
/// Implementations must be monotonic: successive calls to [`Clock::now`]
/// never go backwards.
///
/// # Examples
///
/// ```
/// use coplay_clock::{Clock, SimDuration, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let t0 = clock.now();
/// clock.advance(SimDuration::from_millis(5));
/// assert_eq!(clock.now() - t0, SimDuration::from_millis(5));
/// ```
pub trait Clock {
    /// The current instant.
    fn now(&self) -> SimTime;
}

/// A manually advanced clock shared by every component of a simulation.
///
/// Cloning a `VirtualClock` yields a handle to the *same* timeline; the
/// discrete-event executor advances it as events fire and every actor reads
/// the shared value. All reads within one event see the same instant, which
/// is what makes simulations reproducible.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    micros: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `dt`.
    pub fn advance(&self, dt: crate::time::SimDuration) {
        self.micros.fetch_add(dt.as_micros(), Ordering::SeqCst);
    }

    /// Jumps the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time: virtual time, like
    /// real time, never flows backwards.
    pub fn set(&self, t: SimTime) {
        let prev = self.micros.swap(t.as_micros(), Ordering::SeqCst);
        assert!(
            prev <= t.as_micros(),
            "virtual clock moved backwards: {prev} -> {}",
            t.as_micros()
        );
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.micros.load(Ordering::SeqCst))
    }
}

/// A monotonic wall clock anchored at its creation instant.
///
/// Timestamps are microseconds elapsed since the `SystemClock` was created,
/// measured with [`std::time::Instant`].
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock whose origin is "now".
    // The one sanctioned wall-clock read: everything downstream sees only
    // SimTime offsets from this origin.
    #[allow(clippy::disallowed_methods)]
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.origin.elapsed().as_micros() as u64)
    }
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now(&self) -> SimTime {
        (**self).now()
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now(&self) -> SimTime {
        (**self).now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn virtual_clock_handles_share_a_timeline() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_millis(7));
        assert_eq!(b.now(), SimTime::from_millis(7));
    }

    #[test]
    fn virtual_clock_set_forward() {
        let c = VirtualClock::new();
        c.set(SimTime::from_millis(3));
        assert_eq!(c.now(), SimTime::from_millis(3));
        // Setting to the same instant is allowed.
        c.set(SimTime::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn virtual_clock_rejects_backwards_set() {
        let c = VirtualClock::new();
        c.set(SimTime::from_millis(3));
        c.set(SimTime::from_millis(2));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_trait_objects_and_refs_work() {
        fn take<C: Clock>(c: C) -> SimTime {
            c.now()
        }
        let v = VirtualClock::new();
        v.advance(SimDuration::from_micros(42));
        assert_eq!(take(&v), SimTime::from_micros(42));
        let arc: Arc<dyn Clock> = Arc::new(v);
        assert_eq!(take(arc), SimTime::from_micros(42));
    }
}
