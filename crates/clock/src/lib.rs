//! Time substrate for coplay: integer time types, clock abstractions, a
//! deterministic discrete-event queue, and the measurement time server used
//! by the paper's evaluation.
//!
//! The ICDCS 2009 paper this workspace reproduces ("An Approach to Sharing
//! Legacy TV/Arcade Games for Real-Time Collaboration") measures frame pacing
//! and inter-site synchrony under emulated network conditions. Everything in
//! this crate exists to make those measurements *deterministic*:
//!
//! * [`SimTime`]/[`SimDuration`]/[`SimDelta`] — microsecond integer time, so
//!   protocol arithmetic is identical in simulation and production.
//! * [`Clock`] — the trait the sync algorithms are written against, with a
//!   shared [`VirtualClock`] for simulation and a monotonic [`SystemClock`]
//!   for live play.
//! * [`EventQueue`] — `(time, seq)`-ordered event dispatch for the
//!   discrete-event simulator.
//! * [`TimeServer`] — the paper's third-machine measurement server (§4).
//!
//! # Examples
//!
//! ```
//! use coplay_clock::{Clock, EventQueue, SimDuration, SimTime, VirtualClock};
//!
//! let clock = VirtualClock::new();
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::from_millis(16), "frame 1");
//! queue.schedule(SimTime::from_millis(33), "frame 2");
//!
//! while let Some((at, what)) = queue.pop() {
//!     clock.set(at);
//!     let _ = what;
//! }
//! assert_eq!(clock.now(), SimTime::from_millis(33));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod queue;
mod time;
mod timeserver;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use queue::{EventId, EventQueue};
pub use time::{SimDelta, SimDuration, SimTime};
pub use timeserver::TimeServer;
