//! A deterministic discrete-event queue.
//!
//! Events fire in `(time, insertion sequence)` order, so two events scheduled
//! for the same instant fire in the order they were scheduled. That total
//! order is what makes whole-simulation runs reproducible byte-for-byte.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events with deterministic tie-breaking.
///
/// # Examples
///
/// ```
/// use coplay_clock::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "late");
/// q.schedule(SimTime::from_millis(1), "early");
/// q.schedule(SimTime::from_millis(1), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: std::collections::BTreeSet<u64>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::BTreeSet::new(),
        }
    }

    /// Schedules `event` to fire at `at`; returns a handle for cancellation.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    /// Cancellation is lazy: the entry is dropped when it surfaces.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.at, entry.event));
        }
        None
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Skim cancelled entries off the top so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(2), "b")));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_ignores_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
