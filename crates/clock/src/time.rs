//! Integer time types used throughout coplay.
//!
//! All protocol-visible time is expressed in whole microseconds so that the
//! discrete-event simulator, the wire protocol, and the real-time runner
//! agree bit-for-bit on every computed deadline. Floating point never enters
//! protocol state (see DESIGN.md §5).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::time::Duration;

/// An absolute instant on a monotonic timeline, in microseconds.
///
/// `SimTime` is produced by a [`Clock`](crate::Clock): virtual time under the
/// simulator, time since process start under [`SystemClock`](crate::SystemClock).
/// The zero point is arbitrary but fixed for the lifetime of a clock.
///
/// # Examples
///
/// ```
/// use coplay_clock::{SimTime, SimDuration};
///
/// let t = SimTime::from_millis(10) + SimDuration::from_micros(250);
/// assert_eq!(t.as_micros(), 10_250);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(10_250));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// An unsigned span of time, in microseconds.
///
/// # Examples
///
/// ```
/// use coplay_clock::SimDuration;
///
/// let frame = SimDuration::from_nanos_rounded(16_666_667);
/// assert_eq!(frame.as_micros(), 16_667);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// A signed span of time, in microseconds.
///
/// Used for quantities that are negative by design, most importantly the
/// paper's `AdjustTimeDelta` carry-over in Algorithm 3 (a frame that overran
/// carries a *negative* delta into the next frame).
///
/// # Examples
///
/// ```
/// use coplay_clock::SimDelta;
///
/// let d = SimDelta::from_micros(-1_500);
/// assert!(d.is_negative());
/// assert_eq!((-d).as_micros(), 1_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDelta(i64);

impl SimTime {
    /// The origin of the timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the origin, truncated.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds since the origin (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the difference overflows an `i64`
    /// (≈292,000 years — unreachable in practice).
    pub fn delta_since(self, other: SimTime) -> SimDelta {
        SimDelta(self.0 as i64 - other.0 as i64)
    }

    /// Adds a signed delta, saturating at the origin.
    pub fn offset(self, delta: SimDelta) -> SimTime {
        if delta.0 >= 0 {
            SimTime(self.0.saturating_add(delta.0 as u64))
        } else {
            SimTime(self.0.saturating_sub(delta.0.unsigned_abs()))
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span from nanoseconds, rounding to the nearest microsecond.
    pub const fn from_nanos_rounded(nanos: u64) -> Self {
        SimDuration((nanos + 500) / 1_000)
    }

    /// The span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in whole milliseconds, truncated.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `self - other`, or zero if `other` is larger.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// This span as a signed [`SimDelta`].
    pub const fn as_delta(self) -> SimDelta {
        SimDelta(self.0 as i64)
    }

    /// Converts to a [`std::time::Duration`] for use with the OS.
    pub const fn to_std(self) -> Duration {
        Duration::from_micros(self.0)
    }

    /// Converts from a [`std::time::Duration`], truncating to microseconds.
    pub const fn from_std(d: Duration) -> Self {
        SimDuration(d.as_micros() as u64)
    }
}

impl SimDelta {
    /// The zero delta.
    pub const ZERO: SimDelta = SimDelta(0);

    /// Creates a signed delta of `micros` microseconds.
    pub const fn from_micros(micros: i64) -> Self {
        SimDelta(micros)
    }

    /// Creates a signed delta of `millis` milliseconds.
    pub const fn from_millis(millis: i64) -> Self {
        SimDelta(millis * 1_000)
    }

    /// The delta in whole microseconds.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// The delta in fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// `true` if the delta is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// `true` if the delta is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// The absolute value as an unsigned duration.
    pub const fn abs(self) -> SimDuration {
        SimDuration(self.0.unsigned_abs())
    }

    /// Clamps the delta into `[-limit, +limit]`.
    pub fn clamp_abs(self, limit: SimDuration) -> SimDelta {
        let lim = limit.0.min(i64::MAX as u64) as i64;
        SimDelta(self.0.clamp(-lim, lim))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Add for SimDelta {
    type Output = SimDelta;
    fn add(self, rhs: SimDelta) -> SimDelta {
        SimDelta(self.0 + rhs.0)
    }
}

impl AddAssign for SimDelta {
    fn add_assign(&mut self, rhs: SimDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDelta {
    type Output = SimDelta;
    fn sub(self, rhs: SimDelta) -> SimDelta {
        SimDelta(self.0 - rhs.0)
    }
}

impl Neg for SimDelta {
    type Output = SimDelta;
    fn neg(self) -> SimDelta {
        SimDelta(-self.0)
    }
}

impl Mul<i64> for SimDelta {
    type Output = SimDelta;
    fn mul(self, rhs: i64) -> SimDelta {
        SimDelta(self.0 * rhs)
    }
}

impl From<SimDuration> for SimDelta {
    fn from(d: SimDuration) -> SimDelta {
        SimDelta(d.0 as i64)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e3)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e3)
    }
}

impl fmt::Display for SimDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.3}ms", self.0 as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_micros(333);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
    }

    #[test]
    fn delta_since_is_signed() {
        let a = SimTime::from_micros(500);
        let b = SimTime::from_micros(800);
        assert_eq!(a.delta_since(b), SimDelta::from_micros(-300));
        assert_eq!(b.delta_since(a), SimDelta::from_micros(300));
    }

    #[test]
    fn offset_applies_signed_delta_with_saturation() {
        let t = SimTime::from_micros(100);
        assert_eq!(t.offset(SimDelta::from_micros(-300)), SimTime::ZERO);
        assert_eq!(
            t.offset(SimDelta::from_micros(50)),
            SimTime::from_micros(150)
        );
    }

    #[test]
    fn frame_duration_rounds_from_nanos() {
        // 1/60s: 16_666_666.7ns -> 16_667us.
        assert_eq!(
            SimDuration::from_nanos_rounded(16_666_667).as_micros(),
            16_667
        );
        assert_eq!(SimDuration::from_nanos_rounded(499).as_micros(), 0);
        assert_eq!(SimDuration::from_nanos_rounded(500).as_micros(), 1);
    }

    #[test]
    fn delta_clamp_abs() {
        let lim = SimDuration::from_micros(10);
        assert_eq!(
            SimDelta::from_micros(-50).clamp_abs(lim),
            SimDelta::from_micros(-10)
        );
        assert_eq!(
            SimDelta::from_micros(50).clamp_abs(lim),
            SimDelta::from_micros(10)
        );
        assert_eq!(
            SimDelta::from_micros(5).clamp_abs(lim),
            SimDelta::from_micros(5)
        );
    }

    #[test]
    fn std_duration_conversions() {
        let d = SimDuration::from_millis(16);
        assert_eq!(SimDuration::from_std(d.to_std()), d);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(format!("{}", SimTime::from_micros(1_500)), "1.500ms");
        assert_eq!(format!("{}", SimDelta::from_micros(-250)), "-0.250ms");
        assert_eq!(format!("{}", SimDuration::ZERO), "0.000ms");
    }
}
