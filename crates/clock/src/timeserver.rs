//! The measurement time server from §4 of the paper.
//!
//! The paper measures cross-machine synchrony without synchronizing physical
//! clocks: both gaming PCs are wired to a third *time server* over a LAN
//! (RTT < 1 ms), each site sends the server a small packet at the beginning
//! of every frame, and the server records the packet's *receive* time on its
//! own clock. Per-frame differences between the two sites' stamps then
//! measure synchrony; consecutive stamps of one site measure its frame time.
//!
//! [`TimeServer`] is the storage half of that design. Delivery latency from
//! site to server is applied by the caller (the simulator models the LAN hop;
//! a live deployment would use a real socket).

use std::collections::BTreeMap;

use crate::time::{SimDelta, SimTime};

/// Records frame-begin stamps per `(site, frame)` as received by the
/// measurement server.
///
/// # Examples
///
/// ```
/// use coplay_clock::{SimTime, TimeServer};
///
/// let mut server = TimeServer::new();
/// server.record(0, 0, SimTime::from_micros(100));
/// server.record(1, 0, SimTime::from_micros(400));
///
/// let diffs = server.pair_differences(0, 1);
/// assert_eq!(diffs.len(), 1);
/// assert_eq!(diffs[0].1.as_micros(), -300); // site 0 began 300us earlier
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeServer {
    // site -> frame -> receive time. BTreeMap keeps frames ordered for
    // frame-time extraction.
    stamps: BTreeMap<u8, BTreeMap<u64, SimTime>>,
}

impl TimeServer {
    /// Creates an empty time server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `site`'s frame `frame` stamp arrived at `recv_time`.
    ///
    /// If a duplicate stamp arrives for the same `(site, frame)` the first
    /// one wins, mirroring a real server that logs first arrival.
    pub fn record(&mut self, site: u8, frame: u64, recv_time: SimTime) {
        self.stamps
            .entry(site)
            .or_default()
            .entry(frame)
            .or_insert(recv_time);
    }

    /// Number of stamps recorded for `site`.
    pub fn stamp_count(&self, site: u8) -> usize {
        self.stamps.get(&site).map_or(0, BTreeMap::len)
    }

    /// The stamp for `(site, frame)`, if received.
    pub fn stamp(&self, site: u8, frame: u64) -> Option<SimTime> {
        self.stamps.get(&site)?.get(&frame).copied()
    }

    /// Per-frame begin times for `site`, in frame order.
    pub fn frames(&self, site: u8) -> Vec<(u64, SimTime)> {
        self.stamps
            .get(&site)
            .map(|m| m.iter().map(|(&f, &t)| (f, t)).collect())
            .unwrap_or_default()
    }

    /// Frame *durations* for `site`: the difference between the begin times
    /// of consecutive recorded frames (skipping gaps).
    ///
    /// This is exactly what Experiment Series 1 of the paper averages.
    pub fn frame_times(&self, site: u8) -> Vec<crate::time::SimDuration> {
        let frames = self.frames(site);
        frames
            .windows(2)
            .filter(|w| w[1].0 == w[0].0 + 1)
            .map(|w| w[1].1 - w[0].1)
            .collect()
    }

    /// Per-frame signed stamp differences `site_a - site_b` for every frame
    /// both sites stamped, in frame order.
    ///
    /// Experiment Series 2 of the paper averages the absolute values.
    pub fn pair_differences(&self, site_a: u8, site_b: u8) -> Vec<(u64, SimDelta)> {
        let (Some(a), Some(b)) = (self.stamps.get(&site_a), self.stamps.get(&site_b)) else {
            return Vec::new();
        };
        a.iter()
            .filter_map(|(&frame, &ta)| b.get(&frame).map(|&tb| (frame, ta.delta_since(tb))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn records_and_counts_stamps() {
        let mut s = TimeServer::new();
        s.record(0, 0, ms(0));
        s.record(0, 1, ms(17));
        assert_eq!(s.stamp_count(0), 2);
        assert_eq!(s.stamp_count(1), 0);
        assert_eq!(s.stamp(0, 1), Some(ms(17)));
        assert_eq!(s.stamp(0, 9), None);
    }

    #[test]
    fn duplicate_stamp_keeps_first() {
        let mut s = TimeServer::new();
        s.record(0, 5, ms(100));
        s.record(0, 5, ms(999));
        assert_eq!(s.stamp(0, 5), Some(ms(100)));
    }

    #[test]
    fn frame_times_are_consecutive_differences() {
        let mut s = TimeServer::new();
        s.record(0, 0, ms(0));
        s.record(0, 1, ms(17));
        s.record(0, 2, ms(33));
        let ft = s.frame_times(0);
        assert_eq!(
            ft,
            vec![SimDuration::from_millis(17), SimDuration::from_millis(16)]
        );
    }

    #[test]
    fn frame_times_skip_gaps() {
        let mut s = TimeServer::new();
        s.record(0, 0, ms(0));
        s.record(0, 2, ms(40)); // frame 1 stamp lost
        s.record(0, 3, ms(57));
        assert_eq!(s.frame_times(0), vec![SimDuration::from_millis(17)]);
    }

    #[test]
    fn pair_differences_match_common_frames_only() {
        let mut s = TimeServer::new();
        s.record(0, 0, ms(10));
        s.record(0, 1, ms(27));
        s.record(1, 1, ms(30));
        s.record(1, 2, ms(47));
        let d = s.pair_differences(0, 1);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0], (1, SimDelta::from_millis(-3)));
    }

    #[test]
    fn pair_differences_empty_without_data() {
        let s = TimeServer::new();
        assert!(s.pair_differences(0, 1).is_empty());
    }
}
