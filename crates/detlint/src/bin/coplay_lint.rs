//! `coplay-lint` — the multi-pass static-analysis suite (determinism,
//! panic-path, hot-alloc, waiver hygiene, wire-schema drift). The grown
//! name of `detlint`; both binaries run the same driver.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."));
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(detlint::cli::run(&args, &default_root))
}
