//! The lint suite's command-line driver, shared by the `detlint` and
//! `coplay-lint` binaries.
//!
//! One run executes every pass: the determinism rules, the panic-path and
//! allocation fences, waiver hygiene (`bad_suppression`/`stale_suppression`),
//! and the wire-schema extraction with its encode/decode symmetry check.
//! `--check-schema` additionally compares the extracted fingerprints against
//! the pinned lockfile; `--update-schema` rewrites it.

use std::path::{Path, PathBuf};

use crate::{lint_workspace, wire_schema};

const USAGE: &str = "coplay-lint — static analysis suite for the coplay workspace\n\n\
USAGE: coplay-lint [--root <workspace>] [--json <report path>]\n\
                   [--schema <lockfile>] [--check-schema | --update-schema]\n\n\
Passes:\n\
  determinism   wall clocks, unordered containers, floats, entropy,\n\
                mutable statics (per-path policy in src/policy.rs)\n\
  panic-path    unwrap/expect/panic!/unchecked-* in wire, transport,\n\
                and rollback/vm hot zones; slice indexing in byte codecs\n\
  hot-alloc     Vec::new/to_vec/clone/format!/Box::new in the modules\n\
                the perf PRs made alloc-free\n\
  waivers       malformed directives (bad_suppression) and waivers that\n\
                suppress nothing (stale_suppression)\n\
  wire-schema   extracts each codec's per-message op sequence, checks\n\
                encode/decode symmetry, fingerprints the layout\n\n\
Writes results/detlint.json; with --update-schema also writes the\n\
results/wire_schema.json lockfile; with --check-schema fails when the\n\
extracted fingerprint drifts from the lockfile without a VERSION bump.\n\
Exits 1 on any finding.";

/// Parsed command line.
struct Options {
    root: PathBuf,
    json_path: Option<PathBuf>,
    schema_path: Option<PathBuf>,
    check_schema: bool,
    update_schema: bool,
}

/// Runs the suite; returns the process exit code.
///
/// `args` excludes the program name. `default_root` is the workspace root
/// to use when `--root` is absent (the binaries pass their compile-time
/// manifest-relative root).
pub fn run(args: &[String], default_root: &Path) -> u8 {
    let mut opts = Options {
        root: default_root.to_path_buf(),
        json_path: None,
        schema_path: None,
        check_schema: false,
        update_schema: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let Some(v) = it.next() else {
                    eprintln!("coplay-lint: --root needs a path");
                    return 2;
                };
                opts.root = PathBuf::from(v);
            }
            "--json" => {
                let Some(v) = it.next() else {
                    eprintln!("coplay-lint: --json needs a path");
                    return 2;
                };
                opts.json_path = Some(PathBuf::from(v));
            }
            "--schema" => {
                let Some(v) = it.next() else {
                    eprintln!("coplay-lint: --schema needs a path");
                    return 2;
                };
                opts.schema_path = Some(PathBuf::from(v));
            }
            "--check-schema" => opts.check_schema = true,
            "--update-schema" => opts.update_schema = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("coplay-lint: unknown argument `{other}` (try --help)");
                return 2;
            }
        }
    }
    if opts.check_schema && opts.update_schema {
        eprintln!("coplay-lint: --check-schema and --update-schema are exclusive");
        return 2;
    }

    // Pass 1–4: the per-file rule passes.
    let mut report = match lint_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("coplay-lint: scan failed: {e}");
            return 2;
        }
    };

    // Pass 5: wire-schema extraction + symmetry.
    let schemas = match wire_schema::extract_workspace(&opts.root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("coplay-lint: wire-schema extraction failed: {e}");
            return 2;
        }
    };
    report
        .diagnostics
        .extend(schemas.diagnostics.iter().cloned());
    report
        .diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    for d in &report.diagnostics {
        println!("{d}");
    }

    let json_path = opts
        .json_path
        .unwrap_or_else(|| opts.root.join("results/detlint.json"));
    if let Some(parent) = json_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("coplay-lint: could not write {}: {e}", json_path.display());
    }

    let schema_path = opts
        .schema_path
        .unwrap_or_else(|| opts.root.join("results/wire_schema.json"));
    let mut schema_failed = false;
    if opts.update_schema {
        if let Some(parent) = schema_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&schema_path, wire_schema::to_json(&schemas.codecs)) {
            Ok(()) => println!(
                "coplay-lint: pinned {} codec schema(s) to {}",
                schemas.codecs.len(),
                schema_path.display()
            ),
            Err(e) => {
                eprintln!(
                    "coplay-lint: could not write {}: {e}",
                    schema_path.display()
                );
                return 2;
            }
        }
    } else if opts.check_schema {
        match std::fs::read_to_string(&schema_path) {
            Ok(pinned) => {
                for f in wire_schema::check_against(&schemas.codecs, &pinned) {
                    eprintln!("coplay-lint: schema drift: {f}");
                    schema_failed = true;
                }
            }
            Err(e) => {
                eprintln!(
                    "coplay-lint: cannot read lockfile {}: {e} (run --update-schema once)",
                    schema_path.display()
                );
                schema_failed = true;
            }
        }
    }

    println!(
        "coplay-lint: {} file(s) scanned, {} codec schema(s) extracted, \
         {} violation(s), {} suppression(s) honoured",
        report.files_scanned,
        schemas.codecs.len(),
        report.diagnostics.len(),
        report.suppressions
    );
    u8::from(!report.is_clean() || schema_failed)
}
