//! A lightweight Rust lexer — just enough syntax to audit determinism.
//!
//! The linter must see identifiers, float literals, and a little punctuation
//! while ignoring everything inside comments, strings, and char literals
//! (doc prose routinely mentions `Instant` or `HashMap`, and string payloads
//! are data, not code). It must also *read* one very specific kind of
//! comment: `// detlint: allow(<rule>) -- <reason>` suppression directives.
//!
//! The lexer is deliberately not a parser: it has no grammar, no AST, and no
//! `syn` dependency (the workspace builds offline). Rules operate on the
//! flat token stream, which is exact enough for the fence we need — every
//! banned construct is visible as an identifier or literal token.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `static`, `f64`, …).
    Ident,
    /// A floating-point literal (`1.5`, `2e9`, `3f32`).
    FloatLit,
    /// An integer literal (`3`, `0xC6`, `65_536u32`).
    IntLit,
    /// Punctuation; `::` is joined, everything else is one character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's class.
    pub kind: TokenKind,
    /// The token's text, verbatim from the source.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A `// detlint: allow(<rules>) -- <reason>` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive appears on.
    pub line: u32,
    /// Rule names listed inside `allow(...)`, comma-separated, trimmed.
    pub rules: Vec<String>,
    /// `true` if a non-empty `-- <reason>` trailer is present.
    pub has_reason: bool,
    /// `true` if the directive parsed as `allow(...)` at all.
    pub well_formed: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct ScannedSource {
    /// Code tokens, in order.
    pub tokens: Vec<Token>,
    /// Every `detlint:` directive found in comments.
    pub allows: Vec<AllowDirective>,
}

/// Parses the text after `detlint:` in a comment into a directive.
fn parse_directive(body: &str, line: u32) -> AllowDirective {
    let malformed = AllowDirective {
        line,
        rules: Vec::new(),
        has_reason: false,
        well_formed: false,
    };
    let body = body.trim();
    let Some(rest) = body.strip_prefix("allow") else {
        return malformed;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return malformed;
    };
    let Some(close) = rest.find(')') else {
        return malformed;
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let trailer = rest[close + 1..].trim();
    let has_reason = trailer
        .strip_prefix("--")
        .is_some_and(|r| !r.trim().is_empty());
    let well_formed = !rules.is_empty();
    AllowDirective {
        line,
        rules,
        has_reason,
        well_formed,
    }
}

/// Parses the numeric value of an [`TokenKind::IntLit`] token's text:
/// underscores dropped, type suffix ignored, `0x`/`0o`/`0b` radix honoured.
pub fn int_value(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (radix, digits) = match clean.as_bytes() {
        [b'0', b'x', ..] => (16, &clean[2..]),
        [b'0', b'o', ..] => (8, &clean[2..]),
        [b'0', b'b', ..] => (2, &clean[2..]),
        _ => (10, clean.as_str()),
    };
    // Stop at the type suffix (`u8`, `usize`, …); hex digits are consumed
    // first, so `0xFFu8` splits after `FF`.
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    u64::from_str_radix(&digits[..end], radix).ok()
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `source`, returning tokens and suppression directives.
pub fn scan(source: &str) -> ScannedSource {
    let b = source.as_bytes();
    let mut out = ScannedSource::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = source[i..].find('\n').map_or(b.len(), |n| i + n);
                let comment = &source[i..end];
                if let Some(pos) = comment.find("detlint:") {
                    out.allows
                        .push(parse_directive(&comment[pos + "detlint:".len()..], line));
                }
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_string(b, i, &mut line),
            b'\'' => i = skip_char_or_lifetime(b, i),
            _ if c.is_ascii_digit() => {
                let (end, is_float) = scan_number(b, i);
                out.tokens.push(Token {
                    kind: if is_float {
                        TokenKind::FloatLit
                    } else {
                        TokenKind::IntLit
                    },
                    text: source[i..end].to_string(),
                    line,
                });
                i = end;
            }
            _ if is_ident_start(c) => {
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                let ident = &source[i..j];
                // Raw/byte string prefixes glue onto the opening quote.
                if let Some(end) = raw_string_end(b, i, j, ident) {
                    for &nb in &b[i..end] {
                        if nb == b'\n' {
                            line += 1;
                        }
                    }
                    i = end;
                    continue;
                }
                if matches!(ident, "b") && j < b.len() && (b[j] == b'"' || b[j] == b'\'') {
                    // b"..." byte string / b'x' byte char: skip like the
                    // unprefixed form.
                    i = if b[j] == b'"' {
                        skip_string(b, j, &mut line)
                    } else {
                        skip_char_or_lifetime(b, j)
                    };
                    continue;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: ident.to_string(),
                    line,
                });
                i = j;
            }
            b':' if i + 1 < b.len() && b[i + 1] == b':' => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: "::".to_string(),
                    line,
                });
                i += 2;
            }
            _ => {
                if !c.is_ascii_whitespace() {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: (c as char).to_string(),
                        line,
                    });
                }
                i += 1;
            }
        }
    }
    out
}

/// Skips a `"..."` literal starting at the opening quote; returns the index
/// past the closing quote and counts embedded newlines.
fn skip_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a char literal (`'a'`, `'\n'`) or a lifetime (`'static`); returns
/// the index after it. Lifetimes produce no token — `'static` must not be
/// mistaken for the `static` keyword.
fn skip_char_or_lifetime(b: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    if i >= b.len() {
        return i;
    }
    if b[i] == b'\\' {
        // Escaped char literal: skip the escape, then find the close quote.
        i += 2;
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(b.len());
    }
    if is_ident_start(b[i]) {
        let mut j = i + 1;
        while j < b.len() && is_ident_continue(b[j]) {
            j += 1;
        }
        if j < b.len() && b[j] == b'\'' {
            return j + 1; // 'a' — a char literal
        }
        return j; // 'static — a lifetime, no token
    }
    // Punctuation char literal like '(' or digit like '7'.
    let mut j = i + 1;
    while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
        j += 1;
    }
    (j + 1).min(b.len())
}

/// If an identifier at `i..j` is a raw-string prefix (`r`, `br`, `rb`) glued
/// to `#*"`, returns the index past the whole raw string.
fn raw_string_end(b: &[u8], _i: usize, j: usize, ident: &str) -> Option<usize> {
    if !matches!(ident, "r" | "br" | "rb") {
        return None;
    }
    let mut k = j;
    let mut hashes = 0usize;
    while k < b.len() && b[k] == b'#' {
        hashes += 1;
        k += 1;
    }
    if k >= b.len() || b[k] != b'"' {
        return None;
    }
    k += 1;
    // Find `"` followed by `hashes` hash marks.
    while k < b.len() {
        if b[k] == b'"' {
            let mut h = 0usize;
            while k + 1 + h < b.len() && b[k + 1 + h] == b'#' && h < hashes {
                h += 1;
            }
            if h == hashes {
                return Some(k + 1 + hashes);
            }
        }
        k += 1;
    }
    Some(b.len())
}

/// Scans a numeric literal starting at a digit; returns `(end, is_float)`.
fn scan_number(b: &[u8], start: usize) -> (usize, bool) {
    let mut i = start;
    // Radix-prefixed literals are always integers.
    if b[i] == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return (i, false);
    }
    let mut is_float = false;
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // Fractional part: a '.' followed by a digit (not `..` ranges, not
    // `1.max(2)` method calls, and a trailing `1.` also counts as float).
    if i < b.len() && b[i] == b'.' {
        let next = b.get(i + 1).copied();
        match next {
            Some(n) if n.is_ascii_digit() => {
                is_float = true;
                i += 1;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
            }
            Some(b'.') => return (i, false),
            Some(n) if is_ident_start(n) => return (i, false),
            _ => {
                is_float = true;
                i += 1;
            }
        }
    }
    // Exponent.
    if i < b.len() && matches!(b[i], b'e' | b'E') {
        let mut k = i + 1;
        if k < b.len() && matches!(b[k], b'+' | b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            is_float = true;
            i = k;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (`u32`, `f64`, …).
    if i < b.len() && is_ident_start(b[i]) {
        let s = i;
        while i < b.len() && is_ident_continue(b[i]) {
            i += 1;
        }
        let suffix = &b[s..i];
        if suffix == b"f32" || suffix == b"f64" {
            is_float = true;
        }
    }
    (i, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    fn floats(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::FloatLit)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = [
            "// Instant::now in a comment\n",
            "/* HashMap in /* a nested */ block */\n",
            "let s = \"SystemTime::now()\";\n",
            "let r = r#\"raw HashMap\"#;\n",
        ]
        .concat();
        let ids = idents(&src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_static_keywords() {
        let ids = idents("fn f(x: &'static str) {} static Y: u8 = 0;");
        assert_eq!(ids.iter().filter(|i| *i == "static").count(), 1);
    }

    #[test]
    fn char_literals_do_not_derail() {
        let ids = idents("let c = 'a'; let nl = '\\n'; let q = '\"'; static Z: u8 = 0;");
        assert!(ids.contains(&"static".to_string()));
    }

    #[test]
    fn float_literals_detected_ranges_and_fields_ignored() {
        assert_eq!(floats("let x = 1.5;"), vec!["1.5"]);
        assert_eq!(floats("let y = 2e9;"), vec!["2e9"]);
        assert_eq!(floats("let z = 3f64;"), vec!["3f64"]);
        assert!(floats("for i in 0..10 { t.0; 1.max(2); }").is_empty());
        assert!(floats("let n = 0x1e9; let m = 42u64;").is_empty());
    }

    #[test]
    fn line_numbers_track_through_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nstatic B: u8 = 0;";
        let scanned = scan(src);
        let stat = scanned
            .tokens
            .iter()
            .find(|t| t.text == "static")
            .expect("static token");
        assert_eq!(stat.line, 3);
    }

    #[test]
    fn int_literals_are_tokens_with_values() {
        let ints: Vec<String> = scan("const VERSION: u8 = 3; const MAGIC: u8 = 0xC6;")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::IntLit)
            .map(|t| t.text)
            .collect();
        assert_eq!(ints, vec!["3", "0xC6"]);
        assert_eq!(int_value("3"), Some(3));
        assert_eq!(int_value("0xC6"), Some(0xC6));
        assert_eq!(int_value("0xFFu8"), Some(255));
        assert_eq!(int_value("65_536u32"), Some(65_536));
        assert_eq!(int_value("0b1010"), Some(10));
    }

    #[test]
    fn directives_parse() {
        let s = scan("// detlint: allow(wall_clock) -- test harness timing\nlet x = 1;");
        assert_eq!(s.allows.len(), 1);
        let d = &s.allows[0];
        assert!(d.well_formed && d.has_reason);
        assert_eq!(d.rules, vec!["wall_clock"]);
        assert_eq!(d.line, 1);
    }

    #[test]
    fn directive_without_reason_is_flagged() {
        let s = scan("// detlint: allow(float)\n");
        assert!(s.allows[0].well_formed);
        assert!(!s.allows[0].has_reason);
    }

    #[test]
    fn directive_with_multiple_rules() {
        let s = scan("// detlint: allow(float, unordered_collections) -- stats only\n");
        assert_eq!(s.allows[0].rules, vec!["float", "unordered_collections"]);
        assert!(s.allows[0].has_reason);
    }

    #[test]
    fn garbage_directive_is_malformed() {
        let s = scan("// detlint: disable everything\n");
        assert!(!s.allows[0].well_formed);
    }

    #[test]
    fn byte_strings_are_skipped() {
        let ids = idents(r#"let b = b"HashMap"; let c = b'x'; let ok = 1;"#);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"ok".to_string()));
    }
}
