//! detlint — a determinism auditor for the coplay workspace.
//!
//! Lock-step replay (Algorithm 2's `SyncInput`) only converges if every
//! replica's simulation is bit-for-bit deterministic. One stray wall-clock
//! read, float operation, or `HashMap` iteration inside the deterministic
//! core silently diverges replicas — the dominant bug class in lock-step
//! systems. detlint statically fences that core: it tokenizes every
//! workspace `.rs` file with a lightweight hand-rolled lexer (no `syn`, no
//! dependencies) and enforces a per-path policy over five rules:
//!
//! | rule | forbids |
//! |------|---------|
//! | `wall_clock` | `Instant`, `SystemTime`, `UNIX_EPOCH` reads |
//! | `unordered_collections` | `HashMap`, `HashSet`, `RandomState` |
//! | `float` | `f32`/`f64` types and float literals |
//! | `entropy` | `rand::*`, `thread_rng`, `OsRng`, `getrandom` |
//! | `static_state` | `static mut` and interior-mutable statics |
//!
//! Grown into the **coplay-lint** suite, the same engine now also fences
//! the attack surface and the latency budget:
//!
//! | rule | forbids | where |
//! |------|---------|-------|
//! | `panic_path` | `unwrap`/`expect`, `panic!`-family, `*_unchecked` | wire, transport, rollback/vm hot paths |
//! | `unchecked_index` | slice indexing (`b[0]`, `&b[..n]`) | byte codecs |
//! | `hot_alloc` | `Vec::new`, `to_vec`, `clone`, `format!`, … | PR 4–5's zero-alloc modules |
//!
//! plus a wire-schema drift pass ([`wire_schema`]) that recovers each
//! codec's per-message field layout from its encode/decode token streams,
//! cross-checks symmetry, and pins a layout fingerprint in
//! `results/wire_schema.json` so CI fails when the wire changes without a
//! `VERSION` bump.
//!
//! Violations can only be waived in-line, with a reason:
//!
//! ```text
//! // detlint: allow(wall_clock) -- test harness measures real elapsed time
//! ```
//!
//! A malformed directive (unknown rule, missing `-- reason`) suppresses
//! nothing and is itself reported as `bad_suppression`; a well-formed
//! directive that suppresses nothing is reported as `stale_suppression`.

pub mod cli;
pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;
pub mod wire_schema;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use report::Report;
use rules::lint_source_counted;

/// Top-level directories scanned under the workspace root.
const SCAN_DIRS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Lints every `.rs` file under `root`'s scanned directories, applying the
/// per-path policy from [`policy::rules_for`].
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let path = root.join(dir);
        if path.is_dir() {
            collect_rs_files(&path, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for file in files {
        let rel = relative_slash_path(root, &file);
        let rules = policy::rules_for(&rel);
        if rules.is_empty() {
            continue;
        }
        let source = fs::read_to_string(&file)?;
        report.files_scanned += 1;
        let (diags, suppressed) = lint_source_counted(&rel, &source, &rules);
        report.diagnostics.extend(diags);
        report.suppressions += suppressed;
    }
    report
        .diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(report)
}

/// Recursively collects `.rs` files, in sorted order, skipping build output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes, for policy lookup and
/// stable diagnostics across platforms.
fn relative_slash_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/ws");
        let file = Path::new("/ws/crates/vm/src/lib.rs");
        assert_eq!(relative_slash_path(root, file), "crates/vm/src/lib.rs");
    }
}
