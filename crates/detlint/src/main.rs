//! CLI entry point: scan the workspace, print diagnostics, write the JSON
//! report, exit non-zero on any violation.

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::lint_workspace;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "detlint — determinism auditor\n\n\
                     USAGE: detlint [--root <workspace>] [--json <report path>]\n\n\
                     Scans workspace .rs sources for determinism hazards\n\
                     (wall clocks, unordered containers, floats, entropy,\n\
                     mutable statics) per the policy in src/policy.rs.\n\
                     Writes a JSON report (default results/detlint.json)\n\
                     and exits 1 if any violation is found."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // When run via `cargo run -p detlint`, the workspace root is two levels
    // above this crate's manifest.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.diagnostics {
        println!("{d}");
    }

    let json_path = json_path.unwrap_or_else(|| root.join("results/detlint.json"));
    if let Some(parent) = json_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("detlint: could not write {}: {e}", json_path.display());
    }

    println!(
        "detlint: {} file(s) scanned, {} violation(s), {} suppression(s) honoured",
        report.files_scanned,
        report.diagnostics.len(),
        report.suppressions
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
