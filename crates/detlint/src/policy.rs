//! The per-path policy table: which rules apply to which workspace files.
//!
//! Paths are workspace-relative with forward slashes. The table mirrors the
//! architecture's determinism boundary:
//!
//! | area | wall_clock | unordered | float | entropy | static_state |
//! |------|-----------|-----------|-------|---------|--------------|
//! | `crates/vm`, `crates/games` | ✓ | ✓ | ✓ | ✓ | ✓ |
//! | `crates/sync` (state paths) | ✓ | ✓ | ✓ | ✓ | ✓ |
//! | `crates/rollback` | ✓ | ✓ | ✓ | ✓ | ✓ |
//! | `crates/sync/src/{rtt,stats}.rs` | ✓ | – | – | ✓ | ✓ |
//! | `crates/clock`, `crates/net` | – | – | – | ✓* | – |
//! | everything else scanned | ✓† | – | – | ✓ | – |
//!
//! \* `crates/net/src/rng.rs` itself is exempt from `entropy` (it is the
//! sanctioned randomness source). † tests, examples, benches, and the
//! experiment binaries in `crates/bench/src/bin/` may read real clocks —
//! they drive and time the system, they are not inside it.
//!
//! On top of the determinism fence sit two attack/latency zones:
//!
//! | zone | panic_path | unchecked_index | hot_alloc |
//! |------|-----------|-----------------|-----------|
//! | wire codecs (`net/bytes`, `lobby/wire`, `sync/wire`, `relay/wire`) | ✓ | ✓ | – |
//! | transport (`net/{udp,sim,transport,netem}`, `lobby/{server,client,lib}`, `relay/{server,client,udp,lib}`) | ✓ | – | – |
//! | hot path (`rollback/src/*`, `vm/{cpu,predecode,console,audio,dirty}`, `sync/sync_input`, `relay/server`) | ✓ | – | ✓‡ |
//!
//! ‡ `hot_alloc` applies to exactly the modules PRs 4–5 made alloc-free
//! plus the relay's per-datagram fan-out, the frame-step path headless
//! resimulation runs through, and the dirty-page bitmap every checkpoint
//! and rollback walks:
//! `rollback/{snapshot,delta,session}.rs`, `vm/{cpu,predecode,console,audio,dirty}.rs`,
//! `sync/sync_input.rs`, `relay/src/server.rs`. Wire/transport code must be
//! panic-free on arbitrary bytes (typed errors only); hot-path panics and
//! constructor allocations carry `allow(...) -- <reason>` waivers.
//! `#[cfg(test)]` regions are exempt from the zone rules but not the
//! determinism rules.

use crate::rules::Rule;

/// Files whose decode paths read attacker-controlled bytes: indexing is
/// banned outright — length errors must surface as `Truncated`.
fn wire_codec(rel: &str) -> bool {
    matches!(
        rel,
        "crates/net/src/bytes.rs"
            | "crates/lobby/src/wire.rs"
            | "crates/sync/src/wire.rs"
            | "crates/relay/src/wire.rs"
    )
}

/// Network-facing modules that must not panic on anything a socket or a
/// lobby peer can hand them (the codecs above are also in this set).
fn transport_zone(rel: &str) -> bool {
    wire_codec(rel)
        || matches!(
            rel,
            "crates/net/src/udp.rs"
                | "crates/net/src/sim.rs"
                | "crates/net/src/transport.rs"
                | "crates/net/src/netem.rs"
                | "crates/lobby/src/server.rs"
                | "crates/lobby/src/client.rs"
                | "crates/lobby/src/lib.rs"
                | "crates/relay/src/server.rs"
                | "crates/relay/src/client.rs"
                | "crates/relay/src/udp.rs"
                | "crates/relay/src/lib.rs"
        )
}

/// The rollback/VM latency-critical modules: panics need waivers here.
/// `console.rs` and `audio.rs` joined when headless resimulation put the
/// whole frame-step path (bus dispatch, audio register advance) inside the
/// repair loop's per-frame budget.
fn hot_panic_zone(rel: &str) -> bool {
    rel.starts_with("crates/rollback/src/")
        || matches!(
            rel,
            "crates/vm/src/cpu.rs"
                | "crates/vm/src/predecode.rs"
                | "crates/vm/src/console.rs"
                | "crates/vm/src/audio.rs"
                | "crates/vm/src/dirty.rs"
                | "crates/sync/src/sync_input.rs"
        )
}

/// The steady-state zero-alloc modules (PR 4–5's perf work), fenced so the
/// invariant is enforced statically rather than by bench drift alone.
fn hot_alloc_zone(rel: &str) -> bool {
    matches!(
        rel,
        "crates/rollback/src/snapshot.rs"
            | "crates/rollback/src/delta.rs"
            | "crates/rollback/src/session.rs"
            | "crates/vm/src/cpu.rs"
            | "crates/vm/src/predecode.rs"
            | "crates/vm/src/console.rs"
            | "crates/vm/src/audio.rs"
            | "crates/vm/src/dirty.rs"
            | "crates/sync/src/sync_input.rs"
            | "crates/relay/src/server.rs"
    )
}

/// Returns the rules to enforce on `rel`, a workspace-relative path using
/// forward slashes. An empty vector means the file is not audited.
pub fn rules_for(rel: &str) -> Vec<Rule> {
    // The auditor does not audit itself: its fixtures and trigger tables
    // are violations by design.
    if rel.starts_with("crates/detlint/") {
        return Vec::new();
    }

    let mut rules = Vec::new();

    // Entropy is banned everywhere except the one sanctioned source.
    if rel != "crates/net/src/rng.rs" {
        rules.push(Rule::Entropy);
    }

    // Rollback resimulates state, so it sits inside the same fence as the
    // machines it replays: any nondeterminism there silently corrupts the
    // repaired timeline.
    let deterministic_core = rel.starts_with("crates/vm/")
        || rel.starts_with("crates/games/")
        || rel.starts_with("crates/rollback/");
    let sync_crate = rel.starts_with("crates/sync/");
    // Pacing and measurement modules feed send scheduling and reporting,
    // never simulation state; floats and unordered maps are fine there.
    let sync_measurement = rel == "crates/sync/src/rtt.rs" || rel == "crates/sync/src/stats.rs";

    if deterministic_core || sync_crate {
        rules.push(Rule::WallClock);
        rules.push(Rule::StaticState);
        if !sync_measurement {
            rules.push(Rule::UnorderedCollections);
            rules.push(Rule::Float);
        }
    } else {
        // Clock and net own the real-time boundary; benches and the
        // experiment/hotpath binaries time themselves.
        let clock_exempt = rel.starts_with("crates/clock/")
            || rel.starts_with("crates/net/")
            || rel.starts_with("crates/bench/benches/")
            || rel.starts_with("crates/bench/src/bin/")
            // The relay's socket loop and binary serve live clients on the
            // wall clock; the sans-io core stays fenced.
            || rel == "crates/relay/src/udp.rs"
            || rel.starts_with("crates/relay/src/bin/")
            || rel.starts_with("tests/")
            || rel.starts_with("examples/");
        if !clock_exempt {
            rules.push(Rule::WallClock);
        }
    }

    // The panic/alloc zones stack on top of whatever determinism fence the
    // path already carries.
    if transport_zone(rel) || hot_panic_zone(rel) {
        rules.push(Rule::PanicPath);
    }
    if wire_codec(rel) {
        rules.push(Rule::UncheckedIndex);
    }
    if hot_alloc_zone(rel) {
        rules.push(Rule::HotAlloc);
    }

    rules.sort();
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has(rel: &str, rule: Rule) -> bool {
        rules_for(rel).contains(&rule)
    }

    #[test]
    fn core_gets_everything() {
        for rel in [
            "crates/vm/src/machine.rs",
            "crates/vm/src/cpu.rs",
            "crates/vm/src/predecode.rs",
            "crates/games/src/pong.rs",
            "crates/rollback/src/session.rs",
            "crates/rollback/src/snapshot.rs",
            "crates/rollback/src/delta.rs",
        ] {
            let rules = rules_for(rel);
            for r in Rule::DETERMINISM {
                assert!(rules.contains(&r), "{rel} missing {r:?}");
            }
        }
    }

    #[test]
    fn sync_measurement_modules_may_use_floats_and_maps() {
        for rel in ["crates/sync/src/rtt.rs", "crates/sync/src/stats.rs"] {
            assert!(!has(rel, Rule::Float), "{rel}");
            assert!(!has(rel, Rule::UnorderedCollections), "{rel}");
            assert!(has(rel, Rule::WallClock), "{rel}");
            assert!(has(rel, Rule::Entropy), "{rel}");
        }
        // But the sync engine itself is fully fenced.
        assert!(has("crates/sync/src/sync.rs", Rule::Float));
        assert!(has("crates/sync/src/sync.rs", Rule::UnorderedCollections));
    }

    #[test]
    fn clock_and_net_may_read_clocks() {
        assert!(!has("crates/clock/src/clock.rs", Rule::WallClock));
        assert!(!has("crates/net/src/udp.rs", Rule::WallClock));
        // But the lobby and telemetry may not.
        assert!(has("crates/lobby/src/client.rs", Rule::WallClock));
        assert!(has("crates/telemetry/src/recorder.rs", Rule::WallClock));
    }

    #[test]
    fn rng_module_is_the_entropy_exemption() {
        assert!(!has("crates/net/src/rng.rs", Rule::Entropy));
        assert!(has("crates/net/src/netem.rs", Rule::Entropy));
        assert!(has("tests/properties.rs", Rule::Entropy));
    }

    #[test]
    fn harness_code_may_time_itself() {
        assert!(!has("tests/convergence.rs", Rule::WallClock));
        assert!(!has("examples/headless.rs", Rule::WallClock));
        assert!(!has("crates/bench/benches/micro.rs", Rule::WallClock));
        assert!(!has("crates/bench/src/bin/hotpath.rs", Rule::WallClock));
        // The bench library proper still may not.
        assert!(has("crates/bench/src/lib.rs", Rule::WallClock));
    }

    #[test]
    fn snapshot_fast_path_is_deterministic_core() {
        // The delta codec and buffer pool rebuild state bytes during
        // rollback repair; every determinism rule applies to them.
        for rel in [
            "crates/rollback/src/delta.rs",
            "crates/rollback/src/pool.rs",
        ] {
            let rules = rules_for(rel);
            for r in Rule::DETERMINISM {
                assert!(rules.contains(&r), "{rel} missing {r:?}");
            }
        }
    }

    #[test]
    fn wire_codecs_are_panic_and_index_fenced() {
        for rel in [
            "crates/net/src/bytes.rs",
            "crates/lobby/src/wire.rs",
            "crates/sync/src/wire.rs",
            "crates/relay/src/wire.rs",
        ] {
            assert!(has(rel, Rule::PanicPath), "{rel}");
            assert!(has(rel, Rule::UncheckedIndex), "{rel}");
            assert!(!has(rel, Rule::HotAlloc), "{rel}");
        }
    }

    #[test]
    fn transport_is_panic_fenced_but_may_index() {
        for rel in [
            "crates/net/src/udp.rs",
            "crates/net/src/sim.rs",
            "crates/net/src/transport.rs",
            "crates/lobby/src/server.rs",
            "crates/lobby/src/client.rs",
            "crates/relay/src/server.rs",
            "crates/relay/src/client.rs",
            "crates/relay/src/udp.rs",
        ] {
            assert!(has(rel, Rule::PanicPath), "{rel}");
            assert!(!has(rel, Rule::UncheckedIndex), "{rel}");
        }
    }

    #[test]
    fn relay_zones_match_the_lobby_pattern() {
        // The routing core is both panic- and alloc-fenced (the fan-out is
        // the per-datagram hot path), and sans-io: no wall clock.
        assert!(has("crates/relay/src/server.rs", Rule::HotAlloc));
        assert!(has("crates/relay/src/server.rs", Rule::WallClock));
        assert!(!has("crates/relay/src/wire.rs", Rule::HotAlloc));
        // The socket loop and binary serve live clients on the wall clock.
        assert!(!has("crates/relay/src/udp.rs", Rule::WallClock));
        assert!(!has("crates/relay/src/bin/relay.rs", Rule::WallClock));
        assert!(has("crates/relay/src/client.rs", Rule::WallClock));
        // The fleet load-generator times itself like the other bench bins.
        assert!(!has("crates/bench/src/bin/fleet.rs", Rule::WallClock));
    }

    #[test]
    fn hot_path_modules_carry_the_alloc_fence() {
        for rel in [
            "crates/rollback/src/snapshot.rs",
            "crates/rollback/src/delta.rs",
            "crates/rollback/src/session.rs",
            "crates/vm/src/cpu.rs",
            "crates/vm/src/predecode.rs",
            "crates/vm/src/console.rs",
            "crates/vm/src/audio.rs",
            "crates/vm/src/dirty.rs",
            "crates/sync/src/sync_input.rs",
        ] {
            assert!(has(rel, Rule::PanicPath), "{rel}");
            assert!(has(rel, Rule::HotAlloc), "{rel}");
        }
        // The rollback pool/predictor are panic-fenced but not alloc-fenced
        // (the pool's whole job is owning allocations), and the VM's
        // assembler/framebuffer are outside both zones.
        assert!(has("crates/rollback/src/pool.rs", Rule::PanicPath));
        assert!(!has("crates/rollback/src/pool.rs", Rule::HotAlloc));
        assert!(!has("crates/vm/src/assembler.rs", Rule::PanicPath));
        assert!(!has("crates/vm/src/assembler.rs", Rule::HotAlloc));
    }

    #[test]
    fn detlint_is_not_audited() {
        assert!(rules_for("crates/detlint/src/rules.rs").is_empty());
        assert!(rules_for("crates/detlint/tests/fixtures/float.rs").is_empty());
    }
}
