//! Machine-readable report: hand-rolled JSON, keeping the crate dependency-free.

use crate::rules::Diagnostic;

/// The result of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All surviving diagnostics, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Count of well-formed `allow` directives honoured during the scan.
    pub suppressions: usize,
}

impl Report {
    /// True when the scan produced no diagnostics.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Serializes the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.diagnostics.len() * 128);
        out.push_str("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressions\": {},\n", self.suppressions));
        out.push_str(&format!("  \"violations\": {},\n", self.diagnostics.len()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"file\": {}, ", json_string(&d.file)));
            out.push_str(&format!("\"line\": {}, ", d.line));
            out.push_str(&format!("\"rule\": {}, ", json_string(d.rule)));
            out.push_str(&format!("\"message\": {}", json_string(&d.message)));
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean_and_valid_json() {
        let r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        assert!(r.is_clean());
        let json = r.to_json();
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"violations\": 0"));
        assert!(json.contains("\"diagnostics\": []"));
    }

    #[test]
    fn diagnostics_are_escaped() {
        let r = Report {
            files_scanned: 1,
            diagnostics: vec![Diagnostic {
                file: "a \"b\"\\c.rs".to_string(),
                line: 7,
                rule: "float",
                message: "tab\there".to_string(),
            }],
            suppressions: 2,
        };
        let json = r.to_json();
        assert!(json.contains(r#""a \"b\"\\c.rs""#));
        assert!(json.contains(r#""tab\there""#));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"suppressions\": 2"));
        assert!(json.contains("\"violations\": 1"));
    }
}
