//! The determinism rules and the engine that applies them to a token stream.

use crate::lexer::{scan, AllowDirective, Token, TokenKind};

/// One determinism rule the auditor can enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No wall-clock reads (`Instant`, `SystemTime`, `UNIX_EPOCH`) — time
    /// must flow through `crates/clock`'s `Clock` abstraction.
    WallClock,
    /// No `HashMap`/`HashSet`/`RandomState` — iteration order is seeded per
    /// process and leaks into state; the deterministic core uses `BTreeMap`.
    UnorderedCollections,
    /// No `f32`/`f64` types or float literals — rounding is not guaranteed
    /// bit-identical across targets; simulation state is integer-only.
    Float,
    /// No OS entropy (`rand`, `thread_rng`, `OsRng`, `getrandom`) —
    /// randomness must come from the seeded `coplay_net::DetRng`.
    Entropy,
    /// No `static mut` and no interior-mutable statics (`OnceLock`,
    /// atomics, `Mutex`, …) — hidden global state diverges replicas.
    StaticState,
    /// No panic reachable from arbitrary input: `unwrap`/`expect`,
    /// `panic!`/`unreachable!`/`todo!`/`unimplemented!`, and the
    /// `*_unchecked` family. Wire/transport decode must return typed errors;
    /// hot paths must justify every remaining panic with a waiver.
    PanicPath,
    /// No slice/array indexing (`b[0]`, `&b[..n]`) in byte-codec zones —
    /// out-of-range input must surface as `Truncated`, not a panic. Use the
    /// checked `Buf` getters / `try_take` instead.
    UncheckedIndex,
    /// No steady-state allocation (`Vec::new`, `to_vec`, `clone`,
    /// `format!`, `Box::new`, …) in the modules the perf PRs made
    /// alloc-free; constructor/cold-path allocations carry waivers.
    HotAlloc,
}

/// Rule id used by `bad_suppression` diagnostics (not a suppressible rule).
pub const BAD_SUPPRESSION: &str = "bad_suppression";

/// Rule id used for stale waivers — a well-formed `allow(...)` that
/// suppresses nothing. Not itself suppressible: a waiver that outlives its
/// finding is dead armour and must be removed, not re-waived.
pub const STALE_SUPPRESSION: &str = "stale_suppression";

/// Rule id for encode/decode asymmetry found by the wire-schema pass.
pub const WIRE_ASYMMETRY: &str = "wire_asymmetry";

/// Rule id for wire-schema extraction failures (a codec the pass can no
/// longer read is a codec CI can no longer guard).
pub const WIRE_SCHEMA: &str = "wire_schema";

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::WallClock,
        Rule::UnorderedCollections,
        Rule::Float,
        Rule::Entropy,
        Rule::StaticState,
        Rule::PanicPath,
        Rule::UncheckedIndex,
        Rule::HotAlloc,
    ];

    /// The original determinism fence — what "deterministic core" means in
    /// the policy table. The panic/alloc rules are zone-scoped separately.
    pub const DETERMINISM: [Rule; 5] = [
        Rule::WallClock,
        Rule::UnorderedCollections,
        Rule::Float,
        Rule::Entropy,
        Rule::StaticState,
    ];

    /// The rule's stable identifier, as used in `allow(...)` directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall_clock",
            Rule::UnorderedCollections => "unordered_collections",
            Rule::Float => "float",
            Rule::Entropy => "entropy",
            Rule::StaticState => "static_state",
            Rule::PanicPath => "panic_path",
            Rule::UncheckedIndex => "unchecked_index",
            Rule::HotAlloc => "hot_alloc",
        }
    }

    /// Parses a rule identifier.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == s)
    }

    /// Whether findings inside a `#[cfg(test)]` region are dropped. Panic
    /// and allocation rules guard production paths only — tests unwrap and
    /// allocate freely. Determinism rules still apply in tests: a test that
    /// reads wall clocks reproduces differently.
    pub fn skips_test_code(self) -> bool {
        matches!(
            self,
            Rule::PanicPath | Rule::UncheckedIndex | Rule::HotAlloc
        )
    }
}

/// One violation, pinned to `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule identifier (`wall_clock`, …, or `bad_suppression`).
    pub rule: &'static str,
    /// Human-readable explanation naming the offending construct.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Identifiers that read wall clocks.
const CLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "UNIX_EPOCH"];

/// Identifiers naming randomized-order containers.
const UNORDERED_IDENTS: [&str; 3] = ["HashMap", "HashSet", "RandomState"];

/// Identifiers that tap OS entropy.
const ENTROPY_IDENTS: [&str; 4] = ["thread_rng", "OsRng", "getrandom", "from_entropy"];

/// Macros that unwind unconditionally when reached.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Methods that panic on the "wrong" variant.
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// The `unsafe` no-check family: worse than a panic — undefined behaviour
/// on out-of-range input.
const UNCHECKED_FNS: [&str; 7] = [
    "get_unchecked",
    "get_unchecked_mut",
    "unwrap_unchecked",
    "from_utf8_unchecked",
    "unchecked_add",
    "unchecked_sub",
    "unchecked_mul",
];

/// Methods that allocate when called on a hot path.
const ALLOC_METHODS: [&str; 5] = ["to_vec", "to_string", "to_owned", "with_capacity", "clone"];

/// Types whose `::new()` allocates (or will on first push).
const ALLOC_TYPES: [&str; 5] = ["Vec", "VecDeque", "Box", "String", "BTreeMap"];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Interior-mutability wrappers that make a `static` mutable global state.
const INTERIOR_MUTABLE: [&str; 19] = [
    "AtomicBool",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "Cell",
    "LazyCell",
    "LazyLock",
    "Mutex",
    "OnceCell",
    "OnceLock",
    "RwLock",
];

/// Applies `rules` to `source`, honouring `// detlint: allow(...)` comments.
///
/// A well-formed allow directive (known rules *and* a `-- <reason>` trailer)
/// suppresses matching diagnostics on its own line and the next line.
/// Malformed directives suppress nothing and are themselves reported as
/// [`BAD_SUPPRESSION`] — an audit fence with silent escape hatches is no
/// fence at all.
pub fn lint_source(file: &str, source: &str, rules: &[Rule]) -> Vec<Diagnostic> {
    lint_source_counted(file, source, rules).0
}

/// As [`lint_source`], also returning the number of well-formed allow
/// directives honoured (whether or not they suppressed anything).
pub fn lint_source_counted(file: &str, source: &str, rules: &[Rule]) -> (Vec<Diagnostic>, usize) {
    let scanned = scan(source);
    let mut diags = Vec::new();
    let cutoff = test_region_start(&scanned.tokens);
    for rule in rules {
        let before = diags.len();
        check_rule(*rule, &scanned.tokens, file, &mut diags);
        if rule.skips_test_code() {
            if let Some(cut) = cutoff {
                let mut idx = 0;
                diags.retain(|d| {
                    let keep = idx < before || d.line < cut;
                    idx += 1;
                    keep
                });
            }
        }
    }

    // Partition directives: usable suppressions vs. reportable mistakes.
    let mut valid: Vec<&AllowDirective> = Vec::new();
    for d in &scanned.allows {
        let known = d.rules.iter().all(|r| Rule::parse(r).is_some());
        if d.well_formed && d.has_reason && known {
            valid.push(d);
        } else {
            let why = if !d.well_formed {
                "directive is not `detlint: allow(<rule>) -- <reason>`".to_string()
            } else if !known {
                let unknown: Vec<&str> = d
                    .rules
                    .iter()
                    .filter(|r| Rule::parse(r).is_none())
                    .map(String::as_str)
                    .collect();
                format!("unknown rule(s) {}", unknown.join(", "))
            } else {
                "missing `-- <reason>` justification".to_string()
            };
            diags.push(Diagnostic {
                file: file.to_string(),
                line: d.line,
                rule: BAD_SUPPRESSION,
                message: why,
            });
        }
    }

    // Apply suppressions, tracking which directives earn their keep. A
    // directive covers its own line and the next (the annotated statement).
    let mut used = vec![false; valid.len()];
    diags.retain(|d| {
        if d.rule == BAD_SUPPRESSION {
            return true;
        }
        let mut suppressed = false;
        for (a, hit) in valid.iter().zip(used.iter_mut()) {
            if (a.line == d.line || a.line + 1 == d.line) && a.rules.iter().any(|r| r == d.rule) {
                *hit = true;
                suppressed = true;
            }
        }
        !suppressed
    });

    // A waiver that suppresses nothing is stale: either the finding was
    // fixed (remove the waiver) or the directive drifted off its line.
    // Only report rules the caller actually ran — a file linted with a
    // subset of rules must not mark out-of-scope waivers stale.
    for (a, hit) in valid.iter().zip(used.iter()) {
        let in_scope = a
            .rules
            .iter()
            .any(|r| Rule::parse(r).is_some_and(|rule| rules.contains(&rule)));
        if !*hit && in_scope {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                rule: STALE_SUPPRESSION,
                message: format!(
                    "waiver `allow({})` suppresses nothing; remove it",
                    a.rules.join(", ")
                ),
            });
        }
    }

    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (diags, valid.len())
}

/// The 1-based line where the file's `#[cfg(test)]` region begins, if any.
/// Repo convention keeps unit-test modules at the end of the file, so the
/// first `cfg(test)` marker is a sound cutoff for the panic/alloc rules.
fn test_region_start(tokens: &[Token]) -> Option<u32> {
    tokens.windows(3).find_map(|w| {
        (w[0].text == "cfg" && w[1].text == "(" && w[2].text == "test").then_some(w[0].line)
    })
}

fn push(diags: &mut Vec<Diagnostic>, file: &str, line: u32, rule: Rule, message: String) {
    diags.push(Diagnostic {
        file: file.to_string(),
        line,
        rule: rule.id(),
        message,
    });
}

fn check_rule(rule: Rule, tokens: &[Token], file: &str, diags: &mut Vec<Diagnostic>) {
    match rule {
        Rule::WallClock => {
            for t in tokens.iter().filter(|t| t.kind == TokenKind::Ident) {
                if CLOCK_IDENTS.contains(&t.text.as_str()) {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!("wall-clock read `{}`; use the Clock trait", t.text),
                    );
                }
            }
        }
        Rule::UnorderedCollections => {
            for t in tokens.iter().filter(|t| t.kind == TokenKind::Ident) {
                if UNORDERED_IDENTS.contains(&t.text.as_str()) {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!(
                            "randomized-order container `{}`; use BTreeMap/BTreeSet",
                            t.text
                        ),
                    );
                }
            }
        }
        Rule::Float => {
            for t in tokens {
                match t.kind {
                    TokenKind::Ident if t.text == "f32" || t.text == "f64" => {
                        push(
                            diags,
                            file,
                            t.line,
                            rule,
                            format!("floating-point type `{}` in a deterministic path", t.text),
                        );
                    }
                    TokenKind::FloatLit => {
                        push(
                            diags,
                            file,
                            t.line,
                            rule,
                            format!(
                                "floating-point literal `{}` in a deterministic path",
                                t.text
                            ),
                        );
                    }
                    _ => {}
                }
            }
        }
        Rule::Entropy => {
            for (i, t) in tokens.iter().enumerate() {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let hit = ENTROPY_IDENTS.contains(&t.text.as_str())
                    || (t.text == "rand"
                        && tokens
                            .get(i + 1)
                            .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "::"));
                if hit {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!(
                            "OS entropy via `{}`; seed coplay_net::DetRng instead",
                            t.text
                        ),
                    );
                }
            }
        }
        Rule::PanicPath => {
            for (i, t) in tokens.iter().enumerate() {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let next = |o: usize| tokens.get(i + o).map(|n| n.text.as_str());
                let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
                if PANIC_MACROS.contains(&t.text.as_str()) && next(1) == Some("!") {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!("`{}!` reachable in a fenced zone", t.text),
                    );
                } else if PANIC_METHODS.contains(&t.text.as_str())
                    && next(1) == Some("(")
                    && prev.is_some_and(|p| p.kind == TokenKind::Punct && p.text == ".")
                {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!(
                            "`.{}()` panics on the error path; return a typed error",
                            t.text
                        ),
                    );
                } else if UNCHECKED_FNS.contains(&t.text.as_str()) && next(1) == Some("(") {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!("unchecked call `{}` — UB on bad input", t.text),
                    );
                }
            }
        }
        Rule::UncheckedIndex => {
            for (i, t) in tokens.iter().enumerate() {
                if t.kind != TokenKind::Punct || t.text != "[" {
                    continue;
                }
                // Indexing is `expr[...]`: the token before `[` ends an
                // expression (identifier, `]`, or `)`). Everything else —
                // `#[attr]`, `vec![`, slice types `&[u8]`, array literals
                // `= [..]`, slice patterns `{ [..] =>` — is not indexing.
                let Some(p) = i.checked_sub(1).and_then(|p| tokens.get(p)) else {
                    continue;
                };
                let is_index = match p.kind {
                    TokenKind::Ident => !matches!(
                        p.text.as_str(),
                        // Keywords that may directly precede an array/slice
                        // expression or type rather than being indexed.
                        "mut" | "dyn" | "in" | "return" | "break" | "else" | "match" | "as"
                    ),
                    TokenKind::Punct => p.text == "]" || p.text == ")",
                    _ => false,
                };
                if is_index {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!(
                            "slice indexing after `{}` panics when out of range; \
                             use checked Buf getters or `try_take`",
                            p.text
                        ),
                    );
                }
            }
        }
        Rule::HotAlloc => {
            for (i, t) in tokens.iter().enumerate() {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let next = |o: usize| tokens.get(i + o).map(|n| n.text.as_str());
                let prev = |o: usize| i.checked_sub(o).and_then(|p| tokens.get(p));
                if ALLOC_MACROS.contains(&t.text.as_str()) && next(1) == Some("!") {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!("`{}!` allocates on a zero-alloc hot path", t.text),
                    );
                } else if ALLOC_METHODS.contains(&t.text.as_str())
                    && next(1) == Some("(")
                    && prev(1).is_some_and(|p| {
                        p.kind == TokenKind::Punct && (p.text == "." || p.text == "::")
                    })
                {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!("`{}` allocates on a zero-alloc hot path", t.text),
                    );
                } else if t.text == "new"
                    && next(1) == Some("(")
                    && prev(1).is_some_and(|p| p.text == "::")
                    && prev(2).is_some_and(|p| {
                        p.kind == TokenKind::Ident && ALLOC_TYPES.contains(&p.text.as_str())
                    })
                {
                    let ty = prev(2).map_or("?", |p| p.text.as_str());
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!("`{ty}::new` constructs a growable container on a hot path"),
                    );
                }
            }
        }
        Rule::StaticState => {
            for (i, t) in tokens.iter().enumerate() {
                if t.kind != TokenKind::Ident || t.text != "static" {
                    continue;
                }
                if tokens
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Ident && n.text == "mut")
                {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        "`static mut` global state".to_string(),
                    );
                    continue;
                }
                // Scan the static's type (up to `=` or `;`) for interior
                // mutability.
                for n in tokens.iter().skip(i + 1).take(48) {
                    if n.kind == TokenKind::Punct && (n.text == "=" || n.text == ";") {
                        break;
                    }
                    if n.kind == TokenKind::Ident && INTERIOR_MUTABLE.contains(&n.text.as_str()) {
                        push(
                            diags,
                            file,
                            t.line,
                            rule,
                            format!("interior-mutable static (`{}`)", n.text),
                        );
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(src: &str) -> Vec<Diagnostic> {
        lint_source("test.rs", src, &Rule::ALL)
    }

    fn rules_hit(src: &str) -> Vec<&'static str> {
        all(src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_source_passes() {
        assert!(all("use std::collections::BTreeMap;\nfn f(x: u64) -> u64 { x + 1 }\n").is_empty());
    }

    #[test]
    fn each_rule_fires() {
        assert_eq!(rules_hit("let t = Instant::now();"), vec!["wall_clock"]);
        assert_eq!(
            rules_hit("use std::collections::HashMap;"),
            vec!["unordered_collections"]
        );
        assert_eq!(rules_hit("fn f(x: f32) {}"), vec!["float"]);
        assert_eq!(rules_hit("let v = 0.5;"), vec!["float"]);
        assert_eq!(
            rules_hit("let r = rand::thread_rng();"),
            vec!["entropy", "entropy"]
        );
        assert_eq!(rules_hit("static mut X: u64 = 0;"), vec!["static_state"]);
        assert_eq!(
            rules_hit("static C: OnceLock<u64> = OnceLock::new();"),
            vec!["static_state"]
        );
    }

    #[test]
    fn rand_as_plain_identifier_is_fine() {
        // A local variable named `rand` is not the rand crate.
        assert!(all("let rand = 4u32; let x = rand + 1;").is_empty());
    }

    #[test]
    fn immutable_static_is_fine() {
        assert!(all("static TABLE: [u8; 4] = [1, 2, 3, 4];").is_empty());
    }

    #[test]
    fn initializer_after_equals_is_not_searched() {
        // `Mutex` appearing only in the initializer expression of a plain
        // const-like static type would be a different construct; the type
        // window stops at `=`.
        assert!(all("static N: usize = MUTEX_COUNT;").is_empty());
    }

    #[test]
    fn allow_on_same_or_previous_line_suppresses() {
        let same = "let t = Instant::now(); // detlint: allow(wall_clock) -- test shim\n";
        assert!(all(same).is_empty());
        let prev = "// detlint: allow(wall_clock) -- test shim\nlet t = Instant::now();\n";
        assert!(all(prev).is_empty());
    }

    #[test]
    fn allow_does_not_leak_to_later_lines() {
        let src =
            "// detlint: allow(wall_clock) -- one line only\nlet a = 1;\nlet t = Instant::now();\n";
        // The violation two lines down is not covered — and the waiver,
        // now covering nothing, is reported stale.
        assert_eq!(rules_hit(src), vec!["stale_suppression", "wall_clock"]);
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress_and_is_stale() {
        let src = "// detlint: allow(float) -- wrong rule\nlet t = Instant::now();\n";
        assert_eq!(rules_hit(src), vec!["stale_suppression", "wall_clock"]);
    }

    #[test]
    fn stale_waiver_is_reported() {
        let src = "// detlint: allow(wall_clock) -- long since fixed\nlet x = 1;\n";
        let d = all(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "stale_suppression");
        assert!(d[0].message.contains("wall_clock"));
    }

    #[test]
    fn used_waiver_is_not_stale() {
        let src = "// detlint: allow(wall_clock) -- shim\nlet t = Instant::now();\n";
        assert!(all(src).is_empty());
    }

    #[test]
    fn stale_check_honours_rule_scope() {
        // Linted without wall_clock, a wall_clock waiver is out of scope and
        // must not be reported stale (the finding it covers was never run).
        let src = "// detlint: allow(wall_clock) -- covered elsewhere\nlet t = Instant::now();\n";
        assert!(lint_source("t.rs", src, &[Rule::Float]).is_empty());
    }

    #[test]
    fn panic_path_fires_on_macros_methods_and_unchecked() {
        let d = lint_source(
            "t.rs",
            concat!(
                "fn f(o: Option<u8>, b: &[u8]) -> u8 {\n",
                "    let a = o.unwrap();\n",
                "    let c = o.expect(\"x\");\n",
                "    if a == 0 { panic!(\"boom\"); }\n",
                "    if c == 1 { unreachable!(); }\n",
                "    unsafe { *b.get_unchecked(0) }\n",
                "}\n",
            ),
            &[Rule::PanicPath],
        );
        let lines: Vec<u32> = d.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 6]);
        assert!(d.iter().all(|x| x.rule == "panic_path"));
    }

    #[test]
    fn panic_path_ignores_asserts_and_fn_names() {
        // assert!/debug_assert! are intentional invariants, and an fn NAMED
        // unwrap is a definition, not a call site.
        let src = "fn unwrap(x: u8) {}\nfn g() { assert!(true); debug_assert!(1 == 1); }\n";
        assert!(lint_source("t.rs", src, &[Rule::PanicPath]).is_empty());
    }

    #[test]
    fn unchecked_index_fires_on_indexing_only() {
        let flagged = "fn f(b: &[u8], n: usize) -> u8 { let x = &b[..n]; b[0] }\n";
        let d = lint_source("t.rs", flagged, &[Rule::UncheckedIndex]);
        assert_eq!(d.len(), 2);
        let clean = concat!(
            "#[derive(Clone)]\n",
            "struct S { buf: [u8; 4] }\n",
            "fn g() -> Vec<u8> { let a = [1u8, 2]; vec![3u8] }\n",
            "fn h(s: &[u8]) { match s { [1, ..] => {} _ => {} } }\n",
        );
        assert!(lint_source("t.rs", clean, &[Rule::UncheckedIndex]).is_empty());
    }

    #[test]
    fn hot_alloc_fires_on_allocation_sites() {
        let d = lint_source(
            "t.rs",
            concat!(
                "fn f(b: &[u8]) {\n",
                "    let v: Vec<u8> = Vec::new();\n",
                "    let w = b.to_vec();\n",
                "    let s = format!(\"x{}\", 1);\n",
                "    let bx = Box::new(3u8);\n",
                "    let c = w.clone();\n",
                "    let vc = Vec::<u8>::with_capacity(8);\n",
                "}\n",
            ),
            &[Rule::HotAlloc],
        );
        let lines: Vec<u32> = d.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 6, 7]);
        assert!(d.iter().all(|x| x.rule == "hot_alloc"));
    }

    #[test]
    fn new_rules_skip_cfg_test_regions_but_determinism_rules_do_not() {
        let src = concat!(
            "fn prod(o: Option<u8>) -> u8 { o.unwrap() }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(o: Option<u8>) { o.unwrap(); let v = vec![0u8]; let x = v[0]; }\n",
            "    fn w() { let t = Instant::now(); }\n",
            "}\n",
        );
        let d = lint_source("t.rs", src, &Rule::ALL);
        let hits: Vec<(&str, u32)> = d.iter().map(|x| (x.rule, x.line)).collect();
        // Only the production unwrap and the in-test wall clock survive.
        assert_eq!(hits, vec![("panic_path", 1), ("wall_clock", 5)]);
    }

    #[test]
    fn reasonless_allow_is_reported_and_suppresses_nothing() {
        let src = "// detlint: allow(wall_clock)\nlet t = Instant::now();\n";
        let hits = rules_hit(src);
        assert!(hits.contains(&"bad_suppression"));
        assert!(hits.contains(&"wall_clock"));
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// detlint: allow(no_such_rule) -- reason\n";
        let d = all(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bad_suppression");
        assert!(d[0].message.contains("no_such_rule"));
    }

    #[test]
    fn diagnostics_carry_file_and_line() {
        let d = all("let a = 1;\nlet t = SystemTime::now();\n");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].file.as_str(), d[0].line), ("test.rs", 2));
        assert!(d[0].to_string().contains("test.rs:2"));
    }

    #[test]
    fn selected_rules_only() {
        let src = "let t = Instant::now(); let x = 0.5;";
        let d = lint_source("t.rs", src, &[Rule::Float]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "float");
    }
}
