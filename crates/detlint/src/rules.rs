//! The determinism rules and the engine that applies them to a token stream.

use crate::lexer::{scan, AllowDirective, Token, TokenKind};

/// One determinism rule the auditor can enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No wall-clock reads (`Instant`, `SystemTime`, `UNIX_EPOCH`) — time
    /// must flow through `crates/clock`'s `Clock` abstraction.
    WallClock,
    /// No `HashMap`/`HashSet`/`RandomState` — iteration order is seeded per
    /// process and leaks into state; the deterministic core uses `BTreeMap`.
    UnorderedCollections,
    /// No `f32`/`f64` types or float literals — rounding is not guaranteed
    /// bit-identical across targets; simulation state is integer-only.
    Float,
    /// No OS entropy (`rand`, `thread_rng`, `OsRng`, `getrandom`) —
    /// randomness must come from the seeded `coplay_net::DetRng`.
    Entropy,
    /// No `static mut` and no interior-mutable statics (`OnceLock`,
    /// atomics, `Mutex`, …) — hidden global state diverges replicas.
    StaticState,
}

/// Rule id used by `bad_suppression` diagnostics (not a suppressible rule).
pub const BAD_SUPPRESSION: &str = "bad_suppression";

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 5] = [
        Rule::WallClock,
        Rule::UnorderedCollections,
        Rule::Float,
        Rule::Entropy,
        Rule::StaticState,
    ];

    /// The rule's stable identifier, as used in `allow(...)` directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall_clock",
            Rule::UnorderedCollections => "unordered_collections",
            Rule::Float => "float",
            Rule::Entropy => "entropy",
            Rule::StaticState => "static_state",
        }
    }

    /// Parses a rule identifier.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == s)
    }
}

/// One violation, pinned to `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule identifier (`wall_clock`, …, or `bad_suppression`).
    pub rule: &'static str,
    /// Human-readable explanation naming the offending construct.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Identifiers that read wall clocks.
const CLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "UNIX_EPOCH"];

/// Identifiers naming randomized-order containers.
const UNORDERED_IDENTS: [&str; 3] = ["HashMap", "HashSet", "RandomState"];

/// Identifiers that tap OS entropy.
const ENTROPY_IDENTS: [&str; 4] = ["thread_rng", "OsRng", "getrandom", "from_entropy"];

/// Interior-mutability wrappers that make a `static` mutable global state.
const INTERIOR_MUTABLE: [&str; 19] = [
    "AtomicBool",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "Cell",
    "LazyCell",
    "LazyLock",
    "Mutex",
    "OnceCell",
    "OnceLock",
    "RwLock",
];

/// Applies `rules` to `source`, honouring `// detlint: allow(...)` comments.
///
/// A well-formed allow directive (known rules *and* a `-- <reason>` trailer)
/// suppresses matching diagnostics on its own line and the next line.
/// Malformed directives suppress nothing and are themselves reported as
/// [`BAD_SUPPRESSION`] — an audit fence with silent escape hatches is no
/// fence at all.
pub fn lint_source(file: &str, source: &str, rules: &[Rule]) -> Vec<Diagnostic> {
    lint_source_counted(file, source, rules).0
}

/// As [`lint_source`], also returning the number of well-formed allow
/// directives honoured (whether or not they suppressed anything).
pub fn lint_source_counted(file: &str, source: &str, rules: &[Rule]) -> (Vec<Diagnostic>, usize) {
    let scanned = scan(source);
    let mut diags = Vec::new();
    for rule in rules {
        check_rule(*rule, &scanned.tokens, file, &mut diags);
    }

    // Partition directives: usable suppressions vs. reportable mistakes.
    let mut valid: Vec<&AllowDirective> = Vec::new();
    for d in &scanned.allows {
        let known = d.rules.iter().all(|r| Rule::parse(r).is_some());
        if d.well_formed && d.has_reason && known {
            valid.push(d);
        } else {
            let why = if !d.well_formed {
                "directive is not `detlint: allow(<rule>) -- <reason>`".to_string()
            } else if !known {
                let unknown: Vec<&str> = d
                    .rules
                    .iter()
                    .filter(|r| Rule::parse(r).is_none())
                    .map(String::as_str)
                    .collect();
                format!("unknown rule(s) {}", unknown.join(", "))
            } else {
                "missing `-- <reason>` justification".to_string()
            };
            diags.push(Diagnostic {
                file: file.to_string(),
                line: d.line,
                rule: BAD_SUPPRESSION,
                message: why,
            });
        }
    }

    diags.retain(|d| {
        d.rule == BAD_SUPPRESSION
            || !valid.iter().any(|a| {
                (a.line == d.line || a.line + 1 == d.line) && a.rules.iter().any(|r| r == d.rule)
            })
    });
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (diags, valid.len())
}

fn push(diags: &mut Vec<Diagnostic>, file: &str, line: u32, rule: Rule, message: String) {
    diags.push(Diagnostic {
        file: file.to_string(),
        line,
        rule: rule.id(),
        message,
    });
}

fn check_rule(rule: Rule, tokens: &[Token], file: &str, diags: &mut Vec<Diagnostic>) {
    match rule {
        Rule::WallClock => {
            for t in tokens.iter().filter(|t| t.kind == TokenKind::Ident) {
                if CLOCK_IDENTS.contains(&t.text.as_str()) {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!("wall-clock read `{}`; use the Clock trait", t.text),
                    );
                }
            }
        }
        Rule::UnorderedCollections => {
            for t in tokens.iter().filter(|t| t.kind == TokenKind::Ident) {
                if UNORDERED_IDENTS.contains(&t.text.as_str()) {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!(
                            "randomized-order container `{}`; use BTreeMap/BTreeSet",
                            t.text
                        ),
                    );
                }
            }
        }
        Rule::Float => {
            for t in tokens {
                match t.kind {
                    TokenKind::Ident if t.text == "f32" || t.text == "f64" => {
                        push(
                            diags,
                            file,
                            t.line,
                            rule,
                            format!("floating-point type `{}` in a deterministic path", t.text),
                        );
                    }
                    TokenKind::FloatLit => {
                        push(
                            diags,
                            file,
                            t.line,
                            rule,
                            format!(
                                "floating-point literal `{}` in a deterministic path",
                                t.text
                            ),
                        );
                    }
                    _ => {}
                }
            }
        }
        Rule::Entropy => {
            for (i, t) in tokens.iter().enumerate() {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let hit = ENTROPY_IDENTS.contains(&t.text.as_str())
                    || (t.text == "rand"
                        && tokens
                            .get(i + 1)
                            .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "::"));
                if hit {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        format!(
                            "OS entropy via `{}`; seed coplay_net::DetRng instead",
                            t.text
                        ),
                    );
                }
            }
        }
        Rule::StaticState => {
            for (i, t) in tokens.iter().enumerate() {
                if t.kind != TokenKind::Ident || t.text != "static" {
                    continue;
                }
                if tokens
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Ident && n.text == "mut")
                {
                    push(
                        diags,
                        file,
                        t.line,
                        rule,
                        "`static mut` global state".to_string(),
                    );
                    continue;
                }
                // Scan the static's type (up to `=` or `;`) for interior
                // mutability.
                for n in tokens.iter().skip(i + 1).take(48) {
                    if n.kind == TokenKind::Punct && (n.text == "=" || n.text == ";") {
                        break;
                    }
                    if n.kind == TokenKind::Ident && INTERIOR_MUTABLE.contains(&n.text.as_str()) {
                        push(
                            diags,
                            file,
                            t.line,
                            rule,
                            format!("interior-mutable static (`{}`)", n.text),
                        );
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(src: &str) -> Vec<Diagnostic> {
        lint_source("test.rs", src, &Rule::ALL)
    }

    fn rules_hit(src: &str) -> Vec<&'static str> {
        all(src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_source_passes() {
        assert!(all("use std::collections::BTreeMap;\nfn f(x: u64) -> u64 { x + 1 }\n").is_empty());
    }

    #[test]
    fn each_rule_fires() {
        assert_eq!(rules_hit("let t = Instant::now();"), vec!["wall_clock"]);
        assert_eq!(
            rules_hit("use std::collections::HashMap;"),
            vec!["unordered_collections"]
        );
        assert_eq!(rules_hit("fn f(x: f32) {}"), vec!["float"]);
        assert_eq!(rules_hit("let v = 0.5;"), vec!["float"]);
        assert_eq!(
            rules_hit("let r = rand::thread_rng();"),
            vec!["entropy", "entropy"]
        );
        assert_eq!(rules_hit("static mut X: u64 = 0;"), vec!["static_state"]);
        assert_eq!(
            rules_hit("static C: OnceLock<u64> = OnceLock::new();"),
            vec!["static_state"]
        );
    }

    #[test]
    fn rand_as_plain_identifier_is_fine() {
        // A local variable named `rand` is not the rand crate.
        assert!(all("let rand = 4u32; let x = rand + 1;").is_empty());
    }

    #[test]
    fn immutable_static_is_fine() {
        assert!(all("static TABLE: [u8; 4] = [1, 2, 3, 4];").is_empty());
    }

    #[test]
    fn initializer_after_equals_is_not_searched() {
        // `Mutex` appearing only in the initializer expression of a plain
        // const-like static type would be a different construct; the type
        // window stops at `=`.
        assert!(all("static N: usize = MUTEX_COUNT;").is_empty());
    }

    #[test]
    fn allow_on_same_or_previous_line_suppresses() {
        let same = "let t = Instant::now(); // detlint: allow(wall_clock) -- test shim\n";
        assert!(all(same).is_empty());
        let prev = "// detlint: allow(wall_clock) -- test shim\nlet t = Instant::now();\n";
        assert!(all(prev).is_empty());
    }

    #[test]
    fn allow_does_not_leak_to_later_lines() {
        let src =
            "// detlint: allow(wall_clock) -- one line only\nlet a = 1;\nlet t = Instant::now();\n";
        assert_eq!(rules_hit(src), vec!["wall_clock"]);
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "// detlint: allow(float) -- wrong rule\nlet t = Instant::now();\n";
        assert_eq!(rules_hit(src), vec!["wall_clock"]);
    }

    #[test]
    fn reasonless_allow_is_reported_and_suppresses_nothing() {
        let src = "// detlint: allow(wall_clock)\nlet t = Instant::now();\n";
        let hits = rules_hit(src);
        assert!(hits.contains(&"bad_suppression"));
        assert!(hits.contains(&"wall_clock"));
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// detlint: allow(no_such_rule) -- reason\n";
        let d = all(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bad_suppression");
        assert!(d[0].message.contains("no_such_rule"));
    }

    #[test]
    fn diagnostics_carry_file_and_line() {
        let d = all("let a = 1;\nlet t = SystemTime::now();\n");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].file.as_str(), d[0].line), ("test.rs", 2));
        assert!(d[0].to_string().contains("test.rs:2"));
    }

    #[test]
    fn selected_rules_only() {
        let src = "let t = Instant::now(); let x = 0.5;";
        let d = lint_source("t.rs", src, &[Rule::Float]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "float");
    }
}
