//! Wire-schema drift lint.
//!
//! The three hand-rolled codecs (`crates/lobby/src/wire.rs`,
//! `crates/sync/src/wire.rs`, `crates/relay/src/wire.rs`) are the
//! protocol: there is no IDL, so nothing
//! machine-checks that (a) every message's `encode` arm writes exactly the
//! fields its `decode` arm reads, or (b) a layout change bumps `VERSION`.
//! This pass recovers the schema from the token stream itself:
//!
//! * the `mod ty { const NAME: u8 = N; }` table gives message names/tags,
//! * each decode arm (`ty::NAME => …`) and encode arm (anchored at
//!   `put_u8(ty::NAME)`) is reduced to its sequence of primitive wire ops —
//!   `u8`/`u16`/`u32`/`u64` for the fixed-width getters/putters, `bytes`
//!   for a length-prefixed payload (`put_slice` ↔ `try_take`/`advance`),
//!   with `for`-loop bodies folded into `rep[…]` groups and helper
//!   functions (e.g. the lobby's `get_name`) spliced in at call sites,
//! * encode/decode asymmetry is a [`WIRE_ASYMMETRY`] diagnostic,
//! * the per-message op table is hashed (FNV-1a 64) into a layout
//!   fingerprint, pinned in `results/wire_schema.json`. CI re-extracts and
//!   compares: a fingerprint change with an unchanged `VERSION` fails the
//!   build — the wire cannot drift silently.
//!
//! The extractor is deliberately conservative: if it cannot find the
//! version const, the `ty` table, or any arms, that is itself a
//! [`WIRE_SCHEMA`] diagnostic — a codec the pass can no longer read is a
//! codec CI can no longer guard.

use std::fmt::Write as _;
use std::path::Path;

use crate::lexer::{int_value, scan, Token, TokenKind};
use crate::report::json_string;
use crate::rules::{Diagnostic, WIRE_ASYMMETRY, WIRE_SCHEMA};

/// The codecs under guard: `(codec name, workspace-relative path)`.
pub const CODEC_FILES: [(&str, &str); 3] = [
    ("lobby", "crates/lobby/src/wire.rs"),
    ("sync", "crates/sync/src/wire.rs"),
    ("relay", "crates/relay/src/wire.rs"),
];

/// One message's recovered wire layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSchema {
    /// Tag byte from the `ty` table.
    pub tag: u64,
    /// Lower-cased const name (`register`, `snapshot_chunk`, …).
    pub name: String,
    /// Op sequence written by the encode arm.
    pub encode_ops: String,
    /// Op sequence read by the decode arm.
    pub decode_ops: String,
}

/// One codec's recovered schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecSchema {
    /// Codec name (`lobby`, `sync`, `relay`).
    pub name: String,
    /// Workspace-relative source path.
    pub file: String,
    /// Value of the codec's `VERSION` const.
    pub version: u64,
    /// Messages sorted by tag.
    pub messages: Vec<MessageSchema>,
    /// FNV-1a 64 hash of the message table (layout only — `VERSION` is
    /// deliberately excluded so "layout changed, version did not" is
    /// detectable).
    pub fingerprint: u64,
}

/// Result of extracting every codec in [`CODEC_FILES`].
#[derive(Debug, Default)]
pub struct WireSchemas {
    /// Successfully extracted codecs.
    pub codecs: Vec<CodecSchema>,
    /// Asymmetry and extraction-failure diagnostics.
    pub diagnostics: Vec<Diagnostic>,
}

/// Extracts the schema of every codec under `root`, accumulating
/// diagnostics rather than failing fast.
pub fn extract_workspace(root: &Path) -> std::io::Result<WireSchemas> {
    let mut out = WireSchemas::default();
    for (name, rel) in CODEC_FILES {
        let path = root.join(rel);
        let source = std::fs::read_to_string(&path)?;
        let (schema, mut diags) = extract_codec(name, rel, &source);
        out.diagnostics.append(&mut diags);
        if let Some(s) = schema {
            out.codecs.push(s);
        }
    }
    Ok(out)
}

/// Maps a getter/putter identifier to its wire op, if it is one.
fn op_for(ident: &str) -> Option<&'static str> {
    Some(match ident {
        "get_u8" | "put_u8" => "u8",
        "get_u16_le" | "put_u16_le" => "u16",
        "get_u32_le" | "put_u32_le" => "u32",
        "get_u64_le" | "put_u64_le" => "u64",
        "put_slice" | "try_take" | "advance" => "bytes",
        _ => return None,
    })
}

/// A function body found in the token stream: `(name, body_range)`.
struct FnBody {
    name: String,
    start: usize,
    end: usize,
}

/// Finds every `fn name … { … }` body, including nested ones.
fn fn_bodies(tokens: &[Token]) -> Vec<FnBody> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "fn" {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        // The body is the first `{` after the signature; signatures contain
        // parens/brackets/angles but never braces.
        let Some(open) = (i + 2..tokens.len()).find(|&j| tokens[j].text == "{") else {
            continue;
        };
        let Some(close) = matching_brace(tokens, open) else {
            continue;
        };
        out.push(FnBody {
            name: name_tok.text.clone(),
            start: open + 1,
            end: close,
        });
    }
    out
}

/// Index of the `}` matching the `{` at `open`, if any.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Flattens the wire ops in `tokens[start..end]`, folding `for` bodies into
/// `rep[…]` and splicing helper functions at their call sites.
fn collect_ops(
    tokens: &[Token],
    start: usize,
    end: usize,
    helpers: &[(String, String)],
) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident {
            if t.text == "for" {
                // Fold the loop body into one rep group.
                if let Some(open) = (i + 1..end).find(|&j| tokens[j].text == "{") {
                    if let Some(close) = matching_brace(tokens, open).filter(|&c| c <= end) {
                        let inner = collect_ops(tokens, open + 1, close, helpers);
                        if !inner.is_empty() {
                            out.push(format!("rep[{}]", inner.join(",")));
                        }
                        i = close + 1;
                        continue;
                    }
                }
            } else if let Some(op) = op_for(&t.text) {
                out.push(op.to_string());
            } else if tokens.get(i + 1).is_some_and(|n| n.text == "(") {
                if let Some((_, ops)) = helpers.iter().find(|(h, _)| *h == t.text) {
                    out.push(ops.clone());
                }
            }
        }
        i += 1;
    }
    out
}

/// Extracts one codec's schema from `source`. Returns the schema (if the
/// file was readable as a codec at all) plus any diagnostics.
pub fn extract_codec(
    name: &str,
    rel: &str,
    source: &str,
) -> (Option<CodecSchema>, Vec<Diagnostic>) {
    let scanned = scan(source);
    let tokens = &scanned.tokens;
    let mut diags = Vec::new();
    let fail = |line: u32, msg: String, diags: &mut Vec<Diagnostic>| {
        diags.push(Diagnostic {
            file: rel.to_string(),
            line,
            rule: WIRE_SCHEMA,
            message: msg,
        });
    };

    // `const VERSION: … = <int>;`
    let version = tokens.windows(2).enumerate().find_map(|(i, w)| {
        (w[0].text == "const" && w[1].text == "VERSION")
            .then(|| {
                tokens[i + 2..]
                    .iter()
                    .take(8)
                    .find(|t| t.kind == TokenKind::IntLit)
                    .and_then(|t| int_value(&t.text))
            })
            .flatten()
    });
    let Some(version) = version else {
        fail(1, "no `const VERSION` found".to_string(), &mut diags);
        return (None, diags);
    };

    // `mod ty { const NAME: u8 = N; … }`
    let mut tags: Vec<(String, u64, u32)> = Vec::new();
    if let Some(m) = (0..tokens.len().saturating_sub(1))
        .find(|&i| tokens[i].text == "mod" && tokens[i + 1].text == "ty")
    {
        if let Some(open) = (m + 2..tokens.len()).find(|&j| tokens[j].text == "{") {
            let close = matching_brace(tokens, open).unwrap_or(tokens.len());
            let mut i = open;
            while i + 1 < close {
                if tokens[i].text == "const" && tokens[i + 1].kind == TokenKind::Ident {
                    let cname = tokens[i + 1].text.clone();
                    let line = tokens[i + 1].line;
                    if let Some(v) = tokens[i + 2..close.min(i + 8)]
                        .iter()
                        .find(|t| t.kind == TokenKind::IntLit)
                        .and_then(|t| int_value(&t.text))
                    {
                        tags.push((cname, v, line));
                    }
                }
                i += 1;
            }
        }
    }
    if tags.is_empty() {
        fail(1, "no `mod ty` tag table found".to_string(), &mut diags);
        return (None, diags);
    }

    let fns = fn_bodies(tokens);
    // Helpers: any named fn with wire ops that is not a codec entry point.
    // One level deep is enough for these codecs.
    let helpers: Vec<(String, String)> = fns
        .iter()
        .filter(|f| !matches!(f.name.as_str(), "encode" | "encode_into" | "decode"))
        .filter_map(|f| {
            let ops = collect_ops(tokens, f.start, f.end, &[]);
            (!ops.is_empty()).then(|| (f.name.clone(), ops.join(",")))
        })
        .collect();
    // Smallest enclosing fn body end for an anchor index (nested fns give
    // multiple candidates; the tightest is the actual arm's function).
    let enclosing_end = |i: usize| {
        fns.iter()
            .filter(|f| f.start <= i && i < f.end)
            .map(|f| f.end)
            .min()
            .unwrap_or(tokens.len())
    };

    // Encode arms, anchored at `put_u8(ty::NAME)` (the tag write itself is
    // not part of the message body).
    let mut enc_anchors: Vec<(String, usize, u32)> = Vec::new();
    for i in 0..tokens.len().saturating_sub(5) {
        if tokens[i].text == "put_u8"
            && tokens[i + 1].text == "("
            && tokens[i + 2].text == "ty"
            && tokens[i + 3].text == "::"
            && tokens[i + 4].kind == TokenKind::Ident
            && tokens[i + 5].text == ")"
        {
            enc_anchors.push((tokens[i + 4].text.clone(), i, tokens[i].line));
        }
    }
    let mut encode_arms: Vec<(String, String, u32)> = Vec::new();
    for (k, (cname, i, line)) in enc_anchors.iter().enumerate() {
        let fn_end = enclosing_end(*i);
        let arm_end = enc_anchors
            .get(k + 1)
            .map(|(_, j, _)| *j)
            .filter(|&j| j < fn_end)
            .unwrap_or(fn_end);
        let ops = collect_ops(tokens, i + 6, arm_end, &helpers);
        encode_arms.push((cname.clone(), ops.join(","), *line));
    }

    // Decode arms: `ty::NAME => …` (the lexer splits `=>` into `=` `>`).
    let mut decode_arms: Vec<(String, String, u32)> = Vec::new();
    for i in 0..tokens.len().saturating_sub(4) {
        if tokens[i].text == "ty"
            && tokens[i + 1].text == "::"
            && tokens[i + 2].kind == TokenKind::Ident
            && tokens[i + 3].text == "="
            && tokens[i + 4].text == ">"
        {
            let fn_end = enclosing_end(i);
            let body = i + 5;
            let arm_end = if tokens.get(body).is_some_and(|t| t.text == "{") {
                matching_brace(tokens, body).map_or(fn_end, |c| c.min(fn_end))
            } else {
                // Expression arm: up to the `,` at bracket depth zero.
                let mut depth = 0i32;
                let mut j = body;
                while j < fn_end {
                    match tokens[j].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                j
            };
            let ops = collect_ops(tokens, body, arm_end, &helpers);
            decode_arms.push((tokens[i + 2].text.clone(), ops.join(","), tokens[i].line));
        }
    }
    if encode_arms.is_empty() || decode_arms.is_empty() {
        fail(
            1,
            format!(
                "found {} encode / {} decode arms — extraction anchors lost",
                encode_arms.len(),
                decode_arms.len()
            ),
            &mut diags,
        );
        return (None, diags);
    }

    // Assemble per-tag messages and cross-check symmetry.
    let mut messages = Vec::new();
    for (cname, tag, line) in &tags {
        let enc = encode_arms.iter().find(|(n, _, _)| n == cname);
        let dec = decode_arms.iter().find(|(n, _, _)| n == cname);
        match (enc, dec) {
            (Some((_, e, _)), Some((_, d, _))) => {
                if e != d {
                    diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: *line,
                        rule: WIRE_ASYMMETRY,
                        message: format!("`{cname}` encode writes [{e}] but decode reads [{d}]"),
                    });
                }
                messages.push(MessageSchema {
                    tag: *tag,
                    name: cname.to_lowercase(),
                    encode_ops: e.clone(),
                    decode_ops: d.clone(),
                });
            }
            (enc, _) => {
                let missing = if enc.is_none() { "encode" } else { "decode" };
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: *line,
                    rule: WIRE_ASYMMETRY,
                    message: format!("`{cname}` has no {missing} arm"),
                });
            }
        }
    }
    messages.sort_by_key(|m| m.tag);

    // Duplicate tag values would silently shadow each other on the wire.
    for w in messages.windows(2) {
        if w[0].tag == w[1].tag {
            fail(
                1,
                format!(
                    "tag {} assigned to both `{}` and `{}`",
                    w[0].tag, w[0].name, w[1].name
                ),
                &mut diags,
            );
        }
    }

    let mut canon = String::new();
    for m in &messages {
        let _ = writeln!(
            canon,
            "{}:{}:{}:{}",
            m.tag, m.name, m.encode_ops, m.decode_ops
        );
    }
    let schema = CodecSchema {
        name: name.to_string(),
        file: rel.to_string(),
        version,
        fingerprint: fnv1a(canon.as_bytes()),
        messages,
    };
    (Some(schema), diags)
}

/// FNV-1a, 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serializes extracted schemas as the lockfile JSON document.
pub fn to_json(codecs: &[CodecSchema]) -> String {
    let mut out = String::from("{\n  \"codecs\": [");
    for (i, c) in codecs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\n      \"name\": {},\n      \"file\": {},\n      \
             \"version\": {},\n      \"fingerprint\": \"{:#018x}\",\n      \
             \"messages\": [",
            json_string(&c.name),
            json_string(&c.file),
            c.version,
            c.fingerprint
        );
        for (j, m) in c.messages.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n        {{\"tag\": {}, \"name\": {}, \"ops\": {}}}",
                m.tag,
                json_string(&m.name),
                json_string(&m.encode_ops)
            );
        }
        if !c.messages.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
    }
    if !codecs.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Pulls `"key": value` (a bare integer or a quoted string) out of a block
/// of the lockfile we wrote ourselves. Not a general JSON parser — the
/// crate stays dependency-free and the input is machine-generated.
fn json_field<'a>(block: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = block.find(&pat)? + pat.len();
    let rest = block[at..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '\n', '}']).next().map(str::trim)
    }
}

/// Checks freshly extracted schemas against the pinned lockfile text.
/// Returns one human-readable failure per codec that drifted.
pub fn check_against(codecs: &[CodecSchema], pinned: &str) -> Vec<String> {
    let mut failures = Vec::new();
    for c in codecs {
        let needle = format!("\"name\": \"{}\"", c.name);
        let Some(at) = pinned.find(&needle) else {
            failures.push(format!(
                "codec `{}` missing from the lockfile; run --update-schema",
                c.name
            ));
            continue;
        };
        let block = &pinned[at..];
        let pin_version = json_field(block, "version").and_then(|v| v.parse::<u64>().ok());
        let pin_fp = json_field(block, "fingerprint")
            .and_then(|v| u64::from_str_radix(v.trim_start_matches("0x"), 16).ok());
        let (Some(pin_version), Some(pin_fp)) = (pin_version, pin_fp) else {
            failures.push(format!(
                "lockfile entry for `{}` is unreadable; run --update-schema",
                c.name
            ));
            continue;
        };
        if c.fingerprint != pin_fp && c.version == pin_version {
            failures.push(format!(
                "`{}` wire layout changed (fingerprint {:#018x} -> {:#018x}) \
                 without a VERSION bump: bump VERSION in {} and run --update-schema",
                c.name, pin_fp, c.fingerprint, c.file
            ));
        } else if c.fingerprint != pin_fp || c.version != pin_version {
            failures.push(format!(
                "`{}` schema changed with a VERSION bump ({} -> {}); \
                 refresh the lockfile with --update-schema",
                c.name, pin_version, c.version
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature codec with the same shape as the real ones.
    pub const MINI: &str = r#"
const MAGIC: u8 = 0xAA;
const VERSION: u8 = 2;
mod ty {
    pub const PING: u8 = 1;
    pub const DATA: u8 = 2;
}
fn get_name(b: &mut &[u8]) -> u8 {
    let n = b.get_u8() as usize;
    b.advance(n);
    0
}
impl Msg {
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        b.put_u8(MAGIC);
        b.put_u8(VERSION);
        match self {
            Msg::Ping { nonce } => {
                b.put_u8(ty::PING);
                b.put_u32_le(*nonce);
            }
            Msg::Data { items } => {
                b.put_u8(ty::DATA);
                b.put_u16_le(items.len() as u16);
                for it in items {
                    b.put_u8(it.kind);
                    b.put_slice(&it.bytes);
                }
            }
        }
        b
    }
    pub fn decode(b: &mut &[u8]) -> Msg {
        match b.get_u8() {
            ty::PING => Msg::Ping { nonce: b.get_u32_le() },
            ty::DATA => {
                let n = b.get_u16_le() as usize;
                for _ in 0..n {
                    let _k = get_name(b);
                }
                Msg::Data { items: Vec::new() }
            }
            _ => Msg::Ping { nonce: 0 },
        }
    }
}
"#;

    #[test]
    fn mini_codec_extracts_and_reports_asymmetry() {
        let (schema, diags) = extract_codec("mini", "mini.rs", MINI);
        let schema = schema.expect("schema");
        assert_eq!(schema.version, 2);
        assert_eq!(schema.messages.len(), 2);
        assert_eq!(schema.messages[0].name, "ping");
        assert_eq!(schema.messages[0].encode_ops, "u32");
        assert_eq!(schema.messages[0].decode_ops, "u32");
        // DATA is deliberately asymmetric: encode writes u8+bytes per item,
        // decode (via the get_name helper) reads u8+bytes per item too —
        // but the helper splice proves itself here.
        assert_eq!(schema.messages[1].encode_ops, "u16,rep[u8,bytes]");
        assert_eq!(schema.messages[1].decode_ops, "u16,rep[u8,bytes]");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn asymmetry_is_diagnosed() {
        let broken = MINI.replace("nonce: b.get_u32_le()", "nonce: b.get_u16_le() as u32");
        let (_, diags) = extract_codec("mini", "mini.rs", &broken);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, WIRE_ASYMMETRY);
        assert!(diags[0].message.contains("PING"));
    }

    #[test]
    fn fingerprint_tracks_layout_not_version() {
        let (a, _) = extract_codec("mini", "mini.rs", MINI);
        let bumped = MINI.replace("const VERSION: u8 = 2;", "const VERSION: u8 = 3;");
        let (b, _) = extract_codec("mini", "mini.rs", &bumped);
        let widened = MINI.replace("b.put_u32_le(*nonce)", "b.put_u64_le(*nonce)");
        let (c, _) = extract_codec("mini", "mini.rs", &widened);
        let (a, b, c) = (a.unwrap(), b.unwrap(), c.unwrap());
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "version bump alone keeps layout"
        );
        assert_ne!(b.version, a.version);
        assert_ne!(
            a.fingerprint, c.fingerprint,
            "field width change re-fingerprints"
        );
    }

    #[test]
    fn check_against_catches_silent_drift() {
        let (a, _) = extract_codec("mini", "mini.rs", MINI);
        let a = a.unwrap();
        let lock = to_json(std::slice::from_ref(&a));
        assert!(check_against(std::slice::from_ref(&a), &lock).is_empty());

        // Layout change, same version: the must-bump failure.
        let widened = MINI.replace("b.put_u32_le(*nonce)", "b.put_u64_le(*nonce)");
        let drifted = extract_codec("mini", "mini.rs", &widened).0.unwrap();
        let fails = check_against(std::slice::from_ref(&drifted), &lock);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("without a VERSION bump"), "{}", fails[0]);

        // Layout change with a bump: stale lockfile, different message.
        let both = widened.replace("const VERSION: u8 = 2;", "const VERSION: u8 = 3;");
        let bumped = extract_codec("mini", "mini.rs", &both).0.unwrap();
        let fails = check_against(std::slice::from_ref(&bumped), &lock);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("--update-schema"), "{}", fails[0]);
    }

    #[test]
    fn missing_anchors_are_an_extraction_failure() {
        let (schema, diags) = extract_codec("x", "x.rs", "const VERSION: u8 = 1;\n");
        assert!(schema.is_none());
        assert!(diags.iter().any(|d| d.rule == WIRE_SCHEMA));
    }

    #[test]
    fn lockfile_json_roundtrips_through_field_parser() {
        let (a, _) = extract_codec("mini", "mini.rs", MINI);
        let a = a.unwrap();
        let lock = to_json(std::slice::from_ref(&a));
        let block = &lock[lock.find("\"name\": \"mini\"").unwrap()..];
        assert_eq!(json_field(block, "version"), Some("2"));
        let fp = json_field(block, "fingerprint").unwrap();
        assert_eq!(
            u64::from_str_radix(fp.trim_start_matches("0x"), 16).unwrap(),
            a.fingerprint
        );
    }
}
