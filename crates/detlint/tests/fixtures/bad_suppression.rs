// Fixture: malformed allow directives — each is reported as
// `bad_suppression` and suppresses nothing.

fn reasonless() -> std::time::Instant {
    // detlint: allow(wall_clock)
    std::time::Instant::now()
}

fn unknown_rule() -> f64 {
    // detlint: allow(no_such_rule) -- confidently wrong
    0.5
}

fn mangled() -> u64 {
    // detlint: allow wall_clock -- missing parentheses
    7
}
