// Fixture: OS entropy, caught by `entropy`.

fn bad_thread_rng() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn bad_os_rng() -> [u8; 16] {
    let mut buf = [0u8; 16];
    OsRng.fill_bytes(&mut buf);
    buf
}

// A local variable that happens to be named `rand` must NOT be flagged.
fn fine_local_named_rand() -> u32 {
    let rand = 4;
    rand + 1
}
