// Fixture: floating point in a deterministic path, caught by `float`.

fn bad_type(x: f32) -> f64 {
    x as f64
}

fn bad_literal() -> u64 {
    let half = 0.5;
    (half * 2.0) as u64
}

// Integer arithmetic that merely looks floaty must NOT be flagged:
// ranges, method calls on integer literals, hex with an `e` digit.
fn fine_integers() -> u64 {
    let mut acc = 0u64;
    for i in 0..10 {
        acc += i.max(3);
    }
    acc + 0x1e9
}
