// Fixture: the fused-superinstruction dispatch shape — a pair-fill helper
// and a dispatch arm like the VM's hot loop. Both run inside the repair
// budget, so allocations and panics here must be caught. Seeded violations
// come first; the fine (reusing/waived) section starts at line 21.

fn bad_fill_allocates(mem: &[u8], addr: usize) -> Vec<u8> {
    let pair = mem.to_vec();
    let mut ops = Vec::new();
    ops.extend_from_slice(&pair);
    let _ = addr;
    ops
}

fn bad_dispatch_panics(ops: &[u8], pc: usize) -> u8 {
    let head = ops.first().copied().unwrap();
    let tail = ops.get(pc).copied().expect("warm slot");
    if head == 0xFF {
        unreachable!("cold sentinel never dispatches");
    }
    tail
}

// Fine section: the real loop reuses caller-owned tables and waives the
// one decode-guaranteed expect with a reason.
fn fine_fill_reuses(ops: &mut [u8; 16], fused: &[u8]) {
    ops[..fused.len().min(16)].copy_from_slice(&fused[..fused.len().min(16)]);
}

fn fine_waived_dispatch(code: u8) -> u8 {
    let ok = code < 0x20;
    assert!(ok, "asserts are debug contracts, not panic-path violations");
    // detlint: allow(panic_path) -- fixture: fill only caches legal encodings, so decode cannot fail
    decode(code).expect("legal encoding")
}

fn decode(code: u8) -> Option<u8> {
    (code < 0x20).then_some(code)
}
