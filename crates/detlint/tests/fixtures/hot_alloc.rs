// Fixture: steady-state allocations that `hot_alloc` must catch.

fn bad_vec_new() -> Vec<u8> {
    Vec::new()
}

fn bad_to_vec(b: &[u8]) -> Vec<u8> {
    b.to_vec()
}

fn bad_clone(v: &Vec<u8>) -> Vec<u8> {
    v.clone()
}

fn bad_format(x: u32) -> String {
    format!("frame {x}")
}

fn bad_box(x: u32) -> Box<u32> {
    Box::new(x)
}

fn bad_with_capacity() -> Vec<u8> {
    Vec::with_capacity(64)
}

// Reuse is the point: writing into a caller-provided buffer is fine, as is
// a waived constructor allocation. The fine section starts at line 28.
fn fine_reuse(out: &mut Vec<u8>, b: &[u8]) {
    out.clear();
    out.extend_from_slice(b);
}

fn waived_constructor() -> Vec<u8> {
    // detlint: allow(hot_alloc) -- fixture: one-time constructor allocation
    Vec::with_capacity(1024)
}
