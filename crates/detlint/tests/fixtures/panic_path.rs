// Fixture: panic-reachable constructs that `panic_path` must catch.

fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn bad_expect(v: Result<u32, ()>) -> u32 {
    v.expect("always ok")
}

fn bad_macros(x: u32) -> u32 {
    match x {
        0 => panic!("zero"),
        1 => unreachable!("one"),
        _ => x,
    }
}

fn bad_unchecked(b: &[u8]) -> u8 {
    unsafe { *b.get_unchecked(0) }
}

// Intentional invariants and definitions must NOT be flagged: asserts are
// guards, and an fn named `unwrap` is a declaration, not a call.
fn unwrap(x: u32) -> u32 {
    assert!(x < 10);
    debug_assert!(x != 9);
    x
}

// A waived panic is fine — the waiver carries its justification.
fn waived(v: Option<u32>) -> u32 {
    // detlint: allow(panic_path) -- fixture: invariant holds by construction
    v.unwrap()
}

#[cfg(test)]
mod tests {
    // Test code unwraps freely; the pass must not look past the cfg(test)
    // cutoff above.
    fn in_tests(v: Option<u32>) -> u32 {
        v.unwrap()
    }
}
