// Fixture: waiver hygiene — a well-formed waiver that suppresses nothing
// is dead armour and must be reported as `stale_suppression`.

// detlint: allow(wall_clock) -- stale: the clock read below was removed
fn fixed_long_ago() -> u64 {
    42
}

// A waiver that still covers a live violation is earned, not stale.
fn still_needed() -> u64 {
    // detlint: allow(wall_clock) -- fixture: deliberate live violation
    std::time::Instant::now().elapsed().as_secs()
}
