// Fixture: hidden global state, caught by `static_state`.

static mut FRAME_COUNT: u64 = 0;

static CACHE: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();

static GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

// Immutable statics and 'static lifetimes must NOT be flagged.
static TABLE: [u8; 4] = [1, 2, 3, 4];

fn fine_lifetime(s: &'static str) -> &'static str {
    s
}
