// Fixture: violations waived by well-formed allow directives — the scan
// must report nothing here.

fn timed_shim() -> u128 {
    // detlint: allow(wall_clock) -- fixture exercising a justified waiver
    std::time::Instant::now().elapsed().as_nanos()
}

// detlint: allow(unordered_collections) -- iteration order never observed
fn scratch_set(set: &std::collections::HashSet<u32>) -> usize {
    set.len()
}

// detlint: allow(float) -- reporting-only ratio, never fed back into state
fn scratch_ratio(num: u64, den: u64) -> f64 {
    // detlint: allow(float) -- reporting-only ratio, never fed back into state
    num as f64 / den as f64
}
