// Fixture: slice indexing that `unchecked_index` must catch in codec zones.

fn bad_index(b: &[u8]) -> u8 {
    b[0]
}

fn bad_range(b: &[u8], n: usize) -> &[u8] {
    &b[..n]
}

fn bad_chained(pairs: &[(u8, u8)]) -> u8 {
    pairs[0].0
}

// None of these are indexing: attribute brackets, slice types, array
// literals, vec! macro arms, and slice patterns. The helper starts at
// line 18 and must be untouched.
#[derive(Debug)]
struct Fine {
    buf: [u8; 4],
}

fn fine(s: &[u8]) -> Vec<u8> {
    let arr = [1u8, 2, 3];
    let v = vec![0u8; 4];
    match s {
        [first, ..] => vec![*first],
        _ => v,
    }
}
