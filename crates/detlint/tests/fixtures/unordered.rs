// Fixture: randomized-order containers that must be caught by
// `unordered_collections`.

use std::collections::HashMap;

struct State {
    scores: HashMap<u32, u64>,
    seen: std::collections::HashSet<u32>,
}

// Ordered containers must NOT be flagged.
struct Fine {
    scores: std::collections::BTreeMap<u32, u64>,
    seen: std::collections::BTreeSet<u32>,
}
