// Fixture: wall-clock reads that must be caught by `wall_clock`.

fn bad_instant() -> std::time::Instant {
    std::time::Instant::now()
}

fn bad_system_time() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_secs()
}

// Duration is a value type, not a clock read — must NOT be flagged.
fn fine_duration() -> std::time::Duration {
    std::time::Duration::from_millis(20)
}
