// Fixture: a miniature codec whose PONG message drifted — encode writes a
// u32 payload but decode still reads a u16. The wire-schema pass must
// extract both messages and diagnose the asymmetry.

pub const MAGIC: u8 = 0xAA;
pub const VERSION: u8 = 7;

mod ty {
    pub const PING: u8 = 1;
    pub const PONG: u8 = 2;
}

pub enum Mini {
    Ping { seq: u32 },
    Pong { seq: u32, load: u32 },
}

impl Mini {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_u8(MAGIC);
        out.put_u8(VERSION);
        match self {
            Mini::Ping { seq } => {
                out.put_u8(ty::PING);
                out.put_u32_le(*seq);
            }
            Mini::Pong { seq, load } => {
                out.put_u8(ty::PONG);
                out.put_u32_le(*seq);
                out.put_u32_le(*load);
            }
        }
        out
    }

    pub fn decode(buf: &[u8]) -> Option<Mini> {
        let mut b = buf;
        if b.get_u8()? != MAGIC || b.get_u8()? != VERSION {
            return None;
        }
        match b.get_u8()? {
            ty::PING => Some(Mini::Ping { seq: b.get_u32_le()? }),
            ty::PONG => Some(Mini::Pong {
                seq: b.get_u32_le()?,
                load: u32::from(b.get_u16_le()?),
            }),
            _ => None,
        }
    }
}
