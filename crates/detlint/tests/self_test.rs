//! Self-tests: each seeded fixture is caught by its intended rule, the
//! suppressed fixture is not, and the real workspace scans clean.

use std::path::{Path, PathBuf};

use detlint::rules::{lint_source, Rule};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lint_fixture_with(name: &str, rules: &[Rule]) -> Vec<(u32, &'static str)> {
    lint_source(name, &fixture(name), rules)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

/// The determinism fixtures predate the panic/alloc zones and unwrap
/// freely; they are linted with the fence they seed violations for.
fn lint_fixture(name: &str) -> Vec<(u32, &'static str)> {
    lint_fixture_with(name, &Rule::DETERMINISM)
}

#[test]
fn wall_clock_fixture_is_caught() {
    let hits = lint_fixture("wall_clock.rs");
    assert!(
        hits.len() >= 3,
        "expected several clock reads, got {hits:?}"
    );
    assert!(hits.iter().all(|(_, r)| *r == "wall_clock"), "{hits:?}");
    // The Duration-only helper spans lines 16-19 and must be untouched.
    assert!(hits.iter().all(|(l, _)| *l < 16), "{hits:?}");
}

#[test]
fn unordered_fixture_is_caught() {
    let hits = lint_fixture("unordered.rs");
    assert!(hits.len() >= 2, "{hits:?}");
    assert!(
        hits.iter().all(|(_, r)| *r == "unordered_collections"),
        "{hits:?}"
    );
    // The BTree-only struct spans lines 12-15 and must be untouched.
    assert!(hits.iter().all(|(l, _)| *l < 12), "{hits:?}");
}

#[test]
fn float_fixture_is_caught() {
    let hits = lint_fixture("float.rs");
    assert!(hits.len() >= 3, "{hits:?}");
    assert!(hits.iter().all(|(_, r)| *r == "float"), "{hits:?}");
    // Ranges, integer method calls, and hex must not trip it: the
    // integer-only helper starts at line 14.
    assert!(hits.iter().all(|(l, _)| *l < 14), "{hits:?}");
}

#[test]
fn entropy_fixture_is_caught() {
    let hits = lint_fixture("entropy.rs");
    assert!(hits.len() >= 2, "{hits:?}");
    assert!(hits.iter().all(|(_, r)| *r == "entropy"), "{hits:?}");
    // The local variable named `rand` (lines 15-18) must be untouched.
    assert!(hits.iter().all(|(l, _)| *l < 15), "{hits:?}");
}

#[test]
fn static_state_fixture_is_caught() {
    let hits = lint_fixture("static_state.rs");
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().all(|(_, r)| *r == "static_state"), "{hits:?}");
    // Immutable static and 'static lifetimes (lines 9+) must be untouched.
    assert!(hits.iter().all(|(l, _)| *l < 9), "{hits:?}");
}

#[test]
fn suppressed_fixture_reports_nothing() {
    let hits = lint_fixture("suppressed.rs");
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn bad_suppressions_are_reported_and_do_not_suppress() {
    let hits = lint_fixture("bad_suppression.rs");
    let bad = hits.iter().filter(|(_, r)| *r == "bad_suppression").count();
    assert_eq!(bad, 3, "three malformed directives: {hits:?}");
    // The reasonless and unknown-rule waivers must not silence the
    // violations beneath them.
    assert!(hits.iter().any(|(_, r)| *r == "wall_clock"), "{hits:?}");
    assert!(hits.iter().any(|(_, r)| *r == "float"), "{hits:?}");
}

#[test]
fn panic_path_fixture_is_caught() {
    let hits = lint_fixture_with("panic_path.rs", &[Rule::PanicPath]);
    assert!(hits.len() >= 5, "unwrap/expect/macros/unchecked: {hits:?}");
    assert!(hits.iter().all(|(_, r)| *r == "panic_path"), "{hits:?}");
    // Asserts, fn definitions (line 25+), the waived unwrap, and the
    // cfg(test) module must all be untouched.
    assert!(hits.iter().all(|(l, _)| *l < 25), "{hits:?}");
}

#[test]
fn unchecked_index_fixture_is_caught() {
    let hits = lint_fixture_with("unchecked_index.rs", &[Rule::UncheckedIndex]);
    assert_eq!(hits.len(), 3, "b[0], &b[..n], pairs[0]: {hits:?}");
    assert!(
        hits.iter().all(|(_, r)| *r == "unchecked_index"),
        "{hits:?}"
    );
    // Attributes, array types/literals, vec!, and slice patterns (line 18+)
    // must be untouched.
    assert!(hits.iter().all(|(l, _)| *l < 18), "{hits:?}");
}

#[test]
fn hot_alloc_fixture_is_caught() {
    let hits = lint_fixture_with("hot_alloc.rs", &[Rule::HotAlloc]);
    assert_eq!(hits.len(), 6, "six allocation sites: {hits:?}");
    assert!(hits.iter().all(|(_, r)| *r == "hot_alloc"), "{hits:?}");
    // Buffer reuse and the waived constructor (line 28+) must be untouched.
    assert!(hits.iter().all(|(l, _)| *l < 28), "{hits:?}");
}

#[test]
fn fused_dispatch_fixture_is_caught() {
    let hits = lint_fixture_with("fused_dispatch.rs", &[Rule::PanicPath, Rule::HotAlloc]);
    let alloc = hits.iter().filter(|(_, r)| *r == "hot_alloc").count();
    let panics = hits.iter().filter(|(_, r)| *r == "panic_path").count();
    assert_eq!(alloc, 2, "to_vec + Vec::new in the fill: {hits:?}");
    assert_eq!(panics, 3, "unwrap/expect/unreachable in dispatch: {hits:?}");
    // The reusing fill, the assert, and the waived decode expect (line 21+)
    // must all be untouched.
    assert!(hits.iter().all(|(l, _)| *l < 21), "{hits:?}");
}

#[test]
fn stale_suppression_fixture_is_caught() {
    let hits = lint_fixture("stale_suppression.rs");
    assert_eq!(hits, vec![(4, "stale_suppression")], "{hits:?}");
}

#[test]
fn wire_drift_fixture_is_diagnosed() {
    let source = fixture("wire_drift.rs");
    let (schema, diags) = detlint::wire_schema::extract_codec("mini", "wire_drift.rs", &source);
    let schema = schema.expect("extraction succeeds");
    assert_eq!(schema.version, 7);
    assert_eq!(schema.messages.len(), 2, "{:?}", schema.messages);
    let ping = &schema.messages[0];
    assert_eq!(
        (ping.encode_ops.as_str(), ping.decode_ops.as_str()),
        ("u32", "u32")
    );
    let pong = &schema.messages[1];
    assert_eq!(pong.encode_ops, "u32,u32");
    assert_eq!(pong.decode_ops, "u32,u16");
    // PONG drifted: encode and decode disagree on the payload width.
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "wire_asymmetry" && d.message.contains("PONG")),
        "{diags:?}"
    );
}

#[test]
fn workspace_is_clean() {
    // Regression gate: the real workspace must stay free of determinism
    // hazards. Mirrors the CI `cargo run -p detlint` step.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let report = detlint::lint_workspace(&root).unwrap();
    assert!(report.files_scanned > 30, "suspiciously few files scanned");
    assert!(
        report.is_clean(),
        "workspace has determinism violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixtures_are_excluded_from_workspace_scan() {
    // The seeded violations above must never fail the workspace gate.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let report = detlint::lint_workspace(&root).unwrap();
    assert!(report
        .diagnostics
        .iter()
        .all(|d| !Path::new(&d.file).starts_with("crates/detlint")));
}
