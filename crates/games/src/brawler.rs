//! Brawler: a two-player versus fighting game in the mould of Street
//! Fighter II — the very title the paper's testbed loads into MAME.
//!
//! Two fighters with health bars, a 99-second round timer, punches, kicks,
//! blocking, knockback, and best-of-three rounds. All physics is integer
//! fixed point; all state is captured by `save_state`, so replicas converge
//! bit-for-bit under lockstep.

use coplay_vm::{
    AudioChannel, Button, Color, FrameBuffer, InputWord, Machine, MachineInfo, Player, StateError,
    StateHasher,
};

const W: i32 = 160;
const GROUND: i32 = 100;
/// Fixed-point shift (1/16 pixel).
const FP: i32 = 4;
const WALK_SPEED: i32 = 24; // 1.5 px/frame
const MIN_GAP: i32 = 12 << FP;
const MAX_HEALTH: i32 = 100;
const ROUND_SECONDS: u32 = 99;
const ROUNDS_TO_WIN: u8 = 2;

const PUNCH_TOTAL: u8 = 12;
const PUNCH_ACTIVE: std::ops::Range<u8> = 4..7;
const PUNCH_RANGE: i32 = 14 << FP;
const PUNCH_DMG: i32 = 6;

const KICK_TOTAL: u8 = 20;
const KICK_ACTIVE: std::ops::Range<u8> = 8..13;
const KICK_RANGE: i32 = 20 << FP;
const KICK_DMG: i32 = 10;

const HITSTUN: u8 = 10;
const KNOCKBACK: i32 = 40; // 2.5 px/frame during hitstun

const STATE_MAGIC: &[u8; 4] = b"BRWL";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FighterState {
    Idle,
    Punch(u8),
    Kick(u8),
    Hitstun(u8),
}

impl FighterState {
    fn code(self) -> u8 {
        match self {
            FighterState::Idle => 0,
            FighterState::Punch(_) => 1,
            FighterState::Kick(_) => 2,
            FighterState::Hitstun(_) => 3,
        }
    }

    fn counter(self) -> u8 {
        match self {
            FighterState::Idle => 0,
            FighterState::Punch(c) | FighterState::Kick(c) | FighterState::Hitstun(c) => c,
        }
    }

    fn from_parts(code: u8, counter: u8) -> FighterState {
        match code {
            1 => FighterState::Punch(counter),
            2 => FighterState::Kick(counter),
            3 => FighterState::Hitstun(counter),
            _ => FighterState::Idle,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fighter {
    x: i32, // fixed point, body center
    health: i32,
    state: FighterState,
    blocking: bool,
    /// The current swing has already landed (one hit per attack).
    connected: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// "Round N — FIGHT!" freeze.
    Intro(u16),
    Fight,
    /// Round decided; brief pause. 0/1 = winner, 2 = draw.
    RoundEnd {
        pause: u16,
        winner: u8,
    },
    MatchOver {
        winner: u8,
    },
}

/// A deterministic two-player fighting game (the paper's SF2 stand-in).
///
/// Controls per player: `Left`/`Right` walk, `A` punch (fast, short),
/// `B` kick (slow, long). Walking away from the opponent blocks incoming
/// attacks (chip damage only). `Start` restarts a finished match.
///
/// # Examples
///
/// ```
/// use coplay_games::Brawler;
/// use coplay_vm::{Button, InputWord, Machine, Player};
///
/// let mut game = Brawler::new();
/// let mut punch = InputWord::NONE;
/// punch.press(Player::ONE, Button::A);
/// for _ in 0..120 {
///     game.step_frame(punch);
/// }
/// assert_eq!(game.frame(), 120);
/// ```
#[derive(Debug, Clone)]
pub struct Brawler {
    frame: u64,
    phase: Phase,
    fighters: [Fighter; 2],
    timer_frames: u32,
    rounds_won: [u8; 2],
    fb: FrameBuffer,
    audio: AudioChannel,
    audio_frame: Vec<i16>,
}

impl Brawler {
    /// Creates a match at the first round's intro.
    pub fn new() -> Brawler {
        let mut g = Brawler {
            frame: 0,
            phase: Phase::Intro(45),
            fighters: [Fighter::spawn(0), Fighter::spawn(1)],
            timer_frames: ROUND_SECONDS * 60,
            rounds_won: [0, 0],
            fb: FrameBuffer::standard(),
            audio: AudioChannel::new(),
            audio_frame: Vec::new(),
        };
        g.draw();
        g
    }

    /// Health of both fighters, `(p1, p2)`.
    pub fn health(&self) -> (i32, i32) {
        (self.fighters[0].health, self.fighters[1].health)
    }

    /// Rounds won, `(p1, p2)`.
    pub fn rounds(&self) -> (u8, u8) {
        (self.rounds_won[0], self.rounds_won[1])
    }

    /// The winner once the match is over.
    pub fn winner(&self) -> Option<u8> {
        match self.phase {
            Phase::MatchOver { winner } => Some(winner),
            _ => None,
        }
    }

    /// Seconds left on the round clock.
    pub fn clock(&self) -> u32 {
        self.timer_frames / 60
    }

    fn start_round(&mut self) {
        self.fighters = [Fighter::spawn(0), Fighter::spawn(1)];
        self.timer_frames = ROUND_SECONDS * 60;
        self.phase = Phase::Intro(45);
    }

    fn step_fight(&mut self, input: InputWord) {
        // 1. Advance attack/stun counters.
        for f in &mut self.fighters {
            f.state = match f.state {
                FighterState::Punch(c) if c + 1 >= PUNCH_TOTAL => FighterState::Idle,
                FighterState::Punch(c) => FighterState::Punch(c + 1),
                FighterState::Kick(c) if c + 1 >= KICK_TOTAL => FighterState::Idle,
                FighterState::Kick(c) => FighterState::Kick(c + 1),
                FighterState::Hitstun(0) => FighterState::Idle,
                FighterState::Hitstun(c) => FighterState::Hitstun(c - 1),
                FighterState::Idle => FighterState::Idle,
            };
        }

        // 2. Read intentions.
        for i in 0..2 {
            let player = Player(i as u8);
            let facing_right = self.facing_right(i);
            let (fwd, back) = if facing_right {
                (Button::Right, Button::Left)
            } else {
                (Button::Left, Button::Right)
            };
            let f = &mut self.fighters[i];
            f.blocking = false;
            match f.state {
                FighterState::Idle => {
                    if input.is_pressed(player, Button::A) {
                        f.state = FighterState::Punch(0);
                        f.connected = false;
                    } else if input.is_pressed(player, Button::B) {
                        f.state = FighterState::Kick(0);
                        f.connected = false;
                    } else {
                        let mut dx = 0;
                        if input.is_pressed(player, fwd) {
                            dx += WALK_SPEED;
                        }
                        if input.is_pressed(player, back) {
                            dx -= WALK_SPEED;
                            f.blocking = true;
                        }
                        if !facing_right {
                            dx = -dx;
                        }
                        f.x += dx;
                    }
                }
                FighterState::Hitstun(_) => {
                    // Knockback away from the opponent.
                    let push = if facing_right { -KNOCKBACK } else { KNOCKBACK };
                    f.x += push;
                }
                _ => {}
            }
            self.fighters[i].x = self.fighters[i].x.clamp(8 << FP, (W - 8) << FP);
        }

        // 3. Keep fighters from overlapping.
        let gap = (self.fighters[1].x - self.fighters[0].x).abs();
        if gap < MIN_GAP {
            let push = (MIN_GAP - gap) / 2;
            if self.fighters[0].x <= self.fighters[1].x {
                self.fighters[0].x -= push;
                self.fighters[1].x += push;
            } else {
                self.fighters[0].x += push;
                self.fighters[1].x -= push;
            }
        }

        // 4. Resolve hits.
        for i in 0..2 {
            let j = 1 - i;
            let (range, dmg, active) = match self.fighters[i].state {
                FighterState::Punch(c) if PUNCH_ACTIVE.contains(&c) => {
                    (PUNCH_RANGE, PUNCH_DMG, true)
                }
                FighterState::Kick(c) if KICK_ACTIVE.contains(&c) => (KICK_RANGE, KICK_DMG, true),
                _ => (0, 0, false),
            };
            if !active || self.fighters[i].connected {
                continue;
            }
            let dist = (self.fighters[j].x - self.fighters[i].x).abs();
            if dist <= range + (4 << FP) {
                let blocked = self.fighters[j].blocking;
                let dealt = if blocked { 1 } else { dmg };
                self.fighters[j].health = (self.fighters[j].health - dealt).max(0);
                self.fighters[i].connected = true;
                if !blocked {
                    self.fighters[j].state = FighterState::Hitstun(HITSTUN);
                    self.audio.tone(220, 3, 6_000);
                } else {
                    self.audio.tone(660, 2, 3_000);
                }
            }
        }

        // 5. Clock and round end.
        self.timer_frames = self.timer_frames.saturating_sub(1);
        let koed: Vec<usize> = (0..2).filter(|&i| self.fighters[i].health == 0).collect();
        let round_winner = if !koed.is_empty() {
            if koed.len() == 2 {
                Some(2) // double KO: draw
            } else {
                Some(1 - koed[0] as u8)
            }
        } else if self.timer_frames == 0 {
            use std::cmp::Ordering;
            match self.fighters[0].health.cmp(&self.fighters[1].health) {
                Ordering::Greater => Some(0),
                Ordering::Less => Some(1),
                Ordering::Equal => Some(2),
            }
        } else {
            None
        };
        if let Some(winner) = round_winner {
            if winner < 2 {
                self.rounds_won[winner as usize] += 1;
            }
            self.audio.tone(110, 20, 8_000);
            self.phase = Phase::RoundEnd { pause: 90, winner };
        }
    }

    fn facing_right(&self, i: usize) -> bool {
        self.fighters[i].x <= self.fighters[1 - i].x
    }

    fn draw(&mut self) {
        self.fb.clear(Color(1)); // night sky
        self.fb.fill_rect(0, GROUND, W, 120 - GROUND, Color(6)); // ground

        // Health bars.
        self.fb.fill_rect(6, 6, 60, 5, Color(8));
        self.fb.fill_rect(94, 6, 60, 5, Color(8));
        let h0 = self.fighters[0].health * 60 / MAX_HEALTH;
        let h1 = self.fighters[1].health * 60 / MAX_HEALTH;
        self.fb.fill_rect(6 + (60 - h0), 6, h0, 5, Color(12));
        self.fb.fill_rect(94, 6, h1, 5, Color(12));

        // Round pips.
        for r in 0..self.rounds_won[0] {
            self.fb.fill_rect(6 + r as i32 * 6, 13, 4, 3, Color(14));
        }
        for r in 0..self.rounds_won[1] {
            self.fb.fill_rect(150 - r as i32 * 6, 13, 4, 3, Color(14));
        }

        // Timer.
        self.fb.draw_number(W / 2 - 4, 4, self.clock(), Color(15));

        // Fighters.
        for i in 0..2 {
            let f = &self.fighters[i];
            let x = (f.x >> FP) - 4;
            let body = if i == 0 { Color(9) } else { Color(12) };
            let stunned = matches!(f.state, FighterState::Hitstun(_));
            let color = if stunned { Color(15) } else { body };
            // Torso + head.
            self.fb.fill_rect(x, GROUND - 24, 8, 24, color);
            self.fb.fill_rect(x + 1, GROUND - 31, 6, 6, Color(14));
            // Active limb.
            let facing_right = self.facing_right(i);
            let (reach, active) = match f.state {
                FighterState::Punch(c) => (12, PUNCH_ACTIVE.contains(&c)),
                FighterState::Kick(c) => (18, KICK_ACTIVE.contains(&c)),
                _ => (0, false),
            };
            if active {
                let (lx, lw) = if facing_right {
                    (x + 8, reach)
                } else {
                    (x - reach, reach)
                };
                self.fb.fill_rect(lx, GROUND - 18, lw, 3, Color(15));
            }
            // Block indicator.
            if f.blocking {
                let bx = if facing_right { x - 2 } else { x + 8 };
                self.fb.fill_rect(bx, GROUND - 26, 2, 26, Color(11));
            }
        }

        // Phase banners.
        match self.phase {
            Phase::Intro(_) => self.fb.fill_rect(W / 2 - 20, 40, 40, 3, Color(14)),
            Phase::RoundEnd { winner, .. } if winner < 2 => {
                let x = if winner == 0 { 20 } else { W / 2 + 20 };
                self.fb.fill_rect(x, 40, 40, 3, Color(10));
            }
            Phase::MatchOver { winner } => {
                let x = if winner == 0 { 20 } else { W / 2 + 20 };
                self.fb.fill_rect(x, 36, 40, 8, Color(10));
            }
            _ => {}
        }
    }
}

impl Fighter {
    fn spawn(which: usize) -> Fighter {
        Fighter {
            x: if which == 0 { 40 << FP } else { (W - 40) << FP },
            health: MAX_HEALTH,
            state: FighterState::Idle,
            blocking: false,
            connected: false,
        }
    }
}

impl Default for Brawler {
    fn default() -> Self {
        Brawler::new()
    }
}

impl Machine for Brawler {
    fn info(&self) -> MachineInfo {
        MachineInfo::new("Brawler", 2)
    }

    fn reset(&mut self) {
        *self = Brawler::new();
    }

    fn step_frame(&mut self, input: InputWord) {
        match self.phase {
            Phase::Intro(n) => {
                self.phase = if n == 0 {
                    Phase::Fight
                } else {
                    Phase::Intro(n - 1)
                };
            }
            Phase::Fight => self.step_fight(input),
            Phase::RoundEnd { pause, winner } => {
                if pause == 0 {
                    if self.rounds_won.iter().any(|&r| r >= ROUNDS_TO_WIN) {
                        let winner = if self.rounds_won[0] >= ROUNDS_TO_WIN {
                            0
                        } else {
                            1
                        };
                        self.phase = Phase::MatchOver { winner };
                    } else {
                        self.start_round();
                    }
                } else {
                    self.phase = Phase::RoundEnd {
                        pause: pause - 1,
                        winner,
                    };
                }
            }
            Phase::MatchOver { .. } => {
                if input.is_pressed(Player::ONE, Button::Start)
                    || input.is_pressed(Player::TWO, Button::Start)
                {
                    *self = Brawler::new();
                }
            }
        }
        self.draw();
        self.audio_frame = self.audio.render_frame(60).to_vec();
        self.frame += 1;
    }

    fn frame(&self) -> u64 {
        self.frame
    }

    fn framebuffer(&self) -> &FrameBuffer {
        &self.fb
    }

    fn audio_samples(&self) -> &[i16] {
        &self.audio_frame
    }

    fn state_hash(&self) -> u64 {
        let mut h = StateHasher::new();
        h.write(&self.save_state());
        h.finish()
    }

    fn save_state(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        self.save_state_into(&mut v);
        v
    }

    fn save_state_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(STATE_MAGIC);
        out.extend_from_slice(&self.frame.to_le_bytes());
        let (code, a, b) = match self.phase {
            Phase::Intro(n) => (0u8, n, 0u8),
            Phase::Fight => (1, 0, 0),
            Phase::RoundEnd { pause, winner } => (2, pause, winner),
            Phase::MatchOver { winner } => (3, 0, winner),
        };
        out.push(code);
        out.extend_from_slice(&a.to_le_bytes());
        out.push(b);
        for f in &self.fighters {
            out.extend_from_slice(&f.x.to_le_bytes());
            out.extend_from_slice(&f.health.to_le_bytes());
            out.push(f.state.code());
            out.push(f.state.counter());
            out.push(f.blocking as u8);
            out.push(f.connected as u8);
        }
        out.extend_from_slice(&self.timer_frames.to_le_bytes());
        out.extend_from_slice(&self.rounds_won);
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        const LEN: usize = 4 + 8 + 1 + 2 + 1 + 2 * (4 + 4 + 4) + 4 + 2;
        if bytes.len() < LEN {
            return Err(StateError::Truncated {
                expected: LEN,
                actual: bytes.len(),
            });
        }
        if &bytes[..4] != STATE_MAGIC {
            return Err(StateError::BadMagic);
        }
        let mut p = 4;
        let mut take = |n: usize| {
            let s = &bytes[p..p + n];
            p += n;
            s
        };
        self.frame = u64::from_le_bytes(take(8).try_into().expect("len 8"));
        let code = take(1)[0];
        let a = u16::from_le_bytes(take(2).try_into().expect("len 2"));
        let b = take(1)[0];
        self.phase = match code {
            0 => Phase::Intro(a),
            1 => Phase::Fight,
            2 => Phase::RoundEnd {
                pause: a,
                winner: b,
            },
            _ => Phase::MatchOver { winner: b },
        };
        for f in &mut self.fighters {
            f.x = i32::from_le_bytes(take(4).try_into().expect("len 4"));
            f.health = i32::from_le_bytes(take(4).try_into().expect("len 4"));
            let code = take(1)[0];
            let counter = take(1)[0];
            f.state = FighterState::from_parts(code, counter);
            f.blocking = take(1)[0] != 0;
            f.connected = take(1)[0] != 0;
        }
        self.timer_frames = u32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.rounds_won.copy_from_slice(take(2));
        self.draw();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hold(player: Player, buttons: &[Button]) -> InputWord {
        let mut w = InputWord::NONE;
        for &b in buttons {
            w.press(player, b);
        }
        w
    }

    fn skip_intro(g: &mut Brawler) {
        while matches!(g.phase, Phase::Intro(_)) {
            g.step_frame(InputWord::NONE);
        }
    }

    #[test]
    fn intro_freezes_then_fight_begins() {
        let mut g = Brawler::new();
        let x0 = g.fighters[0].x;
        let walk = hold(Player::ONE, &[Button::Right]);
        g.step_frame(walk);
        assert_eq!(g.fighters[0].x, x0, "no movement during intro");
        skip_intro(&mut g);
        g.step_frame(walk);
        assert!(g.fighters[0].x > x0, "walks once the round starts");
    }

    #[test]
    fn fighters_cannot_pass_through_each_other() {
        let mut g = Brawler::new();
        skip_intro(&mut g);
        let charge = {
            let mut w = hold(Player::ONE, &[Button::Right]);
            w.press(Player::TWO, Button::Left);
            w
        };
        for _ in 0..600 {
            g.step_frame(charge);
        }
        assert!(
            g.fighters[1].x - g.fighters[0].x >= MIN_GAP - (1 << FP),
            "gap {} too small",
            g.fighters[1].x - g.fighters[0].x
        );
    }

    #[test]
    fn punches_deal_damage_in_range() {
        let mut g = Brawler::new();
        skip_intro(&mut g);
        // Walk together, then P1 mashes punch.
        let approach = {
            let mut w = hold(Player::ONE, &[Button::Right]);
            w.press(Player::TWO, Button::Left);
            w
        };
        for _ in 0..120 {
            g.step_frame(approach);
        }
        let before = g.health().1;
        let punch = hold(Player::ONE, &[Button::A]);
        for _ in 0..60 {
            g.step_frame(punch);
        }
        assert!(g.health().1 < before, "punches should land");
        assert_eq!(g.health().0, MAX_HEALTH, "P1 untouched");
    }

    #[test]
    fn out_of_range_attacks_miss() {
        let mut g = Brawler::new();
        skip_intro(&mut g);
        let punch = hold(Player::ONE, &[Button::A]);
        for _ in 0..60 {
            g.step_frame(punch);
        }
        assert_eq!(g.health(), (MAX_HEALTH, MAX_HEALTH));
    }

    #[test]
    fn blocking_reduces_damage_to_chip() {
        // P1 alternates pursuing and kicking; P2 either blocks (holds away)
        // or stands still.
        let run = |p2_blocks: bool| {
            let mut g = Brawler::new();
            skip_intro(&mut g);
            for k in 0..900 {
                let mut w = InputWord::NONE;
                if (k / 20) % 2 == 0 {
                    w.press(Player::ONE, Button::Right);
                } else {
                    w.press(Player::ONE, Button::B);
                }
                if p2_blocks {
                    w.press(Player::TWO, Button::Right);
                }
                g.step_frame(w);
            }
            MAX_HEALTH - g.health().1
        };
        let unblocked = run(false);
        let blocked = run(true);
        assert!(blocked > 0, "chip damage still applies");
        assert!(
            blocked < unblocked / 2,
            "blocked {blocked} should be far less than unblocked {unblocked}"
        );
    }

    #[test]
    fn ko_ends_round_and_match_plays_out() {
        let mut g = Brawler::new();
        // P1 alternates pursuit and kicks; P2 idles.
        let mut saw_round_end = false;
        for k in 0..60 * 60 * 10 {
            let mut w = InputWord::NONE;
            if (k / 20) % 2 == 0 {
                w.press(Player::ONE, Button::Right);
            } else {
                w.press(Player::ONE, Button::B);
            }
            g.step_frame(w);
            if matches!(g.phase, Phase::RoundEnd { .. }) {
                saw_round_end = true;
            }
            if g.winner().is_some() {
                break;
            }
        }
        assert!(saw_round_end, "round should have ended by KO");
        assert_eq!(g.winner(), Some(0));
        assert_eq!(g.rounds().0, ROUNDS_TO_WIN);
        // Start restarts the match.
        g.step_frame(hold(Player::TWO, &[Button::Start]));
        assert!(g.winner().is_none());
        assert_eq!(g.rounds(), (0, 0));
    }

    #[test]
    fn timeout_awards_round_to_healthier_fighter() {
        let mut g = Brawler::new();
        skip_intro(&mut g);
        g.timer_frames = 30; // nearly expired
        g.fighters[1].health = 50;
        for _ in 0..31 {
            g.step_frame(InputWord::NONE);
        }
        assert!(matches!(g.phase, Phase::RoundEnd { winner: 0, .. }));
        assert_eq!(g.rounds(), (1, 0));
    }

    #[test]
    fn deterministic_replay() {
        let script: Vec<InputWord> = (0..2_000u32)
            .map(|i| InputWord((i.wrapping_mul(2_654_435_761) >> 9) & 0x3F3F))
            .collect();
        let run = || {
            let mut g = Brawler::new();
            for &w in &script {
                g.step_frame(w);
            }
            g.state_hash()
        };
        assert_eq!(run(), run());
    }

    // Snapshot roundtrip coverage lives in the generic conformance harness
    // (tests/properties.rs, every_machine_snapshot_roundtrips_mid_game).

    #[test]
    fn load_rejects_garbage() {
        let mut g = Brawler::new();
        assert!(matches!(
            g.load_state(&[1, 2, 3]),
            Err(StateError::Truncated { .. })
        ));
        let mut snap = g.save_state();
        snap[1] = b'?';
        assert!(matches!(g.load_state(&snap), Err(StateError::BadMagic)));
    }

    #[test]
    fn health_bars_reflect_damage() {
        let mut g = Brawler::new();
        skip_intro(&mut g);
        let full_fb = g.framebuffer().clone();
        g.fighters[1].health = 10;
        g.step_frame(InputWord::NONE);
        assert_ne!(g.framebuffer(), &full_fb);
    }

    #[test]
    fn hitstun_prevents_immediate_rehit() {
        let mut g = Brawler::new();
        skip_intro(&mut g);
        let approach = {
            let mut w = hold(Player::ONE, &[Button::Right]);
            w.press(Player::TWO, Button::Left);
            w
        };
        for _ in 0..120 {
            g.step_frame(approach);
        }
        // One full punch cycle: damage equals exactly one PUNCH_DMG.
        let punch = hold(Player::ONE, &[Button::A]);
        for _ in 0..PUNCH_TOTAL as usize {
            g.step_frame(punch);
        }
        assert_eq!(MAX_HEALTH - g.health().1, PUNCH_DMG);
    }
}
