//! Breakout: cooperative brick-breaking with two paddles.
//!
//! Both players defend the same ball with independent paddles — a
//! cooperative continuous-state game that stresses the sync layer
//! differently from the versus titles: every frame of *both* players'
//! movement matters to the shared physics.

use coplay_vm::{
    AudioChannel, Button, Color, FrameBuffer, InputWord, Machine, MachineInfo, Player, StateError,
    StateHasher,
};

const W: i32 = 160;
const H: i32 = 120;
/// Fixed-point shift (1/16 pixel).
const FP: i32 = 4;

const PAD_W: i32 = 20;
const PAD_H: i32 = 3;
const PAD_Y: i32 = H - 8;
const PAD_SPEED: i32 = 3 << FP;

const BALL: i32 = 2;
const BRICK_COLS: usize = 10;
const BRICK_ROWS: usize = 5;
const BRICK_W: i32 = 16;
const BRICK_H: i32 = 6;
const BRICK_TOP: i32 = 16;
const START_LIVES: u8 = 3;

const STATE_MAGIC: &[u8; 4] = b"BRKT";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Serving { countdown: u16 },
    Play,
    GameOver,
}

/// Cooperative two-paddle Breakout as a deterministic [`Machine`].
///
/// Player 1 and player 2 each steer their own paddle with `Left`/`Right`.
/// Lives are shared; clearing the wall advances the level and speeds the
/// ball up. `Start` restarts after game over.
///
/// # Examples
///
/// ```
/// use coplay_games::Breakout;
/// use coplay_vm::{InputWord, Machine};
///
/// let mut game = Breakout::new();
/// for _ in 0..120 {
///     game.step_frame(InputWord::NONE);
/// }
/// assert_eq!(game.frame(), 120);
/// ```
#[derive(Debug, Clone)]
pub struct Breakout {
    frame: u64,
    phase: Phase,
    paddle_x: [i32; 2], // fixed point, left edge
    ball_x: i32,
    ball_y: i32,
    vel_x: i32,
    vel_y: i32,
    bricks: u64, // bit r*BRICK_COLS+c set = brick alive
    score: u32,
    lives: u8,
    level: u8,
    rng: u32,
    fb: FrameBuffer,
    audio: AudioChannel,
    audio_frame: Vec<i16>,
}

impl Breakout {
    /// Creates a game at the opening serve.
    pub fn new() -> Breakout {
        Breakout::with_seed(0x42_52_4B_54)
    }

    /// Creates a game with serve randomness derived from `seed`.
    pub fn with_seed(seed: u32) -> Breakout {
        let mut g = Breakout {
            frame: 0,
            phase: Phase::Serving { countdown: 45 },
            paddle_x: [(W / 4 - PAD_W / 2) << FP, (3 * W / 4 - PAD_W / 2) << FP],
            ball_x: 0,
            ball_y: 0,
            vel_x: 0,
            vel_y: 0,
            bricks: full_wall(),
            score: 0,
            lives: START_LIVES,
            level: 1,
            rng: seed,
            fb: FrameBuffer::standard(),
            audio: AudioChannel::new(),
            audio_frame: Vec::new(),
        };
        g.reset_ball();
        g.draw();
        g
    }

    /// The shared score.
    pub fn score(&self) -> u32 {
        self.score
    }

    /// Remaining shared lives.
    pub fn lives(&self) -> u8 {
        self.lives
    }

    /// Current level (1-based).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Bricks still standing.
    pub fn bricks_left(&self) -> u32 {
        self.bricks.count_ones()
    }

    /// `true` once all lives are spent.
    pub fn is_game_over(&self) -> bool {
        matches!(self.phase, Phase::GameOver)
    }

    fn next_rand(&mut self) -> u32 {
        self.rng = self.rng.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        self.rng >> 16
    }

    fn speed(&self) -> i32 {
        // Base 1.25 px/frame, +0.25 per level, capped at 3 px/frame.
        (20 + 4 * self.level as i32).min(48)
    }

    fn reset_ball(&mut self) {
        self.ball_x = ((W - BALL) / 2) << FP;
        self.ball_y = (H / 2) << FP;
        self.vel_x = 0;
        self.vel_y = 0;
    }

    fn serve(&mut self) {
        let dir = if self.next_rand() & 1 == 0 { -1 } else { 1 };
        self.vel_x = dir * (self.speed() / 2 + (self.next_rand() % 8) as i32);
        self.vel_y = -self.speed();
    }

    fn move_paddles(&mut self, input: InputWord) {
        for (i, px) in self.paddle_x.iter_mut().enumerate() {
            let player = Player(i as u8);
            if input.is_pressed(player, Button::Left) {
                *px -= PAD_SPEED;
            }
            if input.is_pressed(player, Button::Right) {
                *px += PAD_SPEED;
            }
            *px = (*px).clamp(0, (W - PAD_W) << FP);
        }
    }

    fn brick_at(col: usize, row: usize) -> u64 {
        1u64 << (row * BRICK_COLS + col)
    }

    fn step_ball(&mut self) {
        self.ball_x += self.vel_x;
        self.ball_y += self.vel_y;
        let max_x = (W - BALL) << FP;

        // Side and top walls.
        if self.ball_x < 0 {
            self.ball_x = -self.ball_x;
            self.vel_x = -self.vel_x;
            self.audio.tone(660, 1, 3_000);
        } else if self.ball_x > max_x {
            self.ball_x = 2 * max_x - self.ball_x;
            self.vel_x = -self.vel_x;
            self.audio.tone(660, 1, 3_000);
        }
        if self.ball_y < 0 {
            self.ball_y = -self.ball_y;
            self.vel_y = -self.vel_y;
            self.audio.tone(660, 1, 3_000);
        }

        // Bricks: test the ball's centre cell.
        let bx = (self.ball_x >> FP) + BALL / 2;
        let by = (self.ball_y >> FP) + BALL / 2;
        if by >= BRICK_TOP && by < BRICK_TOP + BRICK_ROWS as i32 * BRICK_H {
            let row = ((by - BRICK_TOP) / BRICK_H) as usize;
            let col = (bx / BRICK_W) as usize;
            if col < BRICK_COLS && self.bricks & Self::brick_at(col, row) != 0 {
                self.bricks &= !Self::brick_at(col, row);
                self.vel_y = -self.vel_y;
                self.score += 10 * (BRICK_ROWS as u32 - row as u32);
                self.audio.tone(880, 2, 4_000);
                if self.bricks == 0 {
                    self.level += 1;
                    self.bricks = full_wall();
                    self.reset_ball();
                    self.phase = Phase::Serving { countdown: 60 };
                    self.audio.tone(1320, 10, 5_000);
                    return;
                }
            }
        }

        // Paddles (only when falling).
        if self.vel_y > 0 {
            let ball_bottom = (self.ball_y >> FP) + BALL;
            if (PAD_Y..=PAD_Y + PAD_H + 2).contains(&ball_bottom) {
                for i in 0..2 {
                    let px = self.paddle_x[i] >> FP;
                    let bx = self.ball_x >> FP;
                    if bx + BALL >= px && bx <= px + PAD_W {
                        self.vel_y = -self.vel_y;
                        // Deflect by where the ball met the paddle.
                        let paddle_center = px + PAD_W / 2;
                        let ball_center = bx + BALL / 2;
                        self.vel_x += (ball_center - paddle_center) * 2;
                        self.vel_x = self.vel_x.clamp(-self.speed() * 2, self.speed() * 2);
                        self.ball_y = (PAD_Y - BALL) << FP;
                        self.audio.tone(440, 2, 4_000);
                        break;
                    }
                }
            }
        }

        // Bottom: shared life lost.
        if (self.ball_y >> FP) > H {
            self.lives = self.lives.saturating_sub(1);
            self.audio.tone(110, 12, 8_000);
            if self.lives == 0 {
                self.phase = Phase::GameOver;
            } else {
                self.reset_ball();
                self.phase = Phase::Serving { countdown: 45 };
            }
        }
    }

    fn draw(&mut self) {
        self.fb.clear(Color::BLACK);
        // HUD.
        self.fb.draw_number(4, 2, self.score, Color(7));
        self.fb
            .draw_number(W / 2 - 4, 2, self.level as u32, Color(8));
        for l in 0..self.lives {
            self.fb.fill_rect(W - 8 - l as i32 * 6, 2, 4, 4, Color(12));
        }
        // Bricks.
        for row in 0..BRICK_ROWS {
            for col in 0..BRICK_COLS {
                if self.bricks & Self::brick_at(col, row) != 0 {
                    let color = Color(9 + (row % 6) as u8);
                    self.fb.fill_rect(
                        col as i32 * BRICK_W + 1,
                        BRICK_TOP + row as i32 * BRICK_H + 1,
                        BRICK_W - 2,
                        BRICK_H - 2,
                        color,
                    );
                }
            }
        }
        // Paddles.
        self.fb
            .fill_rect(self.paddle_x[0] >> FP, PAD_Y, PAD_W, PAD_H, Color(9));
        self.fb
            .fill_rect(self.paddle_x[1] >> FP, PAD_Y, PAD_W, PAD_H, Color(10));
        // Ball.
        if !matches!(self.phase, Phase::GameOver) {
            self.fb
                .fill_rect(self.ball_x >> FP, self.ball_y >> FP, BALL, BALL, Color(15));
        } else {
            self.fb.fill_rect(W / 2 - 30, H / 2 - 2, 60, 4, Color(4));
        }
    }
}

fn full_wall() -> u64 {
    (1u64 << (BRICK_COLS * BRICK_ROWS)) - 1
}

impl Default for Breakout {
    fn default() -> Self {
        Breakout::new()
    }
}

impl Machine for Breakout {
    fn info(&self) -> MachineInfo {
        MachineInfo::new("Breakout", 2)
    }

    fn reset(&mut self) {
        *self = Breakout::new();
    }

    fn step_frame(&mut self, input: InputWord) {
        match self.phase {
            Phase::Serving { countdown } => {
                self.move_paddles(input);
                if countdown == 0 {
                    self.serve();
                    self.phase = Phase::Play;
                } else {
                    self.phase = Phase::Serving {
                        countdown: countdown - 1,
                    };
                }
            }
            Phase::Play => {
                self.move_paddles(input);
                self.step_ball();
            }
            Phase::GameOver => {
                if input.is_pressed(Player::ONE, Button::Start)
                    || input.is_pressed(Player::TWO, Button::Start)
                {
                    *self = Breakout::new();
                }
            }
        }
        self.draw();
        self.audio_frame = self.audio.render_frame(60).to_vec();
        self.frame += 1;
    }

    fn frame(&self) -> u64 {
        self.frame
    }

    fn framebuffer(&self) -> &FrameBuffer {
        &self.fb
    }

    fn audio_samples(&self) -> &[i16] {
        &self.audio_frame
    }

    fn state_hash(&self) -> u64 {
        let mut h = StateHasher::new();
        h.write(&self.save_state());
        h.finish()
    }

    fn save_state(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        self.save_state_into(&mut v);
        v
    }

    fn save_state_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(STATE_MAGIC);
        out.extend_from_slice(&self.frame.to_le_bytes());
        let (code, countdown) = match self.phase {
            Phase::Serving { countdown } => (0u8, countdown),
            Phase::Play => (1, 0),
            Phase::GameOver => (2, 0),
        };
        out.push(code);
        out.extend_from_slice(&countdown.to_le_bytes());
        for p in self.paddle_x {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for val in [self.ball_x, self.ball_y, self.vel_x, self.vel_y] {
            out.extend_from_slice(&val.to_le_bytes());
        }
        out.extend_from_slice(&self.bricks.to_le_bytes());
        out.extend_from_slice(&self.score.to_le_bytes());
        out.push(self.lives);
        out.push(self.level);
        out.extend_from_slice(&self.rng.to_le_bytes());
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        const LEN: usize = 4 + 8 + 1 + 2 + 8 + 16 + 8 + 4 + 1 + 1 + 4;
        if bytes.len() < LEN {
            return Err(StateError::Truncated {
                expected: LEN,
                actual: bytes.len(),
            });
        }
        if &bytes[..4] != STATE_MAGIC {
            return Err(StateError::BadMagic);
        }
        let mut p = 4;
        let mut take = |n: usize| {
            let s = &bytes[p..p + n];
            p += n;
            s
        };
        self.frame = u64::from_le_bytes(take(8).try_into().expect("len 8"));
        let code = take(1)[0];
        let countdown = u16::from_le_bytes(take(2).try_into().expect("len 2"));
        self.phase = match code {
            0 => Phase::Serving { countdown },
            1 => Phase::Play,
            _ => Phase::GameOver,
        };
        for px in &mut self.paddle_x {
            *px = i32::from_le_bytes(take(4).try_into().expect("len 4"));
        }
        self.ball_x = i32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.ball_y = i32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.vel_x = i32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.vel_y = i32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.bricks = u64::from_le_bytes(take(8).try_into().expect("len 8"));
        self.score = u32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.lives = take(1)[0];
        self.level = take(1)[0];
        self.rng = u32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.draw();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hold(player: Player, button: Button) -> InputWord {
        let mut w = InputWord::NONE;
        w.press(player, button);
        w
    }

    fn skip_serve(g: &mut Breakout) {
        while matches!(g.phase, Phase::Serving { .. }) {
            g.step_frame(InputWord::NONE);
        }
    }

    #[test]
    fn paddles_move_independently_and_clamp() {
        let mut g = Breakout::new();
        let both = {
            let mut w = hold(Player::ONE, Button::Left);
            w.press(Player::TWO, Button::Right);
            w
        };
        for _ in 0..200 {
            g.step_frame(both);
        }
        assert_eq!(g.paddle_x[0], 0);
        assert_eq!(g.paddle_x[1], (W - PAD_W) << FP);
    }

    #[test]
    fn serve_launches_the_ball_upward() {
        let mut g = Breakout::new();
        skip_serve(&mut g);
        assert!(g.vel_y < 0, "ball must launch toward the bricks");
        assert_ne!(g.vel_x, 0);
    }

    #[test]
    fn ball_eventually_breaks_bricks() {
        let mut g = Breakout::new();
        let start = g.bricks_left();
        for _ in 0..1200 {
            g.step_frame(InputWord::NONE);
            if g.bricks_left() < start {
                break;
            }
        }
        assert!(g.bricks_left() < start, "no brick broken in 20 seconds");
        assert!(g.score() > 0);
    }

    #[test]
    fn undefended_ball_costs_shared_lives_until_game_over() {
        let mut g = Breakout::new();
        // Park both paddles hard left so most returns are missed.
        let left = {
            let mut w = hold(Player::ONE, Button::Left);
            w.press(Player::TWO, Button::Left);
            w
        };
        for _ in 0..60 * 120 {
            g.step_frame(left);
            if g.is_game_over() {
                break;
            }
        }
        assert!(g.is_game_over(), "lives never ran out");
        assert_eq!(g.lives(), 0);
        // Start restarts.
        g.step_frame(hold(Player::ONE, Button::Start));
        assert!(!g.is_game_over());
        assert_eq!(g.lives(), START_LIVES);
    }

    #[test]
    fn clearing_the_wall_advances_the_level() {
        let mut g = Breakout::new();
        skip_serve(&mut g);
        // Cheat the wall down to one brick and aim the ball straight at it.
        g.bricks = Breakout::brick_at(5, 4);
        g.ball_x = (5 * BRICK_W + BRICK_W / 2) << FP;
        g.ball_y = 80 << FP;
        g.vel_x = 0;
        g.vel_y = -20;
        for _ in 0..600 {
            g.step_frame(InputWord::NONE);
            if g.level() == 2 {
                break;
            }
        }
        assert_eq!(g.level(), 2, "level should advance");
        assert_eq!(g.bricks_left(), (BRICK_COLS * BRICK_ROWS) as u32);
    }

    #[test]
    fn deterministic_replay() {
        let script: Vec<InputWord> = (0..2_000u32)
            .map(|i| InputWord((i.wrapping_mul(0x9E37_79B9) >> 10) & 0x0F0F))
            .collect();
        let run = || {
            let mut g = Breakout::new();
            for &w in &script {
                g.step_frame(w);
            }
            (g.state_hash(), g.score(), g.lives())
        };
        assert_eq!(run(), run());
    }

    // Snapshot roundtrip coverage lives in the generic conformance harness
    // (tests/properties.rs, every_machine_snapshot_roundtrips_mid_game).

    #[test]
    fn load_rejects_garbage() {
        let mut g = Breakout::new();
        assert!(matches!(
            g.load_state(&[0; 8]),
            Err(StateError::Truncated { .. })
        ));
        let mut snap = g.save_state();
        snap[2] = b'!';
        assert!(matches!(g.load_state(&snap), Err(StateError::BadMagic)));
    }

    #[test]
    fn bricks_render_and_disappear() {
        let mut g = Breakout::new();
        g.step_frame(InputWord::NONE);
        // A brick pixel inside the wall region.
        let with_bricks = g.framebuffer().pixel(8, BRICK_TOP + 3);
        assert_ne!(with_bricks, Color::BLACK);
        g.bricks = 0;
        g.bricks |= Breakout::brick_at(9, 4); // avoid instant level-up
        g.step_frame(InputWord::NONE);
        assert_eq!(g.framebuffer().pixel(8, BRICK_TOP + 3), Color::BLACK);
    }
}
