//! Legacy-style arcade games for coplay.
//!
//! The paper's approach is *game transparent*: any deterministic game VM can
//! be shared over the network unmodified. This crate supplies the games the
//! reproduction plays:
//!
//! * [`Pong`] — the canonical two-player TV game.
//! * [`Breakout`] — cooperative brick-breaking with two paddles.
//! * [`Brawler`] — a versus fighting game, the Street Fighter II stand-in
//!   used by the paper's evaluation testbed.
//! * [`Shooter`] — a cooperative fixed shooter (both players on one side).
//! * [`rom_pong`] / [`rom_race`] — games written in coplay console
//!   *assembly*, running on the emulated CPU of `coplay-vm` to exercise the
//!   full emulator path.
//!
//! All games implement [`coplay_vm::Machine`] and honour its determinism
//! contract: integer-only physics, seeded randomness captured in save
//! states, bit-identical replicas under identical input sequences.
//!
//! # Examples
//!
//! ```
//! use coplay_games::{GameId, catalog};
//! use coplay_vm::{InputWord, Machine};
//!
//! for id in catalog() {
//!     let mut game = id.create();
//!     game.step_frame(InputWord::NONE);
//!     assert_eq!(game.frame(), 1, "{id:?}");
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod brawler;
mod breakout;
mod pong;
mod rom_games;
mod shooter;

pub use brawler::Brawler;
pub use breakout::Breakout;
pub use pong::Pong;
pub use rom_games::{rom_pong, rom_pong_console, rom_race, rom_race_console};
pub use shooter::Shooter;

use coplay_vm::Machine;

/// Identifies one of the bundled games.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GameId {
    /// Native Pong.
    Pong,
    /// Native cooperative Breakout.
    Breakout,
    /// Native fighting game.
    Brawler,
    /// Native cooperative shooter.
    Shooter,
    /// Assembly Pong on the emulated console.
    RomPong,
    /// Assembly button-race on the emulated console.
    RomRace,
}

impl GameId {
    /// Instantiates a fresh machine for this game.
    pub fn create(self) -> Box<dyn Machine> {
        match self {
            GameId::Pong => Box::new(Pong::new()),
            GameId::Breakout => Box::new(Breakout::new()),
            GameId::Brawler => Box::new(Brawler::new()),
            GameId::Shooter => Box::new(Shooter::new()),
            GameId::RomPong => Box::new(rom_pong_console()),
            GameId::RomRace => Box::new(rom_race_console()),
        }
    }

    /// The game's display name.
    pub fn name(self) -> &'static str {
        match self {
            GameId::Pong => "Pong",
            GameId::Breakout => "Breakout",
            GameId::Brawler => "Brawler",
            GameId::Shooter => "Shooter",
            GameId::RomPong => "ROM Pong",
            GameId::RomRace => "Button Race",
        }
    }

    /// Parses a name as produced by [`GameId::name`] (case-insensitive,
    /// spaces optional).
    pub fn from_name(name: &str) -> Option<GameId> {
        let n: String = name.to_ascii_lowercase().replace([' ', '-', '_'], "");
        Some(match n.as_str() {
            "pong" => GameId::Pong,
            "breakout" => GameId::Breakout,
            "brawler" => GameId::Brawler,
            "shooter" => GameId::Shooter,
            "rompong" => GameId::RomPong,
            "buttonrace" | "romrace" => GameId::RomRace,
            _ => return None,
        })
    }
}

impl std::fmt::Display for GameId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every bundled game.
pub fn catalog() -> Vec<GameId> {
    vec![
        GameId::Pong,
        GameId::Breakout,
        GameId::Brawler,
        GameId::Shooter,
        GameId::RomPong,
        GameId::RomRace,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_vm::InputWord;

    #[test]
    fn catalog_creates_every_game() {
        for id in catalog() {
            let mut m = id.create();
            for _ in 0..10 {
                m.step_frame(InputWord::NONE);
            }
            assert_eq!(m.frame(), 10, "{id}");
        }
    }

    #[test]
    fn every_game_is_deterministic_from_catalog() {
        for id in catalog() {
            let script: Vec<InputWord> = (0..120u32)
                .map(|i| InputWord((i.wrapping_mul(0x9E37_79B9) >> 13) & 0x3F3F))
                .collect();
            let mut a = id.create();
            let mut b = id.create();
            for &w in &script {
                a.step_frame(w);
                b.step_frame(w);
            }
            assert_eq!(a.state_hash(), b.state_hash(), "{id}");
        }
    }

    #[test]
    fn every_game_save_load_roundtrips() {
        for id in catalog() {
            let mut a = id.create();
            for i in 0..60u32 {
                a.step_frame(InputWord(i & 0x0F));
            }
            let snap = a.save_state();
            let mut b = id.create();
            b.load_state(&snap).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert_eq!(a.state_hash(), b.state_hash(), "{id}");
        }
    }

    #[test]
    fn every_game_save_state_into_matches_save_state() {
        for id in catalog() {
            let mut m = id.create();
            let mut buf = Vec::new();
            for i in 0..90u32 {
                m.step_frame(InputWord((i.wrapping_mul(0x9E37_79B9) >> 11) & 0x3F3F));
                // The buffer is reused across frames; every capture must
                // still be byte-identical to a fresh `save_state`.
                m.save_state_into(&mut buf);
                assert_eq!(buf, m.save_state(), "{id} frame {i}");
            }
        }
    }

    #[test]
    fn name_roundtrip() {
        for id in catalog() {
            assert_eq!(GameId::from_name(id.name()), Some(id), "{id}");
        }
        assert_eq!(GameId::from_name("nope"), None);
    }
}
