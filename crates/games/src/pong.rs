//! Pong: the canonical two-player TV game (Tennis for Two's grandchild, the
//! very lineage the paper's introduction opens with).
//!
//! Pure integer physics (1/16-pixel fixed point), deterministic serves from
//! an LCG captured in the save state, first to 11 points.

use coplay_vm::{
    AudioChannel, Button, Color, FrameBuffer, InputWord, Machine, MachineInfo, Player, StateError,
    StateHasher,
};

const W: i32 = 160;
const H: i32 = 120;
const PAD_W: i32 = 3;
const PAD_H: i32 = 14;
const P0_X: i32 = 4;
const P1_X: i32 = W - 4 - PAD_W;
const BALL: i32 = 2;
/// Fixed-point shift: positions/velocities are in 1/16 pixel.
const FP: i32 = 4;
const PADDLE_SPEED: i32 = 2 << FP;
const WIN_SCORE: u8 = 11;

const STATE_MAGIC: &[u8; 4] = b"PONG";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Ball frozen for a short countdown, then served toward `toward`.
    Serving {
        countdown: u16,
        toward: u8,
    },
    Rally,
    GameOver {
        winner: u8,
    },
}

/// The classic two-paddle ball game as a deterministic [`Machine`].
///
/// Player 1 (left) uses `Up`/`Down`; player 2 (right) likewise. `Start`
/// restarts after game over.
///
/// # Examples
///
/// ```
/// use coplay_games::Pong;
/// use coplay_vm::{Button, InputWord, Machine, Player};
///
/// let mut game = Pong::new();
/// let mut input = InputWord::NONE;
/// input.press(Player::ONE, Button::Up);
/// for _ in 0..60 {
///     game.step_frame(input);
/// }
/// assert_eq!(game.frame(), 60);
/// ```
#[derive(Debug, Clone)]
pub struct Pong {
    frame: u64,
    phase: Phase,
    paddle_y: [i32; 2], // fixed point, top edge
    ball_x: i32,        // fixed point
    ball_y: i32,
    vel_x: i32,
    vel_y: i32,
    score: [u8; 2],
    rng: u32,
    fb: FrameBuffer,
    audio: AudioChannel,
    audio_frame: Vec<i16>,
}

impl Pong {
    /// Creates a game at the opening serve.
    pub fn new() -> Pong {
        Pong::with_seed(0x50_4F_4E_47)
    }

    /// Creates a game whose serve randomness starts from `seed`.
    pub fn with_seed(seed: u32) -> Pong {
        let mut g = Pong {
            frame: 0,
            phase: Phase::Serving {
                countdown: 30,
                toward: 0,
            },
            paddle_y: [((H - PAD_H) / 2) << FP; 2],
            ball_x: 0,
            ball_y: 0,
            vel_x: 0,
            vel_y: 0,
            score: [0, 0],
            rng: seed,
            fb: FrameBuffer::standard(),
            audio: AudioChannel::new(),
            audio_frame: Vec::new(),
        };
        g.center_ball();
        g.draw();
        g
    }

    /// Current score as `(left, right)`.
    pub fn score(&self) -> (u8, u8) {
        (self.score[0], self.score[1])
    }

    /// The winning site (0 or 1) once the game has ended.
    pub fn winner(&self) -> Option<u8> {
        match self.phase {
            Phase::GameOver { winner } => Some(winner),
            _ => None,
        }
    }

    fn center_ball(&mut self) {
        self.ball_x = ((W - BALL) / 2) << FP;
        self.ball_y = ((H - BALL) / 2) << FP;
        self.vel_x = 0;
        self.vel_y = 0;
    }

    fn next_rand(&mut self) -> u32 {
        self.rng = self.rng.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        self.rng >> 16
    }

    fn serve(&mut self, toward: u8) {
        let dir = if toward == 0 { -1 } else { 1 };
        self.vel_x = dir * (24 + (self.next_rand() % 8) as i32); // 1.5–2 px/frame
        let vy = (self.next_rand() % 33) as i32 - 16; // [-1, +1] px/frame
        self.vel_y = vy;
    }

    fn move_paddle(&mut self, which: usize, input: InputWord) {
        let player = Player(which as u8);
        let mut y = self.paddle_y[which];
        if input.is_pressed(player, Button::Up) {
            y -= PADDLE_SPEED;
        }
        if input.is_pressed(player, Button::Down) {
            y += PADDLE_SPEED;
        }
        self.paddle_y[which] = y.clamp(0, (H - PAD_H) << FP);
    }

    fn step_ball(&mut self) {
        self.ball_x += self.vel_x;
        self.ball_y += self.vel_y;

        // Walls.
        let max_y = (H - BALL) << FP;
        if self.ball_y < 0 {
            self.ball_y = -self.ball_y;
            self.vel_y = -self.vel_y;
            self.audio.tone(880, 2, 4_000);
        } else if self.ball_y > max_y {
            self.ball_y = 2 * max_y - self.ball_y;
            self.vel_y = -self.vel_y;
            self.audio.tone(880, 2, 4_000);
        }

        // Paddles: only test when moving toward one.
        let bx = self.ball_x >> FP;
        let by = self.ball_y >> FP;
        if self.vel_x < 0 && bx <= P0_X + PAD_W && bx + BALL >= P0_X {
            self.try_bounce(0, by);
        } else if self.vel_x > 0 && bx + BALL >= P1_X && bx <= P1_X + PAD_W {
            self.try_bounce(1, by);
        }

        // Goals.
        if (self.ball_x >> FP) + BALL < 0 {
            self.point_for(1);
        } else if (self.ball_x >> FP) > W {
            self.point_for(0);
        }
    }

    fn try_bounce(&mut self, which: usize, ball_top: i32) {
        let py = self.paddle_y[which] >> FP;
        if ball_top + BALL < py || ball_top > py + PAD_H {
            return;
        }
        self.vel_x = -self.vel_x;
        // Speed up slightly every return, capped at 4 px/frame.
        self.vel_x += self.vel_x.signum() * 2;
        self.vel_x = self.vel_x.clamp(-(4 << FP), 4 << FP);
        // English: hitting near an edge of the paddle deflects the ball.
        let paddle_center = py + PAD_H / 2;
        let ball_center = ball_top + BALL / 2;
        self.vel_y += (ball_center - paddle_center) * 3;
        self.vel_y = self.vel_y.clamp(-(3 << FP), 3 << FP);
        // Push the ball out of the paddle to avoid double hits.
        if which == 0 {
            self.ball_x = (P0_X + PAD_W) << FP;
        } else {
            self.ball_x = (P1_X - BALL) << FP;
        }
        self.audio.tone(440, 2, 4_000);
    }

    fn point_for(&mut self, which: usize) {
        self.score[which] += 1;
        self.audio.tone(220, 6, 4_000);
        if self.score[which] >= WIN_SCORE {
            self.phase = Phase::GameOver {
                winner: which as u8,
            };
        } else {
            self.center_ball();
            self.phase = Phase::Serving {
                countdown: 45,
                toward: 1 - which as u8, // loser receives
            };
        }
    }

    fn draw(&mut self) {
        self.fb.clear(Color::BLACK);
        // Center net.
        let mut y = 2;
        while y < H {
            self.fb.fill_rect(W / 2 - 1, y, 1, 4, Color(8));
            y += 8;
        }
        // Scores.
        self.fb
            .draw_number(W / 2 - 20, 4, self.score[0] as u32, Color(7));
        self.fb
            .draw_number(W / 2 + 12, 4, self.score[1] as u32, Color(7));
        // Paddles.
        self.fb
            .fill_rect(P0_X, self.paddle_y[0] >> FP, PAD_W, PAD_H, Color(15));
        self.fb
            .fill_rect(P1_X, self.paddle_y[1] >> FP, PAD_W, PAD_H, Color(15));
        // Ball.
        if !matches!(self.phase, Phase::GameOver { .. }) {
            self.fb
                .fill_rect(self.ball_x >> FP, self.ball_y >> FP, BALL, BALL, Color(14));
        } else if let Phase::GameOver { winner } = self.phase {
            // Winner banner: a bright bar on the winner's half.
            let x = if winner == 0 { 10 } else { W / 2 + 10 };
            self.fb.fill_rect(x, H / 2 - 2, 60, 4, Color(10));
        }
    }
}

impl Default for Pong {
    fn default() -> Self {
        Pong::new()
    }
}

impl Machine for Pong {
    fn info(&self) -> MachineInfo {
        MachineInfo::new("Pong", 2)
    }

    fn reset(&mut self) {
        *self = Pong::with_seed(self.rng_seed_for_reset());
    }

    fn step_frame(&mut self, input: InputWord) {
        self.move_paddle(0, input);
        self.move_paddle(1, input);
        match self.phase {
            Phase::Serving { countdown, toward } => {
                if countdown == 0 {
                    self.serve(toward);
                    self.phase = Phase::Rally;
                } else {
                    self.phase = Phase::Serving {
                        countdown: countdown - 1,
                        toward,
                    };
                }
            }
            Phase::Rally => self.step_ball(),
            Phase::GameOver { .. } => {
                if input.is_pressed(Player::ONE, Button::Start)
                    || input.is_pressed(Player::TWO, Button::Start)
                {
                    let seed = self.rng;
                    *self = Pong::with_seed(seed);
                }
            }
        }
        self.draw();
        self.audio_frame = self.audio.render_frame(60).to_vec();
        self.frame += 1;
    }

    fn frame(&self) -> u64 {
        self.frame
    }

    fn framebuffer(&self) -> &FrameBuffer {
        &self.fb
    }

    fn audio_samples(&self) -> &[i16] {
        &self.audio_frame
    }

    fn state_hash(&self) -> u64 {
        let mut h = StateHasher::new();
        h.write_u64(self.frame);
        h.write_i32(self.phase_code());
        if let Phase::Serving { countdown, toward } = self.phase {
            h.write_u16(countdown);
            h.write(&[toward]);
        }
        if let Phase::GameOver { winner } = self.phase {
            h.write(&[winner]);
        }
        h.write_i32(self.paddle_y[0]);
        h.write_i32(self.paddle_y[1]);
        h.write_i32(self.ball_x);
        h.write_i32(self.ball_y);
        h.write_i32(self.vel_x);
        h.write_i32(self.vel_y);
        h.write(&self.score);
        h.write(&self.rng.to_le_bytes());
        h.finish()
    }

    fn save_state(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        self.save_state_into(&mut v);
        v
    }

    fn save_state_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(STATE_MAGIC);
        out.extend_from_slice(&self.frame.to_le_bytes());
        out.extend_from_slice(&self.phase_code().to_le_bytes());
        let (countdown, toward, winner) = match self.phase {
            Phase::Serving { countdown, toward } => (countdown, toward, 0),
            Phase::Rally => (0, 0, 0),
            Phase::GameOver { winner } => (0, 0, winner),
        };
        out.extend_from_slice(&countdown.to_le_bytes());
        out.push(toward);
        out.push(winner);
        for p in self.paddle_y {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for val in [self.ball_x, self.ball_y, self.vel_x, self.vel_y] {
            out.extend_from_slice(&val.to_le_bytes());
        }
        out.extend_from_slice(&self.score);
        out.extend_from_slice(&self.rng.to_le_bytes());
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        const LEN: usize = 4 + 8 + 4 + 2 + 1 + 1 + 8 + 16 + 2 + 4;
        if bytes.len() < LEN {
            return Err(StateError::Truncated {
                expected: LEN,
                actual: bytes.len(),
            });
        }
        if &bytes[..4] != STATE_MAGIC {
            return Err(StateError::BadMagic);
        }
        let mut p = 4;
        let mut take = |n: usize| {
            let s = &bytes[p..p + n];
            p += n;
            s
        };
        self.frame = u64::from_le_bytes(take(8).try_into().expect("len 8"));
        let phase_code = i32::from_le_bytes(take(4).try_into().expect("len 4"));
        let countdown = u16::from_le_bytes(take(2).try_into().expect("len 2"));
        let toward = take(1)[0];
        let winner = take(1)[0];
        self.phase = match phase_code {
            0 => Phase::Serving { countdown, toward },
            1 => Phase::Rally,
            _ => Phase::GameOver { winner },
        };
        for i in 0..2 {
            self.paddle_y[i] = i32::from_le_bytes(take(4).try_into().expect("len 4"));
        }
        self.ball_x = i32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.ball_y = i32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.vel_x = i32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.vel_y = i32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.score.copy_from_slice(take(2));
        self.rng = u32::from_le_bytes(take(4).try_into().expect("len 4"));
        self.draw();
        Ok(())
    }
}

impl Pong {
    fn phase_code(&self) -> i32 {
        match self.phase {
            Phase::Serving { .. } => 0,
            Phase::Rally => 1,
            Phase::GameOver { .. } => 2,
        }
    }

    fn rng_seed_for_reset(&self) -> u32 {
        0x50_4F_4E_47
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hold(player: Player, button: Button) -> InputWord {
        let mut w = InputWord::NONE;
        w.press(player, button);
        w
    }

    #[test]
    fn paddles_move_and_clamp() {
        let mut g = Pong::new();
        let up = hold(Player::ONE, Button::Up);
        for _ in 0..200 {
            g.step_frame(up);
        }
        assert_eq!(g.paddle_y[0], 0, "paddle clamps at top");
        let down = hold(Player::ONE, Button::Down);
        for _ in 0..200 {
            g.step_frame(down);
        }
        assert_eq!(g.paddle_y[0], (H - PAD_H) << FP, "paddle clamps at bottom");
    }

    #[test]
    fn ball_serves_after_countdown() {
        let mut g = Pong::new();
        for _ in 0..31 {
            g.step_frame(InputWord::NONE);
        }
        assert!(matches!(g.phase, Phase::Rally));
        assert_ne!(g.vel_x, 0);
    }

    #[test]
    fn undefended_ball_eventually_scores() {
        let mut g = Pong::new();
        // Park both paddles at the top so the ball can slip past.
        let both_up = {
            let mut w = hold(Player::ONE, Button::Up);
            w.press(Player::TWO, Button::Up);
            w
        };
        let mut scored = false;
        for _ in 0..3_000 {
            g.step_frame(both_up);
            if g.score() != (0, 0) {
                scored = true;
                break;
            }
        }
        assert!(scored, "ball never scored in 3000 frames");
    }

    #[test]
    fn game_ends_at_win_score() {
        let mut g = Pong::new();
        let both_up = {
            let mut w = hold(Player::ONE, Button::Up);
            w.press(Player::TWO, Button::Up);
            w
        };
        for _ in 0..120_000 {
            g.step_frame(both_up);
            if g.winner().is_some() {
                break;
            }
        }
        let w = g.winner().expect("game should finish");
        assert!(g.score.iter().any(|&s| s >= WIN_SCORE));
        assert!(w == 0 || w == 1);
        // Start restarts.
        g.step_frame(hold(Player::ONE, Button::Start));
        assert_eq!(g.score(), (0, 0));
    }

    #[test]
    fn deterministic_replay() {
        let script: Vec<InputWord> = (0..600u32)
            .map(|i| InputWord((i.wrapping_mul(2_654_435_761) >> 7) & 0x3F3F))
            .collect();
        let run = || {
            let mut g = Pong::new();
            for &w in &script {
                g.step_frame(w);
            }
            g.state_hash()
        };
        assert_eq!(run(), run());
    }

    // Snapshot roundtrip coverage lives in the generic conformance harness
    // (tests/properties.rs, every_machine_snapshot_roundtrips_mid_game).

    #[test]
    fn load_rejects_garbage() {
        let mut g = Pong::new();
        assert!(matches!(
            g.load_state(&[0; 4]),
            Err(StateError::Truncated { .. })
        ));
        let mut snap = g.save_state();
        snap[0] = b'X';
        assert!(matches!(g.load_state(&snap), Err(StateError::BadMagic)));
    }

    #[test]
    fn framebuffer_shows_paddles() {
        let g = Pong::new();
        let fb = g.framebuffer();
        let py = (g.paddle_y[0] >> FP) + PAD_H / 2;
        assert_eq!(fb.pixel(P0_X + 1, py), Color(15));
        assert_eq!(fb.pixel(P1_X + 1, py), Color(15));
    }

    #[test]
    fn bounce_makes_sound() {
        let mut g = Pong::new();
        let mut heard = false;
        for _ in 0..2_000 {
            g.step_frame(InputWord::NONE);
            if g.audio_samples().iter().any(|&s| s != 0) {
                heard = true;
                break;
            }
        }
        assert!(heard, "no bounce audio in 2000 frames");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut g = Pong::new();
        let h0 = g.state_hash();
        for _ in 0..100 {
            g.step_frame(InputWord(3));
        }
        g.reset();
        assert_eq!(g.state_hash(), h0);
    }
}
