//! Games that ship as assembly source and run on the emulated console.
//!
//! These exercise the *emulator* path end-to-end — assembler → ROM → CPU →
//! memory-mapped devices — the way the paper's MAME games do, whereas the
//! native games in this crate implement [`coplay_vm::Machine`] directly.

use coplay_vm::{assemble, Console, Rom};

/// Pong, written in coplay console assembly.
///
/// Same rules as the native [`Pong`](crate::Pong) but implemented as a
/// cartridge: paddle input from the joypad ports, integer ball physics,
/// first to 9 points (single digit scoreboard).
///
/// # Examples
///
/// ```
/// use coplay_games::rom_pong;
/// use coplay_vm::{Console, InputWord, Machine};
///
/// let mut console = Console::new(rom_pong());
/// console.step_frame(InputWord::NONE);
/// assert_eq!(console.frame(), 1);
/// ```
pub fn rom_pong() -> Rom {
    assemble(ROM_PONG_SRC).expect("rom_pong source must assemble")
}

/// A [`Console`] with [`rom_pong`] inserted.
pub fn rom_pong_console() -> Console {
    Console::new(rom_pong())
}

/// Button-mash racing, written in coplay console assembly.
///
/// Each tap of `A` advances that player's bar; first to the right edge
/// wins. Tiny, but input-sensitive from the very first frame, which makes
/// it a good smoke test for lockstep input delivery.
pub fn rom_race() -> Rom {
    assemble(ROM_RACE_SRC).expect("rom_race source must assemble")
}

/// A [`Console`] with [`rom_race`] inserted.
pub fn rom_race_console() -> Console {
    Console::new(rom_race())
}

const ROM_PONG_SRC: &str = r#"
.title "ROM Pong"
.players 2
.seed 0x1234

; --- RAM layout ---------------------------------------------------------
.equ P0Y,   0x8000     ; paddle 0 top y
.equ P1Y,   0x8002     ; paddle 1 top y
.equ BALLX, 0x8004
.equ BALLY, 0x8006
.equ VELX,  0x8008     ; two's complement
.equ VELY,  0x800A
.equ SCO0,  0x800C
.equ SCO1,  0x800E

; --- constants ----------------------------------------------------------
.equ PADH, 14
.equ PADSPD, 2
.equ MAXPY, 106        ; 120 - PADH
.equ MAXBY, 118        ; 120 - ball height

init:
    ldi r0, 53
    ldi r1, P0Y
    stw [r1], r0
    ldi r1, P1Y
    stw [r1], r0
    call serve_left

frame:
    in r0, 0            ; joypads: P1 low byte, P2 high byte

    ; ---- paddle 0 ----
    ldi r3, P0Y
    mov r1, r0
    ldi r2, 1           ; Up bit
    and r1, r2
    cmpi r1, 0
    jz p0_down
    ldw r4, [r3]
    cmpi r4, PADSPD
    jlt p0_down
    subi r4, PADSPD
    stw [r3], r4
p0_down:
    mov r1, r0
    ldi r2, 2           ; Down bit
    and r1, r2
    cmpi r1, 0
    jz p1_input
    ldw r4, [r3]
    cmpi r4, MAXPY
    jge p1_input
    addi r4, PADSPD
    stw [r3], r4

p1_input:
    mov r5, r0
    shri r5, 8          ; P2 byte
    ldi r3, P1Y
    mov r1, r5
    ldi r2, 1
    and r1, r2
    cmpi r1, 0
    jz p1_down
    ldw r4, [r3]
    cmpi r4, PADSPD
    jlt p1_down
    subi r4, PADSPD
    stw [r3], r4
p1_down:
    mov r1, r5
    ldi r2, 2
    and r1, r2
    cmpi r1, 0
    jz move_ball
    ldw r4, [r3]
    cmpi r4, MAXPY
    jge move_ball
    addi r4, PADSPD
    stw [r3], r4

move_ball:
    ldi r3, BALLX
    ldw r1, [r3]
    ldi r3, VELX
    ldw r2, [r3]
    add r1, r2
    ldi r3, BALLX
    stw [r3], r1

    ldi r3, BALLY
    ldw r1, [r3]
    ldi r3, VELY
    ldw r2, [r3]
    add r1, r2

    ; top wall
    cmpi r1, 0
    jge check_bottom
    ldi r1, 0
    call flip_vely
check_bottom:
    cmpi r1, MAXBY
    jlt store_bally
    ldi r1, MAXBY
    call flip_vely
store_bally:
    ldi r3, BALLY
    stw [r3], r1

    ; ---- paddle collisions ----
    ldi r3, VELX
    ldw r2, [r3]
    cmpi r2, 0
    jlt check_left_paddle
    jmp check_right_paddle

check_left_paddle:
    ldi r3, BALLX
    ldw r1, [r3]
    cmpi r1, 7          ; paddle front at x=7 (x=4 w=3)
    jge after_paddles
    cmpi r1, 0
    jlt score_p1        ; passed the paddle entirely
    ; y overlap: P0Y-2 <= bally <= P0Y+PADH
    ldi r3, BALLY
    ldw r1, [r3]
    ldi r3, P0Y
    ldw r4, [r3]
    subi r4, 2
    cmp r1, r4
    jlt after_paddles
    addi r4, 16         ; PADH + 2
    cmp r1, r4
    jge after_paddles
    call flip_velx
    ldi r1, 8
    ldi r3, BALLX
    stw [r3], r1
    call english
    jmp after_paddles

check_right_paddle:
    ldi r3, BALLX
    ldw r1, [r3]
    cmpi r1, 151        ; paddle front at 153, ball 2 wide
    jlt after_paddles
    cmpi r1, 159
    jge score_p0
    ldi r3, BALLY
    ldw r1, [r3]
    ldi r3, P1Y
    ldw r4, [r3]
    subi r4, 2
    cmp r1, r4
    jlt after_paddles
    addi r4, 16
    cmp r1, r4
    jge after_paddles
    call flip_velx
    ldi r1, 149
    ldi r3, BALLX
    stw [r3], r1
    call english

after_paddles:
    jmp draw

score_p0:
    ldi r3, SCO0
    ldw r1, [r3]
    addi r1, 1
    stw [r3], r1
    ldi r1, 220
    ldi r2, 6
    ldi r3, 4000
    sys 3
    call serve_left
    jmp draw

score_p1:
    ldi r3, SCO1
    ldw r1, [r3]
    addi r1, 1
    stw [r3], r1
    ldi r1, 220
    ldi r2, 6
    ldi r3, 4000
    sys 3
    call serve_right
    jmp draw

; ---- drawing -----------------------------------------------------------
draw:
    ldi r1, 0
    sys 0               ; cls

    ; left paddle
    ldi r1, 4
    ldi r3, P0Y
    ldw r2, [r3]
    ldi r3, 3
    ldi r4, PADH
    ldi r5, 15
    sys 2

    ; right paddle
    ldi r1, 153
    ldi r3, P1Y
    ldw r2, [r3]
    ldi r3, 3
    ldi r4, PADH
    ldi r5, 15
    sys 2

    ; ball
    ldi r3, BALLX
    ldw r1, [r3]
    ldi r3, BALLY
    ldw r2, [r3]
    ldi r3, 2
    ldi r4, 2
    ldi r5, 14
    sys 2

    ; scores
    ldi r1, 60
    ldi r2, 4
    ldi r3, SCO0
    ldw r3, [r3]
    ldi r4, 7
    sys 4
    ldi r1, 92
    ldi r2, 4
    ldi r3, SCO1
    ldw r3, [r3]
    ldi r4, 7
    sys 4

    yield
    jmp frame

; ---- subroutines -------------------------------------------------------
flip_vely:
    ldi r3, VELY
    ldw r2, [r3]
    neg r2
    stw [r3], r2
    push r1
    ldi r1, 880
    ldi r2, 2
    ldi r3, 3000
    sys 3
    pop r1
    ret

flip_velx:
    ldi r3, VELX
    ldw r2, [r3]
    neg r2
    stw [r3], r2
    ldi r1, 440
    ldi r2, 2
    ldi r3, 3000
    sys 3
    ret

; randomize vertical english a little after a paddle hit
english:
    rnd r1
    ldi r2, 3
    modu r1, r2
    subi r1, 1          ; -1, 0, +1
    ldi r3, VELY
    ldw r2, [r3]
    add r2, r1
    ; clamp to [-2, 2]
    cmpi r2, -2
    jge english_hi
    ldi r2, -2
english_hi:
    cmpi r2, 3
    jlt english_store
    ldi r2, 2
english_store:
    stw [r3], r2
    ret

serve_left:
    call center_ball
    ldi r1, -1
    ldi r3, VELX
    stw [r3], r1
    ret

serve_right:
    call center_ball
    ldi r1, 1
    ldi r3, VELX
    stw [r3], r1
    ret

center_ball:
    ldi r1, 79
    ldi r3, BALLX
    stw [r3], r1
    ldi r1, 59
    ldi r3, BALLY
    stw [r3], r1
    rnd r1
    ldi r2, 3
    modu r1, r2
    subi r1, 1
    ldi r3, VELY
    stw [r3], r1
    ret
"#;

const ROM_RACE_SRC: &str = r#"
.title "Button Race"
.players 2
.seed 7

.equ X0,   0x8000      ; player 1 progress
.equ X1,   0x8002      ; player 2 progress
.equ PREV, 0x8004      ; previous frame's buttons (edge detection)
.equ WON,  0x8006      ; 0 = racing, 1/2 = winner

init:
    ldi r0, 0
    ldi r1, X0
    stw [r1], r0
    ldi r1, X1
    stw [r1], r0
    ldi r1, PREV
    stw [r1], r0
    ldi r1, WON
    stw [r1], r0

frame:
    ldi r1, WON
    ldw r1, [r1]
    cmpi r1, 0
    jnz draw            ; freeze once won

    in r0, 0
    ldi r1, PREV
    ldw r2, [r1]        ; prev buttons
    stw [r1], r0        ; remember current

    ; rising edge of P1 A (bit 4)
    mov r3, r0
    ldi r4, 16
    and r3, r4
    cmpi r3, 0
    jz p2_tap
    mov r3, r2
    and r3, r4
    cmpi r3, 0
    jnz p2_tap          ; was already held
    ldi r3, X0
    ldw r4, [r3]
    addi r4, 2
    stw [r3], r4

p2_tap:
    ; rising edge of P2 A (bit 12)
    mov r3, r0
    ldi r4, 0x1000
    and r3, r4
    cmpi r3, 0
    jz check_win
    mov r3, r2
    and r3, r4
    cmpi r3, 0
    jnz check_win
    ldi r3, X1
    ldw r4, [r3]
    addi r4, 2
    stw [r3], r4

check_win:
    ldi r3, X0
    ldw r1, [r3]
    cmpi r1, 150
    jlt check_win2
    ldi r1, 1
    ldi r3, WON
    stw [r3], r1
    ldi r1, 660
    ldi r2, 20
    ldi r3, 6000
    sys 3
check_win2:
    ldi r3, X1
    ldw r1, [r3]
    cmpi r1, 150
    jlt draw
    ldi r1, 2
    ldi r3, WON
    stw [r3], r1
    ldi r1, 660
    ldi r2, 20
    ldi r3, 6000
    sys 3

draw:
    ldi r1, 0
    sys 0

    ; finish line
    ldi r1, 152
    ldi r2, 0
    ldi r3, 1
    ldi r4, 120
    ldi r5, 7
    sys 2

    ; player bars
    ldi r3, X0
    ldw r1, [r3]
    ldi r2, 40
    ldi r3, 6
    ldi r4, 10
    ldi r5, 9
    sys 2

    ldi r3, X1
    ldw r1, [r3]
    ldi r2, 70
    ldi r3, 6
    ldi r4, 10
    ldi r5, 12
    sys 2

    yield
    jmp frame
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_vm::{Button, InputWord, Machine, Player};

    #[test]
    fn rom_pong_assembles_and_runs() {
        let mut c = rom_pong_console();
        for _ in 0..300 {
            c.step_frame(InputWord::NONE);
        }
        assert_eq!(c.frame(), 300);
        assert!(!c.is_halted(), "game loop must not halt or fault");
    }

    #[test]
    fn rom_pong_replicas_converge() {
        let mut a = rom_pong_console();
        let mut b = rom_pong_console();
        let mut input = InputWord::NONE;
        input.press(Player::ONE, Button::Down);
        input.press(Player::TWO, Button::Up);
        for _ in 0..600 {
            a.step_frame(input);
            b.step_frame(input);
        }
        assert_eq!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn rom_pong_paddles_respond_to_input() {
        let mut idle = rom_pong_console();
        let mut moving = rom_pong_console();
        let mut down = InputWord::NONE;
        down.press(Player::ONE, Button::Down);
        for _ in 0..30 {
            idle.step_frame(InputWord::NONE);
            moving.step_frame(down);
        }
        assert_ne!(idle.state_hash(), moving.state_hash());
        // The paddle y cell must have grown from its initial 53.
        let addr = 0x8000;
        assert!(moving.cpu().read_word(addr) > 53);
        assert_eq!(idle.cpu().read_word(addr), 53);
    }

    #[test]
    fn rom_pong_ball_moves_and_eventually_scores() {
        let mut c = rom_pong_console();
        let score0 = 0x800C;
        let score1 = 0x800E;
        let mut scored = false;
        // Hold both paddles at the top so the ball can get past.
        let mut input = InputWord::NONE;
        input.press(Player::ONE, Button::Up);
        input.press(Player::TWO, Button::Up);
        for _ in 0..5_000 {
            c.step_frame(input);
            if c.cpu().read_word(score0) + c.cpu().read_word(score1) > 0 {
                scored = true;
                break;
            }
        }
        assert!(scored, "no point scored in 5000 frames");
    }

    #[test]
    fn rom_race_edge_detection_counts_taps_not_holds() {
        let mut c = rom_race_console();
        let mut press = InputWord::NONE;
        press.press(Player::ONE, Button::A);
        // Hold for 10 frames: exactly one advance.
        for _ in 0..10 {
            c.step_frame(press);
        }
        assert_eq!(c.cpu().read_word(0x8000), 2);
        // Tap 5 times (press+release): five more advances.
        for _ in 0..5 {
            c.step_frame(InputWord::NONE);
            c.step_frame(press);
        }
        assert_eq!(c.cpu().read_word(0x8000), 12);
    }

    #[test]
    fn rom_race_declares_a_winner() {
        let mut c = rom_race_console();
        let mut press = InputWord::NONE;
        press.press(Player::TWO, Button::A);
        for _ in 0..200 {
            c.step_frame(InputWord::NONE);
            c.step_frame(press);
            if c.cpu().read_word(0x8006) != 0 {
                break;
            }
        }
        assert_eq!(c.cpu().read_word(0x8006), 2, "P2 should win");
    }

    #[test]
    fn rom_hashes_are_stable_identifiers() {
        assert_eq!(rom_pong().content_hash(), rom_pong().content_hash());
        assert_ne!(rom_pong().content_hash(), rom_race().content_hash());
    }
}
