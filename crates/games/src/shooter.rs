//! Shooter: a cooperative fixed shooter (Space-Invaders lineage).
//!
//! Unlike the versus games, both players fight on the same side — the
//! collaboration scenario the paper's title is about. Shared lives, shared
//! score, deterministic waves from a seeded LCG.

use coplay_vm::{
    AudioChannel, Button, Color, FrameBuffer, InputWord, Machine, MachineInfo, Player, StateError,
    StateHasher,
};

const W: i32 = 160;
const H: i32 = 120;
/// Fixed-point shift (1/16 pixel).
const FP: i32 = 4;
const SHIP_Y: i32 = 108;
const SHIP_W: i32 = 8;
const SHIP_H: i32 = 5;
const SHIP_SPEED: i32 = 2 << FP;
const FIRE_COOLDOWN: u8 = 10;
const BULLET_SPEED: i32 = 3 << FP;
const ENEMY_W: i32 = 6;
const ENEMY_H: i32 = 5;
const MAX_BULLETS: usize = 64;
const MAX_ENEMIES: usize = 32;
const START_LIVES: u8 = 3;

const STATE_MAGIC: &[u8; 4] = b"SHOT";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ship {
    x: i32, // fixed point, left edge
    cooldown: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bullet {
    x: i32,
    y: i32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Enemy {
    x: i32,
    y: i32,
    drift: i32, // horizontal velocity, fixed point
}

/// A deterministic cooperative shooter for one or two players.
///
/// Controls per player: `Left`/`Right` move, `A` fires. Lives are shared;
/// an enemy reaching the ground costs one. `Start` restarts after game over.
///
/// # Examples
///
/// ```
/// use coplay_games::Shooter;
/// use coplay_vm::{Button, InputWord, Machine, Player};
///
/// let mut game = Shooter::new();
/// let mut fire = InputWord::NONE;
/// fire.press(Player::ONE, Button::A);
/// for _ in 0..600 {
///     game.step_frame(fire);
/// }
/// assert!(game.frame() == 600);
/// ```
#[derive(Debug, Clone)]
pub struct Shooter {
    frame: u64,
    ships: [Ship; 2],
    bullets: Vec<Bullet>,
    enemies: Vec<Enemy>,
    score: u32,
    lives: u8,
    spawn_timer: u16,
    rng: u32,
    game_over: bool,
    fb: FrameBuffer,
    audio: AudioChannel,
    audio_frame: Vec<i16>,
}

impl Shooter {
    /// Creates a game with the default seed.
    pub fn new() -> Shooter {
        Shooter::with_seed(0x53_48_4F_54)
    }

    /// Creates a game whose enemy waves derive from `seed`.
    pub fn with_seed(seed: u32) -> Shooter {
        let mut g = Shooter {
            frame: 0,
            ships: [
                Ship {
                    x: (W / 3 - SHIP_W / 2) << FP,
                    cooldown: 0,
                },
                Ship {
                    x: (2 * W / 3 - SHIP_W / 2) << FP,
                    cooldown: 0,
                },
            ],
            bullets: Vec::new(),
            enemies: Vec::new(),
            score: 0,
            lives: START_LIVES,
            spawn_timer: 30,
            rng: seed,
            game_over: false,
            fb: FrameBuffer::standard(),
            audio: AudioChannel::new(),
            audio_frame: Vec::new(),
        };
        g.draw();
        g
    }

    /// The shared score.
    pub fn score(&self) -> u32 {
        self.score
    }

    /// Remaining shared lives.
    pub fn lives(&self) -> u8 {
        self.lives
    }

    /// `true` once all lives are gone.
    pub fn is_game_over(&self) -> bool {
        self.game_over
    }

    fn next_rand(&mut self) -> u32 {
        self.rng = self.rng.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        self.rng >> 16
    }

    fn spawn_interval(&self) -> u16 {
        // Waves speed up as the score grows, floor at 12 frames.
        let base = 60u32.saturating_sub(self.score / 50);
        base.max(12) as u16
    }

    fn step_play(&mut self, input: InputWord) {
        // Ships.
        for (i, ship) in self.ships.iter_mut().enumerate() {
            let player = Player(i as u8);
            if input.is_pressed(player, Button::Left) {
                ship.x -= SHIP_SPEED;
            }
            if input.is_pressed(player, Button::Right) {
                ship.x += SHIP_SPEED;
            }
            ship.x = ship.x.clamp(0, (W - SHIP_W) << FP);
            ship.cooldown = ship.cooldown.saturating_sub(1);
            if input.is_pressed(player, Button::A)
                && ship.cooldown == 0
                && self.bullets.len() < MAX_BULLETS
            {
                self.bullets.push(Bullet {
                    x: ship.x + ((SHIP_W / 2) << FP),
                    y: SHIP_Y << FP,
                });
                ship.cooldown = FIRE_COOLDOWN;
                self.audio.tone(1200, 1, 2_000);
            }
        }

        // Bullets travel up.
        for b in &mut self.bullets {
            b.y -= BULLET_SPEED;
        }
        self.bullets.retain(|b| b.y >= 0);

        // Spawn enemies.
        self.spawn_timer = self.spawn_timer.saturating_sub(1);
        if self.spawn_timer == 0 && self.enemies.len() < MAX_ENEMIES {
            let x = (self.next_rand() as i32 % (W - ENEMY_W)) << FP;
            let drift = (self.next_rand() as i32 % 17) - 8; // ±0.5 px/frame
            self.enemies.push(Enemy {
                x,
                y: -(ENEMY_H << FP),
                drift,
            });
            self.spawn_timer = self.spawn_interval();
        }

        // Enemies descend and drift.
        let fall = 8 + (self.score / 100).min(16) as i32; // 0.5..1.5 px/frame
        for e in &mut self.enemies {
            e.y += fall;
            e.x += e.drift;
            if e.x < 0 || e.x > (W - ENEMY_W) << FP {
                e.drift = -e.drift;
                e.x = e.x.clamp(0, (W - ENEMY_W) << FP);
            }
        }

        // Bullet–enemy collisions.
        let mut killed: Vec<usize> = Vec::new();
        self.bullets.retain(|b| {
            for (ei, e) in self.enemies.iter().enumerate() {
                if killed.contains(&ei) {
                    continue;
                }
                let bx = b.x >> FP;
                let by = b.y >> FP;
                let ex = e.x >> FP;
                let ey = e.y >> FP;
                if bx >= ex && bx < ex + ENEMY_W && by >= ey && by < ey + ENEMY_H {
                    killed.push(ei);
                    return false;
                }
            }
            true
        });
        if !killed.is_empty() {
            killed.sort_unstable_by(|a, b| b.cmp(a));
            for ei in killed {
                self.enemies.remove(ei);
                self.score += 10;
            }
            self.audio.tone(330, 2, 4_000);
        }

        // Enemies reaching the ground cost a shared life.
        let ground = (SHIP_Y + SHIP_H) << FP;
        let before = self.enemies.len();
        self.enemies.retain(|e| e.y < ground);
        let breaches = before - self.enemies.len();
        if breaches > 0 {
            let lost = breaches.min(self.lives as usize) as u8;
            self.lives -= lost;
            self.audio.tone(110, 10, 8_000);
            if self.lives == 0 {
                self.game_over = true;
            }
        }
    }

    fn draw(&mut self) {
        self.fb.clear(Color::BLACK);
        // HUD.
        self.fb.draw_number(4, 2, self.score, Color(7));
        for l in 0..self.lives {
            self.fb.fill_rect(W - 8 - l as i32 * 6, 2, 4, 4, Color(12));
        }
        // Ships.
        for (i, ship) in self.ships.iter().enumerate() {
            let color = if i == 0 { Color(9) } else { Color(10) };
            self.fb
                .fill_rect(ship.x >> FP, SHIP_Y, SHIP_W, SHIP_H, color);
            self.fb
                .fill_rect((ship.x >> FP) + SHIP_W / 2 - 1, SHIP_Y - 2, 2, 2, color);
        }
        // Bullets.
        for b in &self.bullets {
            self.fb.fill_rect(b.x >> FP, b.y >> FP, 1, 3, Color(14));
        }
        // Enemies.
        for e in &self.enemies {
            self.fb
                .fill_rect(e.x >> FP, e.y >> FP, ENEMY_W, ENEMY_H, Color(13));
        }
        if self.game_over {
            self.fb.fill_rect(W / 2 - 30, H / 2 - 2, 60, 4, Color(4));
        }
    }
}

impl Default for Shooter {
    fn default() -> Self {
        Shooter::new()
    }
}

impl Machine for Shooter {
    fn info(&self) -> MachineInfo {
        MachineInfo::new("Shooter", 2)
    }

    fn reset(&mut self) {
        *self = Shooter::new();
    }

    fn step_frame(&mut self, input: InputWord) {
        if self.game_over {
            if input.is_pressed(Player::ONE, Button::Start)
                || input.is_pressed(Player::TWO, Button::Start)
            {
                *self = Shooter::new();
            }
        } else {
            self.step_play(input);
        }
        self.draw();
        self.audio_frame = self.audio.render_frame(60).to_vec();
        self.frame += 1;
    }

    fn frame(&self) -> u64 {
        self.frame
    }

    fn framebuffer(&self) -> &FrameBuffer {
        &self.fb
    }

    fn audio_samples(&self) -> &[i16] {
        &self.audio_frame
    }

    fn state_hash(&self) -> u64 {
        let mut h = StateHasher::new();
        h.write(&self.save_state());
        h.finish()
    }

    fn save_state(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64 + self.bullets.len() * 8 + self.enemies.len() * 12);
        self.save_state_into(&mut v);
        v
    }

    fn save_state_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(STATE_MAGIC);
        out.extend_from_slice(&self.frame.to_le_bytes());
        for s in &self.ships {
            out.extend_from_slice(&s.x.to_le_bytes());
            out.push(s.cooldown);
        }
        out.extend_from_slice(&self.score.to_le_bytes());
        out.push(self.lives);
        out.extend_from_slice(&self.spawn_timer.to_le_bytes());
        out.extend_from_slice(&self.rng.to_le_bytes());
        out.push(self.game_over as u8);
        out.push(self.bullets.len() as u8);
        for b in &self.bullets {
            out.extend_from_slice(&b.x.to_le_bytes());
            out.extend_from_slice(&b.y.to_le_bytes());
        }
        out.push(self.enemies.len() as u8);
        for e in &self.enemies {
            out.extend_from_slice(&e.x.to_le_bytes());
            out.extend_from_slice(&e.y.to_le_bytes());
            out.extend_from_slice(&e.drift.to_le_bytes());
        }
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        const FIXED: usize = 4 + 8 + 2 * 5 + 4 + 1 + 2 + 4 + 1 + 1;
        if bytes.len() < FIXED {
            return Err(StateError::Truncated {
                expected: FIXED,
                actual: bytes.len(),
            });
        }
        if &bytes[..4] != STATE_MAGIC {
            return Err(StateError::BadMagic);
        }
        let mut p = 4;
        let take = |p: &mut usize, n: usize| -> Result<&[u8], StateError> {
            if *p + n > bytes.len() {
                return Err(StateError::Truncated {
                    expected: *p + n,
                    actual: bytes.len(),
                });
            }
            let s = &bytes[*p..*p + n];
            *p += n;
            Ok(s)
        };
        self.frame = u64::from_le_bytes(take(&mut p, 8)?.try_into().expect("len 8"));
        for s in &mut self.ships {
            s.x = i32::from_le_bytes(take(&mut p, 4)?.try_into().expect("len 4"));
            s.cooldown = take(&mut p, 1)?[0];
        }
        self.score = u32::from_le_bytes(take(&mut p, 4)?.try_into().expect("len 4"));
        self.lives = take(&mut p, 1)?[0];
        self.spawn_timer = u16::from_le_bytes(take(&mut p, 2)?.try_into().expect("len 2"));
        self.rng = u32::from_le_bytes(take(&mut p, 4)?.try_into().expect("len 4"));
        self.game_over = take(&mut p, 1)?[0] != 0;
        let nb = take(&mut p, 1)?[0] as usize;
        self.bullets.clear();
        for _ in 0..nb {
            let x = i32::from_le_bytes(take(&mut p, 4)?.try_into().expect("len 4"));
            let y = i32::from_le_bytes(take(&mut p, 4)?.try_into().expect("len 4"));
            self.bullets.push(Bullet { x, y });
        }
        let ne = take(&mut p, 1)?[0] as usize;
        self.enemies.clear();
        for _ in 0..ne {
            let x = i32::from_le_bytes(take(&mut p, 4)?.try_into().expect("len 4"));
            let y = i32::from_le_bytes(take(&mut p, 4)?.try_into().expect("len 4"));
            let drift = i32::from_le_bytes(take(&mut p, 4)?.try_into().expect("len 4"));
            self.enemies.push(Enemy { x, y, drift });
        }
        self.draw();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hold(player: Player, buttons: &[Button]) -> InputWord {
        let mut w = InputWord::NONE;
        for &b in buttons {
            w.press(player, b);
        }
        w
    }

    #[test]
    fn ships_move_and_clamp_independently() {
        let mut g = Shooter::new();
        let both = {
            let mut w = hold(Player::ONE, &[Button::Left]);
            w.press(Player::TWO, Button::Right);
            w
        };
        for _ in 0..200 {
            g.step_frame(both);
        }
        assert_eq!(g.ships[0].x, 0);
        assert_eq!(g.ships[1].x, (W - SHIP_W) << FP);
    }

    #[test]
    fn firing_respects_cooldown() {
        let mut g = Shooter::new();
        let fire = hold(Player::ONE, &[Button::A]);
        g.step_frame(fire);
        assert_eq!(g.bullets.len(), 1);
        g.step_frame(fire);
        assert_eq!(g.bullets.len(), 1, "cooldown prevents immediate refire");
        for _ in 0..FIRE_COOLDOWN {
            g.step_frame(fire);
        }
        assert_eq!(g.bullets.len(), 2);
    }

    #[test]
    fn bullets_leave_the_screen() {
        let mut g = Shooter::new();
        g.step_frame(hold(Player::ONE, &[Button::A]));
        for _ in 0..60 {
            g.step_frame(InputWord::NONE);
        }
        assert!(g.bullets.is_empty());
    }

    #[test]
    fn enemies_spawn_and_descend() {
        let mut g = Shooter::new();
        for _ in 0..120 {
            g.step_frame(InputWord::NONE);
        }
        assert!(!g.enemies.is_empty());
        let y0 = g.enemies[0].y;
        g.step_frame(InputWord::NONE);
        assert!(g.enemies[0].y > y0);
    }

    #[test]
    fn unopposed_enemies_end_the_game() {
        let mut g = Shooter::new();
        for _ in 0..60 * 120 {
            g.step_frame(InputWord::NONE);
            if g.is_game_over() {
                break;
            }
        }
        assert!(g.is_game_over());
        assert_eq!(g.lives(), 0);
        // Start restarts.
        g.step_frame(hold(Player::TWO, &[Button::Start]));
        assert!(!g.is_game_over());
        assert_eq!(g.lives(), START_LIVES);
    }

    #[test]
    fn shooting_enemies_scores() {
        // Sweep and shoot long enough that some bullet connects.
        let mut g = Shooter::new();
        for i in 0..60 * 60 {
            let dir = if (i / 40) % 2 == 0 {
                Button::Left
            } else {
                Button::Right
            };
            let mut w = hold(Player::ONE, &[Button::A, dir]);
            w.press(Player::TWO, Button::A);
            let dir2 = if (i / 30) % 2 == 0 {
                Button::Right
            } else {
                Button::Left
            };
            w.press(Player::TWO, dir2);
            g.step_frame(w);
            if g.score() > 0 {
                break;
            }
        }
        assert!(g.score() > 0, "no enemy was ever hit");
    }

    #[test]
    fn deterministic_replay() {
        let script: Vec<InputWord> = (0..3_000u32)
            .map(|i| InputWord((i.wrapping_mul(0x85EB_CA6B) >> 10) & 0x3F3F))
            .collect();
        let run = || {
            let mut g = Shooter::new();
            for &w in &script {
                g.step_frame(w);
            }
            (g.state_hash(), g.score(), g.lives())
        };
        assert_eq!(run(), run());
    }

    // Snapshot roundtrip coverage lives in the generic conformance harness
    // (tests/properties.rs, every_machine_snapshot_roundtrips_mid_game).

    #[test]
    fn load_rejects_truncated_entity_lists() {
        let mut a = Shooter::new();
        for _ in 0..200 {
            a.step_frame(hold(Player::ONE, &[Button::A]));
        }
        let snap = a.save_state();
        let mut b = Shooter::new();
        assert!(matches!(
            b.load_state(&snap[..snap.len() - 3]),
            Err(StateError::Truncated { .. })
        ));
    }

    #[test]
    fn seeded_games_differ() {
        let mut a = Shooter::with_seed(1);
        let mut b = Shooter::with_seed(2);
        for _ in 0..240 {
            a.step_frame(InputWord::NONE);
            b.step_frame(InputWord::NONE);
        }
        assert_ne!(a.state_hash(), b.state_hash());
    }
}
