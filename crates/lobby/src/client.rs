//! Blocking convenience clients for hosts and joiners.
//!
//! Wraps the request/retransmit/response dance over any [`Transport`]: a
//! host registers and heartbeats; a joiner lists and claims a slot. Each
//! call retransmits its request until answered or a deadline passes —
//! correct over lossy links because every lobby request is idempotent.

use std::error::Error;
use std::fmt;

use coplay_clock::{Clock, SimDuration, SimTime};
use coplay_net::{PeerId, Transport, TransportError};

use crate::wire::{JoinRefusal, LobbyMessage, SessionEntry, SessionId};

/// How often requests are retransmitted.
const RETRY: SimDuration = SimDuration::from_millis(200);

/// Errors from lobby client operations.
#[derive(Debug)]
pub enum LobbyError {
    /// The transport failed.
    Transport(TransportError),
    /// No response within the deadline.
    Timeout,
    /// The lobby refused the join.
    Refused(JoinRefusal),
}

impl fmt::Display for LobbyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LobbyError::Transport(e) => write!(f, "lobby transport failure: {e}"),
            LobbyError::Timeout => write!(f, "lobby did not respond in time"),
            LobbyError::Refused(JoinRefusal::Full) => write!(f, "session is full"),
            LobbyError::Refused(JoinRefusal::Unknown) => write!(f, "session does not exist"),
        }
    }
}

impl Error for LobbyError {}

impl From<TransportError> for LobbyError {
    fn from(e: TransportError) -> Self {
        LobbyError::Transport(e)
    }
}

/// A granted slot: everything a joiner needs to start its game session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// The session joined.
    pub id: SessionId,
    /// The host peer to connect to.
    pub host: PeerId,
    /// The site number assigned (1-based; 0 is the host).
    pub site: u8,
    /// Game image hash to verify before loading.
    pub rom_hash: u64,
}

/// Sends `request` repeatedly until `accept` yields a result or `deadline`
/// passes, polling the transport and a clock between retries.
fn request_response<T, C, R>(
    transport: &mut T,
    clock: &C,
    server: PeerId,
    request: &LobbyMessage,
    deadline: SimDuration,
    mut accept: impl FnMut(&LobbyMessage) -> Option<Result<R, LobbyError>>,
) -> Result<R, LobbyError>
where
    T: Transport,
    C: Clock,
{
    let start = clock.now();
    let bytes = request.encode();
    let mut next_send = SimTime::ZERO;
    loop {
        let now = clock.now();
        if now.saturating_since(start) > deadline {
            return Err(LobbyError::Timeout);
        }
        if now >= next_send {
            transport.send(server, &bytes)?;
            next_send = now + RETRY;
        }
        while let Some((from, data)) = transport.try_recv()? {
            if from != server {
                continue;
            }
            if let Ok(msg) = LobbyMessage::decode(&data) {
                if let Some(result) = accept(&msg) {
                    return result;
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

/// Registers a session with the lobby; returns its id.
///
/// # Errors
///
/// [`LobbyError::Timeout`] if the server stays silent past `deadline`, or
/// a transport failure.
pub fn register_session<T: Transport, C: Clock>(
    transport: &mut T,
    clock: &C,
    server: PeerId,
    name: &str,
    rom_hash: u64,
    slots: u8,
    deadline: SimDuration,
) -> Result<SessionId, LobbyError> {
    let req = LobbyMessage::Register {
        name: name.to_string(),
        rom_hash,
        slots,
    };
    request_response(transport, clock, server, &req, deadline, |msg| match msg {
        LobbyMessage::Registered { id } => Some(Ok(*id)),
        _ => None,
    })
}

/// Fetches the current session listing.
///
/// # Errors
///
/// [`LobbyError::Timeout`] or a transport failure.
pub fn list_sessions<T: Transport, C: Clock>(
    transport: &mut T,
    clock: &C,
    server: PeerId,
    deadline: SimDuration,
) -> Result<Vec<SessionEntry>, LobbyError> {
    request_response(
        transport,
        clock,
        server,
        &LobbyMessage::List,
        deadline,
        |msg| match msg {
            LobbyMessage::Listing { sessions } => Some(Ok(sessions.clone())),
            _ => None,
        },
    )
}

/// Claims a slot in `id`.
///
/// # Errors
///
/// [`LobbyError::Refused`] if the session is full or gone,
/// [`LobbyError::Timeout`], or a transport failure.
pub fn join_session<T: Transport, C: Clock>(
    transport: &mut T,
    clock: &C,
    server: PeerId,
    id: SessionId,
    deadline: SimDuration,
) -> Result<Slot, LobbyError> {
    request_response(
        transport,
        clock,
        server,
        &LobbyMessage::Join { id },
        deadline,
        |msg| match msg {
            LobbyMessage::Joined {
                id: rid,
                host,
                site,
                rom_hash,
            } if *rid == id => Some(Ok(Slot {
                id,
                host: *host,
                site: *site,
                rom_hash: *rom_hash,
            })),
            LobbyMessage::Refused { id: rid, reason } if *rid == id => {
                Some(Err(LobbyError::Refused(*reason)))
            }
            _ => None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::LobbyServer;
    use coplay_clock::SystemClock;
    use coplay_net::loopback;

    /// Runs a lobby server on a thread over a loopback link for `dur`.
    #[allow(clippy::disallowed_methods)] // bounds real wall-clock runtime of the server thread
    fn spawn_server(
        mut transport: impl Transport + Send + 'static,
        dur: std::time::Duration,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let clock = SystemClock::new();
            let mut server = LobbyServer::new();
            // detlint: allow(wall_clock) -- test harness bounds real server runtime
            let end = std::time::Instant::now() + dur;
            // detlint: allow(wall_clock) -- test harness bounds real server runtime
            while std::time::Instant::now() < end {
                let now = clock.now();
                while let Some((from, data)) = transport.try_recv().expect("recv") {
                    if let Ok(msg) = LobbyMessage::decode(&data) {
                        for (to, reply) in server.handle(from, &msg, now) {
                            let _ = transport.send(to, &reply.encode());
                        }
                    }
                }
                server.expire(now);
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        })
    }

    #[test]
    fn host_and_join_through_a_live_server() {
        let server_peer = PeerId(100);
        let (client_side, server_side) = loopback(PeerId(0), server_peer);
        let handle = spawn_server(server_side, std::time::Duration::from_secs(3));

        let clock = SystemClock::new();
        let mut t = client_side;
        let deadline = SimDuration::from_secs(2);
        let id = register_session(&mut t, &clock, server_peer, "it duel", 9, 2, deadline)
            .expect("register");
        let listing = list_sessions(&mut t, &clock, server_peer, deadline).expect("list");
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].id, id);
        // The host's own peer joins as a client in this single-link test.
        let slot = join_session(&mut t, &clock, server_peer, id, deadline).expect("join");
        assert_eq!(slot.site, 1);
        assert_eq!(slot.rom_hash, 9);
        handle.join().expect("server thread");
    }

    #[test]
    fn join_refusal_is_reported() {
        let server_peer = PeerId(100);
        let (client_side, server_side) = loopback(PeerId(0), server_peer);
        let handle = spawn_server(server_side, std::time::Duration::from_secs(2));
        let clock = SystemClock::new();
        let mut t = client_side;
        let err = join_session(
            &mut t,
            &clock,
            server_peer,
            SessionId(404),
            SimDuration::from_secs(1),
        )
        .expect_err("must refuse");
        assert!(matches!(err, LobbyError::Refused(JoinRefusal::Unknown)));
        handle.join().expect("server thread");
    }

    #[test]
    fn timeout_when_server_silent() {
        let (mut t, _server_side) = loopback(PeerId(0), PeerId(100));
        let clock = SystemClock::new();
        let err = list_sessions(&mut t, &clock, PeerId(100), SimDuration::from_millis(150))
            .expect_err("silent server");
        assert!(matches!(err, LobbyError::Timeout), "{err}");
    }
}
