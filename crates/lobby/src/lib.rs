//! Rendezvous lobby for coplay sessions.
//!
//! §2 of the reproduced paper: *"Some rendezvous mechanism is required for
//! them to find each other, such as instant messenger and games lobby."*
//! This crate is that games lobby — hosts register sessions (name, game
//! image hash, player slots), clients discover and join them, and the
//! lobby assigns each joiner the site number it should use in the lockstep
//! session. Runs over the same unreliable [`coplay_net::Transport`]
//! datagrams as everything else; requests are idempotent, so clients simply
//! retransmit.
//!
//! * [`LobbyServer`] — sans-io registry with heartbeats and expiry.
//! * [`register_session`] / [`list_sessions`] / [`join_session`] — blocking
//!   client helpers over any transport and clock.
//! * [`LobbyMessage`] — the wire protocol (own magic byte, versioned).
//!
//! # Examples
//!
//! See the `matchmaking` example at the workspace root, which rendezvous
//! two players through a lobby and then plays a verified lockstep match.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod server;
mod wire;

pub use client::{join_session, list_sessions, register_session, LobbyError, Slot};
pub use server::{LobbyServer, SESSION_TTL};
pub use wire::{
    JoinRefusal, LobbyMessage, LobbyWireError, SessionEntry, SessionId, MAX_LISTED,
    MAX_METRICS_TEXT, MAX_NAME,
};
