//! The lobby server: a sans-io session registry.
//!
//! Hosts register sessions and heartbeat them; clients list and join.
//! Sessions expire without heartbeats, and slots are handed out
//! first-come-first-served. The server holds no per-client state beyond the
//! registry — requests are idempotent, so clients simply retransmit over
//! the unreliable transport.

use std::collections::BTreeMap;

use coplay_clock::{SimDuration, SimTime};
use coplay_net::PeerId;
use coplay_telemetry::MetricsRegistry;

use crate::wire::{JoinRefusal, LobbyMessage, SessionEntry, SessionId, MAX_LISTED};

/// A session dies this long after its last register/heartbeat.
pub const SESSION_TTL: SimDuration = SimDuration::from_secs(30);

#[derive(Debug)]
struct Registration {
    name: String,
    rom_hash: u64,
    slots: u8,
    host: PeerId,
    /// Peers granted slots, in join order (index+1 = site number).
    members: Vec<PeerId>,
    last_seen: SimTime,
    /// Cumulative health counters from the host's latest heartbeat
    /// (zero until one arrives, and always zero for lockstep sessions).
    rollbacks: u64,
    resimulated_frames: u64,
    max_rollback_depth: u64,
    /// Snapshot-ring health from the host's latest heartbeat: the
    /// delta-vs-full compression ratio in thousandths and the cumulative
    /// pooled-buffer reuse hits.
    compression_ratio_milli: u64,
    /// Cumulative dirty-checkpoint bytes captured and bytes copied back by
    /// bitmap-guided restores, from the host's latest heartbeat.
    snapshot_bytes_saved: u64,
    snapshot_bytes_restored: u64,
    pool_hits: u64,
    /// Flight-recorder eviction counters from the host's latest heartbeat:
    /// total telemetry events lost and the trace-span subset.
    dropped_events: u64,
    dropped_spans: u64,
}

/// The lobby registry. Feed it decoded requests; it answers with replies to
/// transmit.
///
/// # Examples
///
/// ```
/// use coplay_clock::SimTime;
/// use coplay_lobby::{LobbyMessage, LobbyServer};
/// use coplay_net::PeerId;
///
/// let mut server = LobbyServer::new();
/// let replies = server.handle(
///     PeerId(0),
///     &LobbyMessage::Register { name: "duel".into(), rom_hash: 7, slots: 2 },
///     SimTime::ZERO,
/// );
/// assert!(matches!(replies[0].1, LobbyMessage::Registered { .. }));
/// ```
#[derive(Debug, Default)]
pub struct LobbyServer {
    sessions: BTreeMap<SessionId, Registration>,
    next_id: u32,
    metrics: MetricsRegistry,
}

impl LobbyServer {
    /// Creates an empty registry.
    pub fn new() -> LobbyServer {
        LobbyServer::default()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The server's metrics registry (request counters, session gauge).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The server's metrics as a Prometheus-style text exposition — what a
    /// [`LobbyMessage::MetricsRequest`] is answered with.
    pub fn metrics_text(&mut self) -> String {
        self.metrics
            .gauge_set("sessions", self.sessions.len() as i64);
        // Aggregate the heartbeat-reported rollback health so an operator
        // sees at a glance whether any session is repairing heavily.
        let (mut rb, mut resim, mut depth) = (0u64, 0u64, 0u64);
        for s in self.sessions.values() {
            rb += s.rollbacks;
            resim += s.resimulated_frames;
            depth = depth.max(s.max_rollback_depth);
        }
        self.metrics.gauge_set("session_rollbacks", rb as i64);
        self.metrics
            .gauge_set("session_resimulated_frames", resim as i64);
        self.metrics
            .gauge_set("session_max_rollback_depth", depth as i64);
        // Snapshot-ring health: the worst (lowest) reported delta-vs-full
        // compression ratio and the fleet-wide pooled-buffer reuse count.
        let worst_ratio = self
            .sessions
            .values()
            .map(|s| s.compression_ratio_milli)
            .filter(|&r| r > 0)
            .min()
            .unwrap_or(0);
        let pool_hits: u64 = self.sessions.values().map(|s| s.pool_hits).sum();
        self.metrics
            .gauge_set("session_compression_ratio_milli", worst_ratio as i64);
        self.metrics
            .gauge_set("session_snapshot_pool_hits", pool_hits as i64);
        // Dirty-checkpoint bandwidth: fleet-wide bytes the rings captured
        // and bytes rollback repairs copied back. Read against the ratio
        // gauge above, these say how far under the 84 KiB full-image floor
        // the hosts are running.
        let saved: u64 = self.sessions.values().map(|s| s.snapshot_bytes_saved).sum();
        let restored: u64 = self
            .sessions
            .values()
            .map(|s| s.snapshot_bytes_restored)
            .sum();
        self.metrics
            .gauge_set("session_snapshot_bytes_saved", saved as i64);
        self.metrics
            .gauge_set("session_snapshot_bytes_restored", restored as i64);
        // Observability health: a nonzero span drop count means some host's
        // trace dumps have holes and tracescope timelines may be partial.
        let dropped_events: u64 = self.sessions.values().map(|s| s.dropped_events).sum();
        let dropped_spans: u64 = self.sessions.values().map(|s| s.dropped_spans).sum();
        self.metrics
            .gauge_set("session_dropped_events", dropped_events as i64);
        self.metrics
            .gauge_set("session_dropped_spans", dropped_spans as i64);
        self.metrics.prometheus("coplay_lobby")
    }

    /// Drops sessions whose hosts stopped heartbeating before
    /// `now - SESSION_TTL`. Call periodically.
    pub fn expire(&mut self, now: SimTime) {
        let before = self.sessions.len();
        self.sessions
            .retain(|_, s| now.saturating_since(s.last_seen) < SESSION_TTL);
        self.metrics.counter_add(
            "sessions_expired_total",
            before.saturating_sub(self.sessions.len()) as u64,
        );
    }

    /// Processes one request; returns `(destination, reply)` pairs.
    pub fn handle(
        &mut self,
        from: PeerId,
        msg: &LobbyMessage,
        now: SimTime,
    ) -> Vec<(PeerId, LobbyMessage)> {
        self.metrics.counter_add("requests_total", 1);
        match msg {
            LobbyMessage::Register {
                name,
                rom_hash,
                slots,
            } => {
                self.metrics.counter_add("register_total", 1);
                // Idempotent: re-registering the same host+name refreshes.
                if let Some((&id, reg)) = self
                    .sessions
                    .iter_mut()
                    .find(|(_, s)| s.host == from && s.name == *name)
                {
                    reg.last_seen = now;
                    reg.rom_hash = *rom_hash;
                    return vec![(from, LobbyMessage::Registered { id })];
                }
                let id = SessionId(self.next_id);
                self.next_id += 1;
                self.sessions.insert(
                    id,
                    Registration {
                        name: name.clone(),
                        rom_hash: *rom_hash,
                        slots: (*slots).max(2),
                        host: from,
                        members: Vec::new(),
                        last_seen: now,
                        rollbacks: 0,
                        resimulated_frames: 0,
                        max_rollback_depth: 0,
                        compression_ratio_milli: 0,
                        snapshot_bytes_saved: 0,
                        snapshot_bytes_restored: 0,
                        pool_hits: 0,
                        dropped_events: 0,
                        dropped_spans: 0,
                    },
                );
                vec![(from, LobbyMessage::Registered { id })]
            }
            LobbyMessage::Unregister { id } => {
                if self.sessions.get(id).is_some_and(|s| s.host == from) {
                    self.sessions.remove(id);
                }
                Vec::new()
            }
            LobbyMessage::Heartbeat {
                id,
                rollbacks,
                resimulated_frames,
                max_rollback_depth,
                compression_ratio_milli,
                snapshot_bytes_saved,
                snapshot_bytes_restored,
                pool_hits,
                dropped_events,
                dropped_spans,
            } => {
                if let Some(s) = self.sessions.get_mut(id) {
                    if s.host == from {
                        s.last_seen = now;
                        s.rollbacks = *rollbacks;
                        s.resimulated_frames = *resimulated_frames;
                        s.max_rollback_depth = *max_rollback_depth;
                        s.compression_ratio_milli = *compression_ratio_milli;
                        s.snapshot_bytes_saved = *snapshot_bytes_saved;
                        s.snapshot_bytes_restored = *snapshot_bytes_restored;
                        s.pool_hits = *pool_hits;
                        s.dropped_events = *dropped_events;
                        s.dropped_spans = *dropped_spans;
                    }
                }
                Vec::new()
            }
            LobbyMessage::List => {
                self.metrics.counter_add("list_total", 1);
                let sessions: Vec<SessionEntry> = self
                    .sessions
                    .iter()
                    .take(MAX_LISTED)
                    .map(|(&id, s)| SessionEntry {
                        id,
                        name: s.name.clone(),
                        rom_hash: s.rom_hash,
                        slots: s.slots,
                        free: (s.slots.saturating_sub(1)).saturating_sub(s.members.len() as u8),
                        host: s.host,
                    })
                    .collect();
                vec![(from, LobbyMessage::Listing { sessions })]
            }
            LobbyMessage::Join { id } => {
                self.metrics.counter_add("join_total", 1);
                let Some(s) = self.sessions.get_mut(id) else {
                    self.metrics.counter_add("join_refused_total", 1);
                    return vec![(
                        from,
                        LobbyMessage::Refused {
                            id: *id,
                            reason: JoinRefusal::Unknown,
                        },
                    )];
                };
                // Idempotent: a retransmitted join re-grants the same slot.
                let site = match s.members.iter().position(|&m| m == from) {
                    Some(pos) => pos as u8 + 1,
                    None => {
                        if s.members.len() as u8 + 1 >= s.slots {
                            self.metrics.counter_add("join_refused_total", 1);
                            return vec![(
                                from,
                                LobbyMessage::Refused {
                                    id: *id,
                                    reason: JoinRefusal::Full,
                                },
                            )];
                        }
                        s.members.push(from);
                        s.members.len() as u8
                    }
                };
                vec![(
                    from,
                    LobbyMessage::Joined {
                        id: *id,
                        host: s.host,
                        site,
                        rom_hash: s.rom_hash,
                    },
                )]
            }
            LobbyMessage::MetricsRequest => {
                let text = self.metrics_text();
                vec![(from, LobbyMessage::MetricsReport { text })]
            }
            // Server-to-client messages arriving at the server are noise.
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn heartbeat(id: SessionId, rollbacks: u64, resim: u64, depth: u64) -> LobbyMessage {
        LobbyMessage::Heartbeat {
            id,
            rollbacks,
            resimulated_frames: resim,
            max_rollback_depth: depth,
            compression_ratio_milli: 4500,
            snapshot_bytes_saved: 40_000,
            snapshot_bytes_restored: 5_000,
            pool_hits: 128,
            dropped_events: 6,
            dropped_spans: 2,
        }
    }

    fn register(server: &mut LobbyServer, host: PeerId, name: &str, slots: u8) -> SessionId {
        let replies = server.handle(
            host,
            &LobbyMessage::Register {
                name: name.into(),
                rom_hash: 42,
                slots,
            },
            t(0),
        );
        match replies[0].1 {
            LobbyMessage::Registered { id } => id,
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn register_list_join_flow() {
        let mut server = LobbyServer::new();
        let id = register(&mut server, PeerId(0), "duel", 2);

        let listing = server.handle(PeerId(5), &LobbyMessage::List, t(1));
        match &listing[0].1 {
            LobbyMessage::Listing { sessions } => {
                assert_eq!(sessions.len(), 1);
                assert_eq!(sessions[0].id, id);
                assert_eq!(sessions[0].free, 1);
                assert_eq!(sessions[0].host, PeerId(0));
            }
            other => panic!("{other:?}"),
        }

        let join = server.handle(PeerId(5), &LobbyMessage::Join { id }, t(2));
        match join[0].1 {
            LobbyMessage::Joined {
                host,
                site,
                rom_hash,
                ..
            } => {
                assert_eq!(host, PeerId(0));
                assert_eq!(site, 1);
                assert_eq!(rom_hash, 42);
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_is_idempotent_and_fills_up() {
        let mut server = LobbyServer::new();
        let id = register(&mut server, PeerId(0), "trio", 3);
        // Two joiners take sites 1 and 2.
        for (peer, expect) in [(PeerId(5), 1u8), (PeerId(6), 2)] {
            match server.handle(peer, &LobbyMessage::Join { id }, t(1))[0].1 {
                LobbyMessage::Joined { site, .. } => assert_eq!(site, expect),
                ref o => panic!("{o:?}"),
            }
        }
        // Retransmitted join re-grants the same slot.
        match server.handle(PeerId(5), &LobbyMessage::Join { id }, t(2))[0].1 {
            LobbyMessage::Joined { site, .. } => assert_eq!(site, 1),
            ref o => panic!("{o:?}"),
        }
        // A third stranger is refused.
        match server.handle(PeerId(7), &LobbyMessage::Join { id }, t(2))[0].1 {
            LobbyMessage::Refused { reason, .. } => assert_eq!(reason, JoinRefusal::Full),
            ref o => panic!("{o:?}"),
        }
    }

    #[test]
    fn join_unknown_session_refused() {
        let mut server = LobbyServer::new();
        match server.handle(PeerId(5), &LobbyMessage::Join { id: SessionId(99) }, t(0))[0].1 {
            LobbyMessage::Refused { reason, .. } => assert_eq!(reason, JoinRefusal::Unknown),
            ref o => panic!("{o:?}"),
        }
    }

    #[test]
    fn sessions_expire_without_heartbeats() {
        let mut server = LobbyServer::new();
        let id = register(&mut server, PeerId(0), "stale", 2);
        server.expire(t(29));
        assert_eq!(server.session_count(), 1);
        server.handle(PeerId(0), &heartbeat(id, 0, 0, 0), t(29));
        server.expire(t(58));
        assert_eq!(server.session_count(), 1, "heartbeat extended the TTL");
        server.expire(t(60));
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn reregistration_refreshes_not_duplicates() {
        let mut server = LobbyServer::new();
        let a = register(&mut server, PeerId(0), "room", 2);
        let b = register(&mut server, PeerId(0), "room", 2);
        assert_eq!(a, b);
        assert_eq!(server.session_count(), 1);
    }

    #[test]
    fn only_the_host_can_unregister_or_heartbeat() {
        let mut server = LobbyServer::new();
        let id = register(&mut server, PeerId(0), "mine", 2);
        server.handle(PeerId(9), &LobbyMessage::Unregister { id }, t(1));
        assert_eq!(server.session_count(), 1, "stranger cannot unregister");
        server.handle(PeerId(0), &LobbyMessage::Unregister { id }, t(1));
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn metrics_request_answered_with_exposition() {
        let mut server = LobbyServer::new();
        let _ = register(&mut server, PeerId(0), "duel", 2);
        server.handle(PeerId(5), &LobbyMessage::List, t(1));
        let replies = server.handle(PeerId(9), &LobbyMessage::MetricsRequest, t(2));
        match &replies[0].1 {
            LobbyMessage::MetricsReport { text } => {
                assert!(text.contains("coplay_lobby_sessions 1"), "{text}");
                assert!(text.contains("coplay_lobby_requests_total 3"), "{text}");
                assert!(text.contains("coplay_lobby_register_total 1"), "{text}");
                assert!(text.contains("coplay_lobby_list_total 1"), "{text}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn heartbeat_health_surfaces_in_metrics() {
        let mut server = LobbyServer::new();
        let a = register(&mut server, PeerId(0), "rollback room", 2);
        let b = register(&mut server, PeerId(1), "lockstep room", 2);

        // Before any heartbeat the health gauges read zero.
        let text = server.metrics_text();
        assert!(text.contains("coplay_lobby_session_rollbacks 0"), "{text}");

        server.handle(PeerId(0), &heartbeat(a, 5, 20, 7), t(1));
        server.handle(PeerId(1), &heartbeat(b, 3, 9, 4), t(1));
        // A stranger's heartbeat must not overwrite the host's report.
        server.handle(PeerId(9), &heartbeat(a, 999, 999, 999), t(2));

        let text = server.metrics_text();
        assert!(text.contains("coplay_lobby_session_rollbacks 8"), "{text}");
        assert!(
            text.contains("coplay_lobby_session_resimulated_frames 29"),
            "{text}"
        );
        assert!(
            text.contains("coplay_lobby_session_max_rollback_depth 7"),
            "{text}"
        );
        // Both hosts reported ratio 4500 and 128 pool hits each; the gauge
        // keeps the worst ratio and sums the hits.
        assert!(
            text.contains("coplay_lobby_session_compression_ratio_milli 4500"),
            "{text}"
        );
        assert!(
            text.contains("coplay_lobby_session_snapshot_pool_hits 256"),
            "{text}"
        );
        // Dirty-checkpoint bandwidth sums across hosts: 40k+40k saved,
        // 5k+5k restored.
        assert!(
            text.contains("coplay_lobby_session_snapshot_bytes_saved 80000"),
            "{text}"
        );
        assert!(
            text.contains("coplay_lobby_session_snapshot_bytes_restored 10000"),
            "{text}"
        );
        // Flight-recorder loss sums across hosts: 6+6 events, 2+2 spans.
        assert!(
            text.contains("coplay_lobby_session_dropped_events 12"),
            "{text}"
        );
        assert!(
            text.contains("coplay_lobby_session_dropped_spans 4"),
            "{text}"
        );

        // A host reporting weaker compression drags the worst-ratio gauge
        // down; sessions that never reported (ratio 0) stay excluded.
        let c = register(&mut server, PeerId(2), "weak compressor", 2);
        server.handle(
            PeerId(2),
            &LobbyMessage::Heartbeat {
                id: c,
                rollbacks: 0,
                resimulated_frames: 0,
                max_rollback_depth: 0,
                compression_ratio_milli: 1100,
                snapshot_bytes_saved: 7_000,
                snapshot_bytes_restored: 1_000,
                pool_hits: 10,
                dropped_events: 0,
                dropped_spans: 0,
            },
            t(2),
        );
        let _ = register(&mut server, PeerId(3), "silent", 2);
        let text = server.metrics_text();
        assert!(
            text.contains("coplay_lobby_session_compression_ratio_milli 1100"),
            "{text}"
        );
        assert!(
            text.contains("coplay_lobby_session_snapshot_pool_hits 266"),
            "{text}"
        );
    }

    #[test]
    fn noise_messages_ignored() {
        let mut server = LobbyServer::new();
        assert!(server
            .handle(
                PeerId(1),
                &LobbyMessage::Registered { id: SessionId(1) },
                t(0)
            )
            .is_empty());
    }
}
