//! The lobby's datagram protocol.
//!
//! Deliberately separate from the sync protocol (different magic byte):
//! the lobby is infrastructure the paper assumes exists, not part of the
//! synchronization algorithm. All messages fit one datagram; clients
//! retransmit requests until answered (the server is stateless per
//! request).

use std::error::Error;
use std::fmt;

use coplay_net::bytes::{Buf, BytesMut};
use coplay_net::PeerId;

const MAGIC: u8 = 0xC6;
const VERSION: u8 = 4;

/// Longest session name accepted.
pub const MAX_NAME: usize = 64;
/// Most sessions returned in one listing.
pub const MAX_LISTED: usize = 32;
/// Longest metrics exposition carried in one report (text beyond this is
/// truncated at a line boundary so the exposition stays parseable).
pub const MAX_METRICS_TEXT: usize = 32 * 1024;

/// Identifies a registered session at the lobby.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u32);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// One row of a session listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionEntry {
    /// The session's lobby id.
    pub id: SessionId,
    /// Human-readable name chosen by the host.
    pub name: String,
    /// Hash of the game image (clients verify before joining).
    pub rom_hash: u64,
    /// Total player slots (including the host).
    pub slots: u8,
    /// Slots still open.
    pub free: u8,
    /// The host's transport peer.
    pub host: PeerId,
}

/// Why a join was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinRefusal {
    /// No such session (expired or never existed).
    Unknown,
    /// All player slots taken.
    Full,
}

/// Lobby protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LobbyMessage {
    /// Host: create or refresh a session.
    Register {
        /// Session name (truncated to [`MAX_NAME`]).
        name: String,
        /// Hash of the host's game image.
        rom_hash: u64,
        /// Total player slots including the host.
        slots: u8,
    },
    /// Server → host: the session's assigned id.
    Registered {
        /// The new session's id.
        id: SessionId,
    },
    /// Host: remove the session.
    Unregister {
        /// Which session.
        id: SessionId,
    },
    /// Host: keep the session alive, piggybacking session health.
    ///
    /// The counters are cumulative since session start, taken from the
    /// host's `SessionStats` and snapshot-ring telemetry; all are zero
    /// for lockstep sessions.
    Heartbeat {
        /// Which session.
        id: SessionId,
        /// Rollback repairs executed by the host so far.
        rollbacks: u64,
        /// Frames re-executed across those repairs.
        resimulated_frames: u64,
        /// Deepest single rollback, in frames.
        max_rollback_depth: u64,
        /// Checkpoint delta-vs-full compression ratio in thousandths
        /// (4000 = the snapshot ring stores 4x less than full copies;
        /// zero until the host reports one).
        compression_ratio_milli: u64,
        /// Cumulative bytes the snapshot ring actually captured — the
        /// dirty-page subsets, not the full images they stand in for.
        snapshot_bytes_saved: u64,
        /// Cumulative bytes copied back by bitmap-guided rollback
        /// restores (full-image bytes for saturated restores).
        snapshot_bytes_restored: u64,
        /// Cumulative snapshot buffer-pool reuse hits on the host.
        pool_hits: u64,
        /// Telemetry events evicted from the host's flight-recorder ring
        /// before they could be drained or dumped.
        dropped_events: u64,
        /// The subset of `dropped_events` that were frame-lifecycle trace
        /// spans — lost tracing fidelity, flagged so an operator knows a
        /// trace dump from this host has holes.
        dropped_spans: u64,
    },
    /// Client: list open sessions.
    List,
    /// Server → client: current sessions.
    Listing {
        /// Up to [`MAX_LISTED`] open sessions.
        sessions: Vec<SessionEntry>,
    },
    /// Client: claim a slot.
    Join {
        /// Which session.
        id: SessionId,
    },
    /// Server → client: slot granted.
    Joined {
        /// Which session.
        id: SessionId,
        /// The host to connect the game session to.
        host: PeerId,
        /// The site number assigned to this client (1-based; 0 is the host).
        site: u8,
        /// Game image hash to verify against.
        rom_hash: u64,
    },
    /// Server → client: slot refused.
    Refused {
        /// Which session.
        id: SessionId,
        /// Why.
        reason: JoinRefusal,
    },
    /// Operator: ask the server for its metrics.
    MetricsRequest,
    /// Server → operator: Prometheus-style text exposition of the server's
    /// metrics registry.
    MetricsReport {
        /// The exposition, truncated to [`MAX_METRICS_TEXT`] bytes.
        text: String,
    },
}

/// Errors decoding a lobby datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LobbyWireError {
    /// Not a lobby datagram.
    BadMagic,
    /// Unsupported version.
    BadVersion(u8),
    /// Unknown message type.
    UnknownType(u8),
    /// Datagram shorter than advertised.
    Truncated,
    /// A length field exceeds its cap.
    TooLarge,
    /// Name bytes are not UTF-8.
    BadName,
}

impl fmt::Display for LobbyWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LobbyWireError::BadMagic => write!(f, "not a lobby datagram"),
            LobbyWireError::BadVersion(v) => write!(f, "unsupported lobby version {v}"),
            LobbyWireError::UnknownType(t) => write!(f, "unknown lobby message type {t}"),
            LobbyWireError::Truncated => write!(f, "lobby datagram truncated"),
            LobbyWireError::TooLarge => write!(f, "lobby length field exceeds cap"),
            LobbyWireError::BadName => write!(f, "session name is not valid UTF-8"),
        }
    }
}

impl Error for LobbyWireError {}

mod ty {
    pub const REGISTER: u8 = 1;
    pub const REGISTERED: u8 = 2;
    pub const UNREGISTER: u8 = 3;
    pub const HEARTBEAT: u8 = 4;
    pub const LIST: u8 = 5;
    pub const LISTING: u8 = 6;
    pub const JOIN: u8 = 7;
    pub const JOINED: u8 = 8;
    pub const REFUSED: u8 = 9;
    pub const METRICS_REQUEST: u8 = 10;
    pub const METRICS_REPORT: u8 = 11;
}

/// Truncates a metrics exposition to `MAX_METRICS_TEXT` bytes, cutting at
/// the last complete line so the result still parses.
fn truncate_exposition(text: &str) -> &[u8] {
    let bytes = text.as_bytes();
    if bytes.len() <= MAX_METRICS_TEXT {
        return bytes;
    }
    let head = bytes
        .split_at_checked(MAX_METRICS_TEXT)
        .map_or(bytes, |(head, _)| head);
    let cut = head.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    head.get(..cut).unwrap_or(&[])
}

/// Truncates a session name to at most `MAX_NAME` bytes, backing up to a
/// UTF-8 character boundary so the result stays valid text.
fn truncate_name(name: &str) -> &[u8] {
    if name.len() <= MAX_NAME {
        return name.as_bytes();
    }
    let mut cut = MAX_NAME;
    while cut > 0 && !name.is_char_boundary(cut) {
        cut -= 1;
    }
    name.get(..cut).map_or(&[], str::as_bytes)
}

impl LobbyMessage {
    /// Encodes to one datagram payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(MAGIC);
        b.put_u8(VERSION);
        match self {
            LobbyMessage::Register {
                name,
                rom_hash,
                slots,
            } => {
                b.put_u8(ty::REGISTER);
                let name = truncate_name(name);
                b.put_u8(name.len() as u8);
                b.put_slice(name);
                b.put_u64_le(*rom_hash);
                b.put_u8(*slots);
            }
            LobbyMessage::Registered { id } => {
                b.put_u8(ty::REGISTERED);
                b.put_u32_le(id.0);
            }
            LobbyMessage::Unregister { id } => {
                b.put_u8(ty::UNREGISTER);
                b.put_u32_le(id.0);
            }
            LobbyMessage::Heartbeat {
                id,
                rollbacks,
                resimulated_frames,
                max_rollback_depth,
                compression_ratio_milli,
                snapshot_bytes_saved,
                snapshot_bytes_restored,
                pool_hits,
                dropped_events,
                dropped_spans,
            } => {
                b.put_u8(ty::HEARTBEAT);
                b.put_u32_le(id.0);
                b.put_u64_le(*rollbacks);
                b.put_u64_le(*resimulated_frames);
                b.put_u64_le(*max_rollback_depth);
                b.put_u64_le(*compression_ratio_milli);
                b.put_u64_le(*snapshot_bytes_saved);
                b.put_u64_le(*snapshot_bytes_restored);
                b.put_u64_le(*pool_hits);
                b.put_u64_le(*dropped_events);
                b.put_u64_le(*dropped_spans);
            }
            LobbyMessage::List => b.put_u8(ty::LIST),
            LobbyMessage::Listing { sessions } => {
                b.put_u8(ty::LISTING);
                b.put_u8(sessions.len().min(MAX_LISTED) as u8);
                for s in sessions.iter().take(MAX_LISTED) {
                    b.put_u32_le(s.id.0);
                    let name = truncate_name(&s.name);
                    b.put_u8(name.len() as u8);
                    b.put_slice(name);
                    b.put_u64_le(s.rom_hash);
                    b.put_u8(s.slots);
                    b.put_u8(s.free);
                    b.put_u8(s.host.0);
                }
            }
            LobbyMessage::Join { id } => {
                b.put_u8(ty::JOIN);
                b.put_u32_le(id.0);
            }
            LobbyMessage::Joined {
                id,
                host,
                site,
                rom_hash,
            } => {
                b.put_u8(ty::JOINED);
                b.put_u32_le(id.0);
                b.put_u8(host.0);
                b.put_u8(*site);
                b.put_u64_le(*rom_hash);
            }
            LobbyMessage::Refused { id, reason } => {
                b.put_u8(ty::REFUSED);
                b.put_u32_le(id.0);
                b.put_u8(match reason {
                    JoinRefusal::Unknown => 0,
                    JoinRefusal::Full => 1,
                });
            }
            LobbyMessage::MetricsRequest => b.put_u8(ty::METRICS_REQUEST),
            LobbyMessage::MetricsReport { text } => {
                b.put_u8(ty::METRICS_REPORT);
                let text = truncate_exposition(text);
                b.put_u32_le(text.len() as u32);
                b.put_slice(text);
            }
        }
        b.to_vec()
    }

    /// Decodes one datagram.
    ///
    /// # Errors
    ///
    /// Any [`LobbyWireError`]; decoding arbitrary bytes never panics.
    pub fn decode(data: &[u8]) -> Result<LobbyMessage, LobbyWireError> {
        let mut b = data;
        if b.remaining() < 3 {
            return Err(LobbyWireError::Truncated);
        }
        if b.get_u8() != MAGIC {
            return Err(LobbyWireError::BadMagic);
        }
        let v = b.get_u8();
        if v != VERSION {
            return Err(LobbyWireError::BadVersion(v));
        }
        let t = b.get_u8();
        macro_rules! need {
            ($n:expr) => {
                if b.remaining() < $n {
                    return Err(LobbyWireError::Truncated);
                }
            };
        }
        fn get_name(b: &mut &[u8]) -> Result<String, LobbyWireError> {
            if b.remaining() < 1 {
                return Err(LobbyWireError::Truncated);
            }
            let n = b.get_u8() as usize;
            if n > MAX_NAME {
                return Err(LobbyWireError::TooLarge);
            }
            let Some(raw) = b.try_take(n) else {
                return Err(LobbyWireError::Truncated);
            };
            String::from_utf8(raw.to_vec()).map_err(|_| LobbyWireError::BadName)
        }
        Ok(match t {
            ty::REGISTER => {
                let name = get_name(&mut b)?;
                need!(9);
                LobbyMessage::Register {
                    name,
                    rom_hash: b.get_u64_le(),
                    slots: b.get_u8(),
                }
            }
            ty::REGISTERED => {
                need!(4);
                LobbyMessage::Registered {
                    id: SessionId(b.get_u32_le()),
                }
            }
            ty::UNREGISTER => {
                need!(4);
                LobbyMessage::Unregister {
                    id: SessionId(b.get_u32_le()),
                }
            }
            ty::HEARTBEAT => {
                need!(4 + 8 * 9);
                LobbyMessage::Heartbeat {
                    id: SessionId(b.get_u32_le()),
                    rollbacks: b.get_u64_le(),
                    resimulated_frames: b.get_u64_le(),
                    max_rollback_depth: b.get_u64_le(),
                    compression_ratio_milli: b.get_u64_le(),
                    snapshot_bytes_saved: b.get_u64_le(),
                    snapshot_bytes_restored: b.get_u64_le(),
                    pool_hits: b.get_u64_le(),
                    dropped_events: b.get_u64_le(),
                    dropped_spans: b.get_u64_le(),
                }
            }
            ty::LIST => LobbyMessage::List,
            ty::LISTING => {
                need!(1);
                let n = b.get_u8() as usize;
                if n > MAX_LISTED {
                    return Err(LobbyWireError::TooLarge);
                }
                let mut sessions = Vec::with_capacity(n);
                for _ in 0..n {
                    need!(4);
                    let id = SessionId(b.get_u32_le());
                    let name = get_name(&mut b)?;
                    need!(11);
                    sessions.push(SessionEntry {
                        id,
                        name,
                        rom_hash: b.get_u64_le(),
                        slots: b.get_u8(),
                        free: b.get_u8(),
                        host: PeerId(b.get_u8()),
                    });
                }
                LobbyMessage::Listing { sessions }
            }
            ty::JOIN => {
                need!(4);
                LobbyMessage::Join {
                    id: SessionId(b.get_u32_le()),
                }
            }
            ty::JOINED => {
                need!(4 + 1 + 1 + 8);
                LobbyMessage::Joined {
                    id: SessionId(b.get_u32_le()),
                    host: PeerId(b.get_u8()),
                    site: b.get_u8(),
                    rom_hash: b.get_u64_le(),
                }
            }
            ty::REFUSED => {
                need!(5);
                LobbyMessage::Refused {
                    id: SessionId(b.get_u32_le()),
                    reason: if b.get_u8() == 1 {
                        JoinRefusal::Full
                    } else {
                        JoinRefusal::Unknown
                    },
                }
            }
            ty::METRICS_REQUEST => LobbyMessage::MetricsRequest,
            ty::METRICS_REPORT => {
                need!(4);
                let n = b.get_u32_le() as usize;
                if n > MAX_METRICS_TEXT {
                    return Err(LobbyWireError::TooLarge);
                }
                let Some(raw) = b.try_take(n) else {
                    return Err(LobbyWireError::Truncated);
                };
                let text = String::from_utf8(raw.to_vec()).map_err(|_| LobbyWireError::BadName)?;
                LobbyMessage::MetricsReport { text }
            }
            other => return Err(LobbyWireError::UnknownType(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<LobbyMessage> {
        vec![
            LobbyMessage::Register {
                name: "Friday Night SF2".into(),
                rom_hash: 0xABCD,
                slots: 2,
            },
            LobbyMessage::Registered { id: SessionId(7) },
            LobbyMessage::Unregister { id: SessionId(7) },
            LobbyMessage::Heartbeat {
                id: SessionId(7),
                rollbacks: 12,
                resimulated_frames: 48,
                max_rollback_depth: 9,
                compression_ratio_milli: 4200,
                snapshot_bytes_saved: 96_000,
                snapshot_bytes_restored: 12_000,
                pool_hits: 512,
                dropped_events: 17,
                dropped_spans: 5,
            },
            LobbyMessage::List,
            LobbyMessage::Listing {
                sessions: vec![
                    SessionEntry {
                        id: SessionId(1),
                        name: "pong room".into(),
                        rom_hash: 1,
                        slots: 2,
                        free: 1,
                        host: PeerId(0),
                    },
                    SessionEntry {
                        id: SessionId(2),
                        name: "4p shooter".into(),
                        rom_hash: 2,
                        slots: 4,
                        free: 3,
                        host: PeerId(9),
                    },
                ],
            },
            LobbyMessage::Join { id: SessionId(1) },
            LobbyMessage::Joined {
                id: SessionId(1),
                host: PeerId(0),
                site: 1,
                rom_hash: 1,
            },
            LobbyMessage::Refused {
                id: SessionId(1),
                reason: JoinRefusal::Full,
            },
            LobbyMessage::Refused {
                id: SessionId(9),
                reason: JoinRefusal::Unknown,
            },
            LobbyMessage::MetricsRequest,
            LobbyMessage::MetricsReport {
                text: "# TYPE lobby_sessions gauge\nlobby_sessions 3\n".into(),
            },
        ]
    }

    #[test]
    fn roundtrip_every_message() {
        for m in samples() {
            assert_eq!(LobbyMessage::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn long_names_are_truncated_on_encode() {
        let m = LobbyMessage::Register {
            name: "x".repeat(500),
            rom_hash: 0,
            slots: 2,
        };
        let decoded = LobbyMessage::decode(&m.encode()).unwrap();
        match decoded {
            LobbyMessage::Register { name, .. } => assert_eq!(name.len(), MAX_NAME),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_metrics_report_truncates_at_a_line_boundary() {
        let line = "coplay_lobby_requests_total 1234567890\n";
        let text = line.repeat(MAX_METRICS_TEXT / line.len() + 10);
        let m = LobbyMessage::MetricsReport { text };
        match LobbyMessage::decode(&m.encode()).unwrap() {
            LobbyMessage::MetricsReport { text } => {
                assert!(text.len() <= MAX_METRICS_TEXT);
                assert!(text.ends_with('\n'), "cut at a complete line");
                assert_eq!(text.len() % line.len(), 0, "only whole lines kept");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(LobbyMessage::decode(&[]), Err(LobbyWireError::Truncated));
        assert_eq!(
            LobbyMessage::decode(&[0x00, VERSION, 1]),
            Err(LobbyWireError::BadMagic)
        );
        assert_eq!(
            LobbyMessage::decode(&[MAGIC, 9, 1]),
            Err(LobbyWireError::BadVersion(9))
        );
        assert_eq!(
            LobbyMessage::decode(&[MAGIC, VERSION, 200]),
            Err(LobbyWireError::UnknownType(200))
        );
    }

    #[test]
    fn truncated_payloads_rejected() {
        for m in samples() {
            let mut bytes = m.encode();
            if bytes.len() > 3 {
                bytes.truncate(bytes.len() - 1);
                assert!(
                    LobbyMessage::decode(&bytes).is_err(),
                    "truncated {m:?} decoded"
                );
            }
        }
    }
}
