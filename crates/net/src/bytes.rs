//! Minimal in-tree byte-buffer utilities for wire codecs.
//!
//! A small subset of the familiar `bytes`-crate API — enough for the
//! little-endian datagram codecs in `coplay-sync` and `coplay-lobby` —
//! implemented locally because the build environment is offline. Reads
//! are cursor-style over a plain `&[u8]` and are **total**: a getter on
//! a too-short slice drains it and returns zero instead of panicking,
//! so decoders stay panic-free on arbitrary bytes even if a bounds
//! check is missed. Decoders still gate correctness on
//! [`Buf::remaining`] (wrapped in their `need!` macros).

use std::ops::Deref;
use std::sync::Arc;

/// Cursor-style reads from a shrinking `&[u8]`.
///
/// Each getter consumes its bytes from the front of the slice. All
/// reads are total: on underflow a getter drains the slice and returns
/// zero, so no input — however truncated or adversarial — can panic a
/// decoder. Callers that need to distinguish "read zero" from "ran
/// out" check [`remaining`](Buf::remaining) first (the codecs wrap
/// that in a `need!` macro) or use [`try_take`](Buf::try_take).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes (all remaining bytes if fewer are left).
    fn advance(&mut self, n: usize);
    /// Consumes `n` bytes and returns them, or `None` (consuming
    /// nothing) if fewer than `n` remain.
    fn try_take(&mut self, n: usize) -> Option<&[u8]>;
    /// Reads one byte (`0` on underflow).
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16` (`0` on underflow).
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32` (`0` on underflow).
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64` (`0` on underflow).
    fn get_u64_le(&mut self) -> u64;
}

/// Reads a fixed-width little-endian integer, draining the slice and
/// yielding zero when not enough bytes remain.
macro_rules! get_le {
    ($cursor:expr, $ty:ty) => {{
        let s = *$cursor;
        match s.split_first_chunk() {
            Some((head, rest)) => {
                *$cursor = rest;
                <$ty>::from_le_bytes(*head)
            }
            None => {
                *$cursor = &[];
                0
            }
        }
    }};
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        let s = *self;
        *self = s.split_at_checked(n).map_or(&[], |(_, rest)| rest);
    }

    fn try_take(&mut self, n: usize) -> Option<&[u8]> {
        let s = *self;
        let (head, rest) = s.split_at_checked(n)?;
        *self = rest;
        Some(head)
    }

    fn get_u8(&mut self) -> u8 {
        let s = *self;
        match s.split_first() {
            Some((&v, rest)) => {
                *self = rest;
                v
            }
            None => 0,
        }
    }

    fn get_u16_le(&mut self) -> u16 {
        get_le!(self, u16)
    }

    fn get_u32_le(&mut self) -> u32 {
        get_le!(self, u32)
    }

    fn get_u64_le(&mut self) -> u64 {
        get_le!(self, u64)
    }
}

/// Little-endian append helpers for growable byte buffers.
///
/// Implemented for `Vec<u8>` so codecs can encode straight into a
/// caller-owned, reusable buffer instead of allocating per datagram.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a byte slice verbatim.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer with little-endian append helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` in little-endian order.
    pub fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a byte slice verbatim.
    pub fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

/// An immutable, cheaply clonable byte string (shared via `Arc`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty byte string.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new shared byte string.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
        }
    }

    /// Wraps a static slice (copied once; the name mirrors the familiar
    /// constructor so call sites read the same).
    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes::copy_from_slice(src)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xAB);
        w.put_u16_le(0x0102);
        w.put_u32_le(0x0304_0506);
        w.put_u64_le(0x0708_090A_0B0C_0D0E);
        w.put_slice(b"xy");
        let v = w.to_vec();
        assert_eq!(v.len(), 17);

        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), 17);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x0102);
        assert_eq!(r.get_u32_le(), 0x0304_0506);
        assert_eq!(r.get_u64_le(), 0x0708_090A_0B0C_0D0E);
        assert_eq!(r, b"xy");
        r.advance(2);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn vec_bufmut_matches_bytesmut() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xAB);
        w.put_u16_le(0x0102);
        w.put_u32_le(0x0304_0506);
        w.put_u64_le(0x0708_090A_0B0C_0D0E);
        w.put_slice(b"xy");

        let mut v: Vec<u8> = Vec::new();
        BufMut::put_u8(&mut v, 0xAB);
        BufMut::put_u16_le(&mut v, 0x0102);
        BufMut::put_u32_le(&mut v, 0x0304_0506);
        BufMut::put_u64_le(&mut v, 0x0708_090A_0B0C_0D0E);
        BufMut::put_slice(&mut v, b"xy");
        assert_eq!(v, w.to_vec());
    }

    #[test]
    fn underflow_drains_and_returns_zero() {
        let mut r: &[u8] = &[0x01];
        assert_eq!(r.get_u32_le(), 0, "one byte cannot make a u32");
        assert_eq!(r.remaining(), 0, "underflow drains the cursor");
        assert_eq!(r.get_u8(), 0);
        assert_eq!(r.get_u16_le(), 0);
        assert_eq!(r.get_u64_le(), 0);

        let mut r: &[u8] = &[1, 2, 3];
        r.advance(usize::MAX);
        assert_eq!(r.remaining(), 0, "oversized advance drains, not panics");
    }

    #[test]
    fn try_take_is_all_or_nothing() {
        let mut r: &[u8] = &[1, 2, 3, 4];
        assert_eq!(r.try_take(2), Some(&[1u8, 2][..]));
        assert_eq!(r.try_take(3), None, "only 2 bytes left");
        assert_eq!(r.remaining(), 2, "failed take consumes nothing");
        assert_eq!(r.try_take(2), Some(&[3u8, 4][..]));
        assert_eq!(r.try_take(0), Some(&[][..]));
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*a, &[1, 2, 3]);
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
        assert!(Bytes::new().is_empty());
    }
}
