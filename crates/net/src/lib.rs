//! Network substrate for coplay: the unreliable-datagram transport the
//! lockstep protocol runs on, a Netem-style impairment model, an in-memory
//! simulated network driven by virtual time, and a real UDP transport.
//!
//! The ICDCS 2009 paper evaluates its synchronization algorithm between two
//! PCs bridged by a Linux box running the `netem` queueing discipline. This
//! crate replaces that hardware with software:
//!
//! * [`Transport`] — non-blocking unreliable datagrams (the UDP service
//!   contract of §3.1).
//! * [`NetemConfig`] / [`NetemChannel`] — per-packet delay, jitter,
//!   correlated loss, duplication, reordering, and rate limiting.
//! * [`SimNetwork`] / [`SimSocket`] — a shared fabric of impaired links in
//!   virtual time, used by the experiment harness.
//! * [`UdpTransport`] — real sockets for live play.
//! * [`loopback`] — an in-process perfect link for tests.
//!
//! # Examples
//!
//! ```
//! use coplay_clock::{Clock, SimDuration, VirtualClock};
//! use coplay_net::{NetemConfig, PeerId, SimNetwork, Transport};
//!
//! // The paper's 140ms-RTT threshold condition: 70ms each way.
//! let clock = VirtualClock::new();
//! let net = SimNetwork::shared(clock.clone());
//! let cfg = NetemConfig::with_rtt(SimDuration::from_millis(140));
//! SimNetwork::link_pair(&net, PeerId(0), PeerId(1), cfg, 42);
//!
//! let mut site0 = SimNetwork::socket(&net, PeerId(0));
//! site0.send(PeerId(1), &[1, 2, 3])?;
//! assert_eq!(net.borrow_mut().next_delivery_time(),
//!            Some(clock.now() + SimDuration::from_millis(70)));
//! # Ok::<(), coplay_net::TransportError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bytes;
mod netem;
pub mod rng;
mod sim;
mod transport;
mod udp;

pub use netem::{ChannelStats, JitterDistribution, NetemChannel, NetemConfig, PacketFate};
pub use rng::DetRng;
pub use sim::{SimNetwork, SimSocket};
pub use transport::{loopback, LoopbackTransport, PeerId, Transport, TransportError};
pub use udp::UdpTransport;
