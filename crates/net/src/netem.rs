//! A Netem-style network impairment model.
//!
//! The paper's evaluation (§4) places a Linux box running the `netem`
//! queueing discipline between the two gaming PCs and sweeps the round-trip
//! time from 0 to 400 ms. This module reproduces netem's per-packet
//! behaviour — fixed delay, jitter drawn from a distribution, correlated
//! loss, duplication, reordering, and rate limiting with a bounded queue —
//! driven by a seeded RNG so whole experiments are reproducible.
//!
//! A [`NetemChannel`] models **one direction** of a link: feed it a packet
//! (time + size) and it answers with zero, one, or two delivery times.

use crate::rng::DetRng;
use coplay_clock::{SimDuration, SimTime};

/// Distribution from which per-packet jitter is drawn.
///
/// Real netem defaults to uniform and offers table-driven normal/pareto
/// distributions; these are the analytic equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JitterDistribution {
    /// Uniform on `[-jitter, +jitter]` (netem's default).
    #[default]
    Uniform,
    /// Normal with `σ = jitter`, truncated at ±3σ like netem's table.
    Normal,
    /// Heavy-tailed: exponential with mean `jitter`, one-sided (late only),
    /// truncated at 6× the mean. Approximates netem's pareto table.
    HeavyTail,
}

/// Configuration of one direction of an impaired link.
///
/// Use the builder-style setters; the zero-impairment default is a perfect
/// wire.
///
/// # Examples
///
/// ```
/// use coplay_clock::SimDuration;
/// use coplay_net::NetemConfig;
///
/// // 70ms one-way delay +/- 3ms uniform jitter, 1% correlated loss.
/// let cfg = NetemConfig::new()
///     .delay(SimDuration::from_millis(70))
///     .jitter(SimDuration::from_millis(3))
///     .loss(0.01)
///     .loss_correlation(0.25);
/// assert_eq!(cfg.base_delay(), SimDuration::from_millis(70));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetemConfig {
    delay: SimDuration,
    jitter: SimDuration,
    jitter_dist: JitterDistribution,
    loss: f64,
    loss_correlation: f64,
    duplicate: f64,
    reorder: f64,
    rate_bytes_per_sec: Option<u64>,
    queue_packets: usize,
    preserve_order: bool,
    tx_slice: SimDuration,
}

impl Default for NetemConfig {
    fn default() -> Self {
        NetemConfig {
            delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            jitter_dist: JitterDistribution::Uniform,
            loss: 0.0,
            loss_correlation: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            rate_bytes_per_sec: None,
            queue_packets: 1000,
            preserve_order: false,
            tx_slice: SimDuration::ZERO,
        }
    }
}

impl NetemConfig {
    /// A perfect wire: zero delay, no impairments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: a symmetric link whose **round-trip** time is `rtt`
    /// (each direction gets `rtt / 2`), as in the paper's sweeps.
    pub fn with_rtt(rtt: SimDuration) -> Self {
        Self::new().delay(rtt / 2)
    }

    /// Sets the base one-way delay.
    pub fn delay(mut self, delay: SimDuration) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the jitter magnitude (interpretation depends on the
    /// [`JitterDistribution`]).
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Selects the jitter distribution.
    pub fn jitter_distribution(mut self, dist: JitterDistribution) -> Self {
        self.jitter_dist = dist;
        self
    }

    /// Sets the packet loss probability in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    pub fn loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        self.loss = loss;
        self
    }

    /// Sets the loss burst correlation in `[0, 1]` (0 = independent drops).
    ///
    /// # Panics
    ///
    /// Panics if `corr` is not within `[0, 1]`.
    pub fn loss_correlation(mut self, corr: f64) -> Self {
        assert!((0.0..=1.0).contains(&corr), "correlation must be in [0,1]");
        self.loss_correlation = corr;
        self
    }

    /// Sets the packet duplication probability in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `dup` is not within `[0, 1]`.
    pub fn duplicate(mut self, dup: f64) -> Self {
        assert!((0.0..=1.0).contains(&dup), "duplicate must be in [0,1]");
        self.duplicate = dup;
        self
    }

    /// Sets the reordering probability in `[0, 1]`: a reordered packet skips
    /// the jitter/queue path and arrives after the base delay only, letting
    /// it overtake in-flight traffic (netem's `reorder` semantics).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn reorder(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "reorder must be in [0,1]");
        self.reorder = p;
        self
    }

    /// Limits throughput to `bytes_per_sec`, with serialization delay and a
    /// bounded queue ahead of the delay stage.
    pub fn rate(mut self, bytes_per_sec: u64) -> Self {
        self.rate_bytes_per_sec = Some(bytes_per_sec.max(1));
        self
    }

    /// Sets the rate-limiter queue capacity in packets (default 1000).
    pub fn queue_limit(mut self, packets: usize) -> Self {
        self.queue_packets = packets.max(1);
        self
    }

    /// Adds a one-sided uniform delay in `[0, slice)` to every packet,
    /// modelling the sender-side thread time slice the paper's §4.2
    /// threshold decomposition charges 5 ms (half a 10 ms slice) to.
    pub fn tx_slice(mut self, slice: SimDuration) -> Self {
        self.tx_slice = slice;
        self
    }

    /// Forces FIFO delivery even under jitter (netem does this only when
    /// jitter is configured with `reorder` disabled and a rate is set; off by
    /// default here, i.e. jitter may reorder).
    pub fn preserve_order(mut self, on: bool) -> Self {
        self.preserve_order = on;
        self
    }

    /// The configured base one-way delay.
    pub fn base_delay(&self) -> SimDuration {
        self.delay
    }

    /// The configured loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.loss
    }
}

/// What happened to one packet offered to a [`NetemChannel`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PacketFate {
    /// Times at which copies of the packet arrive (empty = dropped;
    /// two entries = duplicated).
    pub deliveries: Vec<SimTime>,
    /// The packet was dropped by the loss process.
    pub lost: bool,
    /// The packet was dropped by queue overflow.
    pub overflowed: bool,
    /// The packet took the reorder fast path.
    pub reordered: bool,
}

/// Per-channel running counters, for experiment reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Packets offered to the channel.
    pub offered: u64,
    /// Packet copies scheduled for delivery (>= delivered packets).
    pub delivered: u64,
    /// Packets dropped by the loss process.
    pub lost: u64,
    /// Packets dropped by rate-limiter queue overflow.
    pub overflowed: u64,
    /// Extra copies created by duplication.
    pub duplicated: u64,
    /// Packets that took the reorder fast path.
    pub reordered: u64,
}

/// One direction of an impaired link: applies [`NetemConfig`] to each packet.
///
/// # Examples
///
/// ```
/// use coplay_clock::{SimDuration, SimTime};
/// use coplay_net::{NetemChannel, NetemConfig};
///
/// let cfg = NetemConfig::new().delay(SimDuration::from_millis(50));
/// let mut ch = NetemChannel::new(cfg, 7);
/// let fate = ch.process(SimTime::ZERO, 64);
/// assert_eq!(fate.deliveries, vec![SimTime::from_millis(50)]);
/// ```
#[derive(Debug)]
pub struct NetemChannel {
    config: NetemConfig,
    rng: DetRng,
    last_lost: bool,
    busy_until: SimTime,
    last_scheduled: SimTime,
    stats: ChannelStats,
}

impl NetemChannel {
    /// Creates a channel applying `config`, with RNG seeded by `seed`.
    pub fn new(config: NetemConfig, seed: u64) -> Self {
        NetemChannel {
            config,
            rng: DetRng::seed_from_u64(seed),
            last_lost: false,
            busy_until: SimTime::ZERO,
            last_scheduled: SimTime::ZERO,
            stats: ChannelStats::default(),
        }
    }

    /// The channel's configuration.
    pub fn config(&self) -> &NetemConfig {
        &self.config
    }

    /// Replaces the impairment configuration mid-run (links can be degraded
    /// during an experiment).
    pub fn set_config(&mut self, config: NetemConfig) {
        self.config = config;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Decides the fate of one `size`-byte packet entering at `now`.
    pub fn process(&mut self, now: SimTime, size: usize) -> PacketFate {
        self.stats.offered += 1;
        let mut fate = PacketFate::default();

        // 1. Loss, as a two-state Markov chain whose stationary probability
        // equals `loss` and whose burstiness grows with `loss_correlation`.
        if self.config.loss > 0.0 {
            let p = if self.last_lost {
                self.config.loss + (1.0 - self.config.loss) * self.config.loss_correlation
            } else {
                self.config.loss * (1.0 - self.config.loss_correlation)
            };
            if self.rng.next_f64() < p {
                self.last_lost = true;
                self.stats.lost += 1;
                fate.lost = true;
                return fate;
            }
            self.last_lost = false;
        }

        // 2. Rate limiting: serialization delay plus a bounded FIFO queue.
        let mut exit_ready = now;
        if let Some(rate) = self.config.rate_bytes_per_sec {
            let ser = SimDuration::from_micros((size as u64 * 1_000_000).div_ceil(rate));
            let start = self.busy_until.max(now);
            let backlog = start.saturating_since(now).as_micros() / ser.as_micros().max(1);
            if backlog as usize >= self.config.queue_packets {
                self.stats.overflowed += 1;
                fate.overflowed = true;
                return fate;
            }
            self.busy_until = start + ser;
            exit_ready = self.busy_until;
        }

        // 3. Reorder fast path: base delay only, may overtake queued traffic.
        let reordered = self.config.reorder > 0.0 && self.rng.next_f64() < self.config.reorder;
        let mut delivery = if reordered {
            self.stats.reordered += 1;
            fate.reordered = true;
            now + self.config.delay
        } else {
            let mut t = exit_ready + self.sample_total_delay();
            if self.config.preserve_order && t < self.last_scheduled {
                t = self.last_scheduled;
            }
            t
        };
        if delivery < now {
            delivery = now;
        }
        if !reordered {
            self.last_scheduled = self.last_scheduled.max(delivery);
        }
        fate.deliveries.push(delivery);
        self.stats.delivered += 1;

        // 4. Duplication: netem emits the copy back-to-back with the original.
        if self.config.duplicate > 0.0 && self.rng.next_f64() < self.config.duplicate {
            fate.deliveries
                .push(delivery + SimDuration::from_micros(100));
            self.stats.duplicated += 1;
            self.stats.delivered += 1;
        }

        fate
    }

    /// Samples `delay + tx_slice + jitter`, clamped so the total is never
    /// negative.
    fn sample_total_delay(&mut self) -> SimDuration {
        let slice = self.config.tx_slice.as_micros();
        let slice_extra = if slice == 0 {
            0
        } else {
            self.rng.range_u64(slice)
        };
        let base = (self.config.delay.as_micros() + slice_extra) as f64;
        let j = self.config.jitter.as_micros();
        if j == 0 {
            return self.config.delay + SimDuration::from_micros(slice_extra);
        }
        let jf = j as f64;
        let offset: f64 = match self.config.jitter_dist {
            JitterDistribution::Uniform => self.rng.range_f64(-jf, jf),
            JitterDistribution::Normal => {
                // Box-Muller, truncated at +/-3 sigma like netem's table.
                let u1: f64 = self.rng.next_f64().max(f64::MIN_POSITIVE);
                let u2: f64 = self.rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (z * jf).clamp(-3.0 * jf, 3.0 * jf)
            }
            JitterDistribution::HeavyTail => {
                let u: f64 = self.rng.next_f64().max(f64::MIN_POSITIVE);
                (-u.ln() * jf).min(6.0 * jf)
            }
        };
        SimDuration::from_micros((base + offset).max(0.0).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn perfect_wire_delivers_immediately() {
        let mut ch = NetemChannel::new(NetemConfig::new(), 1);
        let fate = ch.process(SimTime::from_millis(10), 100);
        assert_eq!(fate.deliveries, vec![SimTime::from_millis(10)]);
        assert!(!fate.lost);
    }

    #[test]
    fn with_rtt_splits_delay() {
        let cfg = NetemConfig::with_rtt(ms(140));
        assert_eq!(cfg.base_delay(), ms(70));
    }

    #[test]
    fn fixed_delay_applied() {
        let mut ch = NetemChannel::new(NetemConfig::new().delay(ms(30)), 1);
        let fate = ch.process(SimTime::ZERO, 100);
        assert_eq!(fate.deliveries, vec![SimTime::from_millis(30)]);
    }

    #[test]
    fn loss_rate_is_approximately_honoured() {
        let mut ch = NetemChannel::new(NetemConfig::new().loss(0.2), 42);
        let n = 20_000;
        let mut lost = 0;
        for i in 0..n {
            if ch.process(SimTime::from_micros(i), 100).lost {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn correlated_loss_keeps_stationary_rate_but_bursts() {
        let mut ch = NetemChannel::new(NetemConfig::new().loss(0.1).loss_correlation(0.8), 42);
        let n = 50_000;
        let mut lost = 0;
        let mut bursts = 0;
        let mut prev = false;
        for i in 0..n {
            let l = ch.process(SimTime::from_micros(i), 100).lost;
            if l {
                lost += 1;
                if prev {
                    bursts += 1;
                }
            }
            prev = l;
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "stationary rate {rate}");
        // With correlation 0.8 most losses are inside bursts.
        assert!(
            bursts as f64 / lost as f64 > 0.5,
            "burstiness {} of {}",
            bursts,
            lost
        );
    }

    #[test]
    fn duplication_produces_two_copies() {
        let mut ch = NetemChannel::new(NetemConfig::new().duplicate(1.0), 1);
        let fate = ch.process(SimTime::ZERO, 100);
        assert_eq!(fate.deliveries.len(), 2);
        assert!(fate.deliveries[1] > fate.deliveries[0]);
    }

    #[test]
    fn uniform_jitter_stays_in_bounds() {
        let cfg = NetemConfig::new().delay(ms(50)).jitter(ms(10));
        let mut ch = NetemChannel::new(cfg, 9);
        for i in 0..5_000u64 {
            let fate = ch.process(SimTime::from_millis(i * 100), 100);
            let d = fate.deliveries[0] - SimTime::from_millis(i * 100);
            assert!(d >= ms(40) && d <= ms(60), "delay {d}");
        }
    }

    #[test]
    fn normal_jitter_truncated_at_three_sigma() {
        let cfg = NetemConfig::new()
            .delay(ms(50))
            .jitter(ms(5))
            .jitter_distribution(JitterDistribution::Normal);
        let mut ch = NetemChannel::new(cfg, 9);
        for i in 0..5_000u64 {
            let fate = ch.process(SimTime::from_millis(i * 100), 100);
            let d = fate.deliveries[0] - SimTime::from_millis(i * 100);
            assert!(d >= ms(35) && d <= ms(65), "delay {d}");
        }
    }

    #[test]
    fn heavy_tail_jitter_is_one_sided_late() {
        let cfg = NetemConfig::new()
            .delay(ms(50))
            .jitter(ms(5))
            .jitter_distribution(JitterDistribution::HeavyTail);
        let mut ch = NetemChannel::new(cfg, 9);
        for i in 0..2_000u64 {
            let fate = ch.process(SimTime::from_millis(i * 100), 100);
            let d = fate.deliveries[0] - SimTime::from_millis(i * 100);
            assert!(d >= ms(50) && d <= ms(80), "delay {d}");
        }
    }

    #[test]
    fn jitter_can_reorder_unless_order_preserved() {
        let cfg = NetemConfig::new().delay(ms(50)).jitter(ms(20));
        let mut ch = NetemChannel::new(cfg.clone(), 3);
        let mut prev = SimTime::ZERO;
        let mut inversions = 0;
        for i in 0..1_000u64 {
            let t = SimTime::from_micros(i * 500);
            let d = ch.process(t, 100).deliveries[0];
            if d < prev {
                inversions += 1;
            }
            prev = d;
        }
        assert!(inversions > 0, "expected natural reordering under jitter");

        let mut ch = NetemChannel::new(cfg.preserve_order(true), 3);
        let mut prev = SimTime::ZERO;
        for i in 0..1_000u64 {
            let t = SimTime::from_micros(i * 500);
            let d = ch.process(t, 100).deliveries[0];
            assert!(d >= prev, "FIFO violated");
            prev = d;
        }
    }

    #[test]
    fn reorder_fast_path_overtakes() {
        let cfg = NetemConfig::new()
            .delay(ms(10))
            .jitter(ms(40))
            .jitter_distribution(JitterDistribution::HeavyTail)
            .reorder(0.3);
        let mut ch = NetemChannel::new(cfg, 11);
        let mut reordered = 0;
        for i in 0..2_000u64 {
            let fate = ch.process(SimTime::from_millis(i), 100);
            if fate.reordered {
                reordered += 1;
                let d = fate.deliveries[0] - SimTime::from_millis(i);
                assert_eq!(d, ms(10), "fast path must use base delay only");
            }
        }
        let rate = reordered as f64 / 2_000.0;
        assert!((rate - 0.3).abs() < 0.05, "reorder rate {rate}");
    }

    #[test]
    fn rate_limit_adds_serialization_delay() {
        // 1000 bytes/s, 100-byte packets -> 100ms each.
        let cfg = NetemConfig::new().rate(1_000);
        let mut ch = NetemChannel::new(cfg, 1);
        let a = ch.process(SimTime::ZERO, 100).deliveries[0];
        let b = ch.process(SimTime::ZERO, 100).deliveries[0];
        assert_eq!(a, SimTime::from_millis(100));
        assert_eq!(b, SimTime::from_millis(200));
    }

    #[test]
    fn queue_overflow_drops_tail() {
        let cfg = NetemConfig::new().rate(1_000).queue_limit(2);
        let mut ch = NetemChannel::new(cfg, 1);
        let mut dropped = 0;
        for _ in 0..10 {
            if ch.process(SimTime::ZERO, 100).overflowed {
                dropped += 1;
            }
        }
        assert!(dropped >= 7, "expected most packets dropped, got {dropped}");
        assert_eq!(ch.stats().overflowed, dropped);
    }

    #[test]
    fn stats_accumulate() {
        let mut ch = NetemChannel::new(NetemConfig::new().loss(0.5), 5);
        for i in 0..1_000 {
            ch.process(SimTime::from_micros(i), 64);
        }
        let s = ch.stats();
        assert_eq!(s.offered, 1_000);
        assert_eq!(s.offered, s.delivered + s.lost);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let cfg = NetemConfig::new()
            .delay(ms(20))
            .jitter(ms(10))
            .loss(0.1)
            .duplicate(0.05);
        let run = |seed| {
            let mut ch = NetemChannel::new(cfg.clone(), seed);
            (0..500u64)
                .map(|i| ch.process(SimTime::from_millis(i), 100))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1]")]
    fn invalid_loss_rejected() {
        let _ = NetemConfig::new().loss(1.5);
    }
}
