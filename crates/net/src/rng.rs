//! Small deterministic PRNG for network impairment simulation.
//!
//! The impairment model only needs a fast, seedable, statistically decent
//! generator — not cryptographic strength — and the offline build rules
//! out external crates, so this is a self-contained xoshiro256++ with a
//! splitmix64 seeder (the standard public-domain constructions).

/// A seedable xoshiro256++ generator.
///
/// Identical seeds produce identical streams on every platform, which is
/// what makes impaired-network experiments replayable; see the
/// determinism tests in [`crate::netem`].
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

/// One step of the splitmix64 sequence, used to expand a 64-bit seed into
/// generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range_u64 needs a non-empty range");
        // Multiply-shift range reduction; the bias is < 1/2^64 per draw,
        // far below what the impairment statistics can resolve.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform `f64` in `[lo, hi)` (degenerating to `lo` when `lo == hi`).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "range_f64 bounds out of order");
        lo + self.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_is_roughly_uniform() {
        let mut r = DetRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_u64_is_bounded_and_covers() {
        let mut r = DetRng::seed_from_u64(9);
        let mut hit = [false; 10];
        for _ in 0..1_000 {
            let v = r.range_u64(10);
            assert!(v < 10);
            hit[v as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "all residues reachable");
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = DetRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = r.range_f64(-3.5, 3.5);
            assert!((-3.5..3.5).contains(&v));
        }
    }
}
