//! An in-memory network of impaired links driven by virtual time.
//!
//! [`SimNetwork`] plays the role of the paper's bridging Netem box: every
//! directed pair of peers gets its own [`NetemChannel`], packets in flight
//! live in a deterministic delivery queue, and the simulator advances the
//! network in lockstep with its virtual clock. [`SimSocket`] hands each site
//! a [`Transport`] view of the shared network.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use coplay_clock::{Clock, EventQueue, SimTime, VirtualClock};
use coplay_telemetry::{EventKind, Telemetry};

use crate::netem::{ChannelStats, NetemChannel, NetemConfig};
use crate::transport::{PeerId, Transport, TransportError};

#[derive(Debug)]
struct Flight {
    from: PeerId,
    to: PeerId,
    payload: Vec<u8>,
}

/// The shared, impairment-applying network fabric of a simulation.
///
/// Typical setup: create the network, register peers, configure links (one
/// [`NetemConfig`] per direction), then hand out [`SimSocket`]s via
/// [`SimNetwork::socket`].
///
/// # Examples
///
/// ```
/// use coplay_clock::{Clock, SimDuration, VirtualClock};
/// use coplay_net::{NetemConfig, PeerId, SimNetwork, Transport};
///
/// let clock = VirtualClock::new();
/// let net = SimNetwork::shared(clock.clone());
/// let delay = SimDuration::from_millis(5);
/// SimNetwork::link_pair(&net, PeerId(0), PeerId(1), NetemConfig::new().delay(delay), 1);
///
/// let mut a = SimNetwork::socket(&net, PeerId(0));
/// let mut b = SimNetwork::socket(&net, PeerId(1));
/// a.send(PeerId(1), b"hi")?;
///
/// // Nothing arrives until virtual time passes the link delay.
/// assert_eq!(b.try_recv()?, None);
/// clock.advance(delay);
/// net.borrow_mut().deliver_due(clock.now());
/// assert_eq!(b.try_recv()?, Some((PeerId(0), b"hi".to_vec())));
/// # Ok::<(), coplay_net::TransportError>(())
/// ```
#[derive(Debug)]
pub struct SimNetwork {
    clock: VirtualClock,
    channels: BTreeMap<(PeerId, PeerId), NetemChannel>,
    link_up: BTreeMap<(PeerId, PeerId), bool>,
    queue: EventQueue<Flight>,
    inboxes: BTreeMap<PeerId, VecDeque<(PeerId, Vec<u8>)>>,
    telemetry: Telemetry,
}

impl SimNetwork {
    /// Creates an empty network observing `clock`.
    pub fn new(clock: VirtualClock) -> Self {
        SimNetwork {
            clock,
            channels: BTreeMap::new(),
            link_up: BTreeMap::new(),
            queue: EventQueue::new(),
            inboxes: BTreeMap::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches an observability sink: packet drops (loss, overflow, downed
    /// link) and duplications are recorded, stamped with virtual time.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Creates a network already wrapped for sharing with [`SimSocket`]s.
    pub fn shared(clock: VirtualClock) -> Rc<RefCell<SimNetwork>> {
        Rc::new(RefCell::new(SimNetwork::new(clock)))
    }

    /// Configures the directed link `from → to`.
    ///
    /// `seed` feeds the channel's RNG; use distinct seeds per direction for
    /// independent impairment streams.
    pub fn set_link(&mut self, from: PeerId, to: PeerId, config: NetemConfig, seed: u64) {
        self.channels
            .insert((from, to), NetemChannel::new(config, seed));
        self.link_up.insert((from, to), true);
        self.inboxes.entry(from).or_default();
        self.inboxes.entry(to).or_default();
    }

    /// Configures both directions of a link symmetrically (derives a second
    /// seed for the reverse direction).
    pub fn link_pair(
        net: &Rc<RefCell<SimNetwork>>,
        a: PeerId,
        b: PeerId,
        config: NetemConfig,
        seed: u64,
    ) {
        let mut n = net.borrow_mut();
        n.set_link(a, b, config.clone(), seed);
        n.set_link(b, a, config, seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    }

    /// Creates a [`Transport`] endpoint for `peer` on a shared network.
    pub fn socket(net: &Rc<RefCell<SimNetwork>>, peer: PeerId) -> SimSocket {
        net.borrow_mut().inboxes.entry(peer).or_default();
        SimSocket {
            net: Rc::clone(net),
            id: peer,
        }
    }

    /// Brings the directed link `from → to` up or down. A downed link drops
    /// every packet (used for failure injection; in-flight packets still
    /// arrive).
    pub fn set_link_up(&mut self, from: PeerId, to: PeerId, up: bool) {
        self.link_up.insert((from, to), up);
    }

    /// Replaces the impairment configuration of `from → to` mid-run.
    /// Returns `false` (changing nothing) if the link was never
    /// configured with [`SimNetwork::set_link`].
    pub fn reconfigure_link(&mut self, from: PeerId, to: PeerId, config: NetemConfig) -> bool {
        match self.channels.get_mut(&(from, to)) {
            Some(channel) => {
                channel.set_config(config);
                true
            }
            None => false,
        }
    }

    /// Impairment counters for the directed link, if configured.
    pub fn link_stats(&self, from: PeerId, to: PeerId) -> Option<ChannelStats> {
        self.channels.get(&(from, to)).map(NetemChannel::stats)
    }

    fn send(&mut self, from: PeerId, to: PeerId, payload: &[u8]) -> Result<(), TransportError> {
        let now = self.clock.now();
        let Some(channel) = self.channels.get_mut(&(from, to)) else {
            return Err(TransportError::UnknownPeer(to));
        };
        if !self.link_up.get(&(from, to)).copied().unwrap_or(true) {
            // Downed link: silently eat the packet, exactly like a dead wire.
            self.telemetry.record(
                now,
                EventKind::PacketDropped {
                    from: from.0,
                    to: to.0,
                    overflow: false,
                },
            );
            return Ok(());
        }
        let fate = channel.process(now, payload.len());
        if fate.deliveries.is_empty() {
            self.telemetry.record(
                now,
                EventKind::PacketDropped {
                    from: from.0,
                    to: to.0,
                    overflow: fate.overflowed,
                },
            );
        } else if fate.deliveries.len() > 1 {
            self.telemetry.record(
                now,
                EventKind::PacketDuplicated {
                    from: from.0,
                    to: to.0,
                },
            );
        }
        self.telemetry.counter_add("net_datagrams_sent_total", 1);
        self.telemetry
            .counter_add("net_bytes_sent_total", payload.len() as u64);
        for at in fate.deliveries {
            self.queue.schedule(
                at,
                Flight {
                    from,
                    to,
                    payload: payload.to_vec(),
                },
            );
        }
        Ok(())
    }

    /// The time the next in-flight packet lands, if any.
    pub fn next_delivery_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Moves every packet due at or before `now` into its destination inbox.
    /// Returns the number of deliveries made.
    pub fn deliver_due(&mut self, now: SimTime) -> usize {
        let mut n = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > now {
                break;
            }
            let Some((_, flight)) = self.queue.pop() else {
                break;
            };
            self.telemetry
                .counter_add("net_datagrams_delivered_total", 1);
            self.inboxes
                .entry(flight.to)
                .or_default()
                .push_back((flight.from, flight.payload));
            n += 1;
        }
        n
    }

    /// Number of packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    fn recv(&mut self, at: PeerId) -> Option<(PeerId, Vec<u8>)> {
        self.inboxes.get_mut(&at)?.pop_front()
    }
}

/// A per-peer [`Transport`] endpoint on a shared [`SimNetwork`].
///
/// Sends consult the virtual clock and the directed link's impairments;
/// receives drain the peer's inbox, which the simulator fills by calling
/// [`SimNetwork::deliver_due`] as virtual time advances.
#[derive(Debug)]
pub struct SimSocket {
    net: Rc<RefCell<SimNetwork>>,
    id: PeerId,
}

impl Transport for SimSocket {
    fn local_id(&self) -> PeerId {
        self.id
    }

    fn send(&mut self, to: PeerId, payload: &[u8]) -> Result<(), TransportError> {
        self.net.borrow_mut().send(self.id, to, payload)
    }

    fn try_recv(&mut self) -> Result<Option<(PeerId, Vec<u8>)>, TransportError> {
        Ok(self.net.borrow_mut().recv(self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_clock::SimDuration;

    fn setup(delay_ms: u64) -> (VirtualClock, Rc<RefCell<SimNetwork>>, SimSocket, SimSocket) {
        let clock = VirtualClock::new();
        let net = SimNetwork::shared(clock.clone());
        SimNetwork::link_pair(
            &net,
            PeerId(0),
            PeerId(1),
            NetemConfig::new().delay(SimDuration::from_millis(delay_ms)),
            1,
        );
        let a = SimNetwork::socket(&net, PeerId(0));
        let b = SimNetwork::socket(&net, PeerId(1));
        (clock, net, a, b)
    }

    #[test]
    fn delivery_waits_for_virtual_time() {
        let (clock, net, mut a, mut b) = setup(10);
        a.send(PeerId(1), b"x").unwrap();
        assert_eq!(net.borrow().in_flight(), 1);
        assert!(b.try_recv().unwrap().is_none());

        clock.advance(SimDuration::from_millis(9));
        net.borrow_mut().deliver_due(clock.now());
        assert!(b.try_recv().unwrap().is_none());

        clock.advance(SimDuration::from_millis(1));
        assert_eq!(net.borrow_mut().deliver_due(clock.now()), 1);
        assert_eq!(b.try_recv().unwrap(), Some((PeerId(0), b"x".to_vec())));
    }

    #[test]
    fn next_delivery_time_reports_earliest() {
        let (clock, net, mut a, _b) = setup(10);
        a.send(PeerId(1), b"x").unwrap();
        clock.advance(SimDuration::from_millis(2));
        a.send(PeerId(1), b"y").unwrap();
        assert_eq!(
            net.borrow_mut().next_delivery_time(),
            Some(SimTime::from_millis(10))
        );
    }

    #[test]
    fn unconfigured_destination_errors() {
        let (_clock, _net, mut a, _b) = setup(0);
        assert!(matches!(
            a.send(PeerId(7), b"x"),
            Err(TransportError::UnknownPeer(PeerId(7)))
        ));
    }

    #[test]
    fn downed_link_eats_packets() {
        let (clock, net, mut a, mut b) = setup(0);
        net.borrow_mut().set_link_up(PeerId(0), PeerId(1), false);
        a.send(PeerId(1), b"x").unwrap();
        net.borrow_mut().deliver_due(clock.now());
        assert!(b.try_recv().unwrap().is_none());

        net.borrow_mut().set_link_up(PeerId(0), PeerId(1), true);
        a.send(PeerId(1), b"y").unwrap();
        net.borrow_mut().deliver_due(clock.now());
        assert_eq!(b.try_recv().unwrap().unwrap().1, b"y");
    }

    #[test]
    fn reconfigure_link_applies_new_delay() {
        let (clock, net, mut a, mut b) = setup(0);
        net.borrow_mut().reconfigure_link(
            PeerId(0),
            PeerId(1),
            NetemConfig::new().delay(SimDuration::from_millis(50)),
        );
        a.send(PeerId(1), b"x").unwrap();
        net.borrow_mut().deliver_due(clock.now());
        assert!(b.try_recv().unwrap().is_none());
        clock.advance(SimDuration::from_millis(50));
        net.borrow_mut().deliver_due(clock.now());
        assert!(b.try_recv().unwrap().is_some());
    }

    #[test]
    fn directions_are_independent() {
        let clock = VirtualClock::new();
        let net = SimNetwork::shared(clock.clone());
        {
            let mut n = net.borrow_mut();
            n.set_link(
                PeerId(0),
                PeerId(1),
                NetemConfig::new().delay(SimDuration::from_millis(5)),
                1,
            );
            n.set_link(
                PeerId(1),
                PeerId(0),
                NetemConfig::new().delay(SimDuration::from_millis(50)),
                2,
            );
        }
        let mut a = SimNetwork::socket(&net, PeerId(0));
        let mut b = SimNetwork::socket(&net, PeerId(1));
        a.send(PeerId(1), b"fast").unwrap();
        b.send(PeerId(0), b"slow").unwrap();
        clock.advance(SimDuration::from_millis(5));
        net.borrow_mut().deliver_due(clock.now());
        assert!(b.try_recv().unwrap().is_some());
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn link_stats_visible() {
        let (clock, net, mut a, _b) = setup(0);
        a.send(PeerId(1), b"x").unwrap();
        let _ = clock;
        let stats = net.borrow().link_stats(PeerId(0), PeerId(1)).unwrap();
        assert_eq!(stats.offered, 1);
        assert!(net.borrow().link_stats(PeerId(5), PeerId(6)).is_none());
    }
}
