//! The unreliable-datagram service the synchronization protocol runs on.
//!
//! The paper (§3.1) deliberately builds on UDP and re-implements the needed
//! reliability above it, because TCP's retransmission timing violates the
//! real-time constraint. [`Transport`] is that UDP-like service: datagrams
//! may be lost, duplicated, or reordered; they are never corrupted or
//! partially delivered.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::mpsc;

/// Identifies an endpoint on a [`Transport`].
///
/// In a two-site session this is the paper's site number (0 = master,
/// 1 = slave); the measurement time server conventionally uses 255.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u8);

impl PeerId {
    /// Conventional id of the measurement time server.
    pub const TIME_SERVER: PeerId = PeerId(255);

    /// Conventional destination meaning "every other member of the session".
    ///
    /// Only meaningful when traffic is routed through a relay (the relay wire
    /// format reserves the same value as its broadcast destination); direct
    /// peer-to-peer transports treat it like any other — unknown — peer.
    pub const BROADCAST: PeerId = PeerId(254);
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

/// Errors produced by [`Transport`] implementations.
#[derive(Debug)]
pub enum TransportError {
    /// The destination peer is not known to this transport.
    UnknownPeer(PeerId),
    /// The transport has been shut down or its counterpart dropped.
    Closed,
    /// An operating-system level I/O failure (UDP transports only).
    Io(std::io::Error),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// A non-blocking, unreliable, message-boundary-preserving datagram service.
///
/// Implementations: [`SimSocket`](crate::SimSocket) (simulated network with
/// netem impairments), [`UdpTransport`](crate::UdpTransport) (real sockets),
/// and [`loopback`] (in-process pair for tests and examples).
///
/// # Examples
///
/// ```
/// use coplay_net::{loopback, PeerId, Transport};
///
/// let (mut a, mut b) = loopback(PeerId(0), PeerId(1));
/// a.send(PeerId(1), b"hello")?;
/// assert_eq!(b.try_recv()?, Some((PeerId(0), b"hello".to_vec())));
/// assert_eq!(b.try_recv()?, None);
/// # Ok::<(), coplay_net::TransportError>(())
/// ```
pub trait Transport {
    /// This endpoint's identity.
    fn local_id(&self) -> PeerId;

    /// Queues one datagram to `to`. Never blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::UnknownPeer`] if `to` is not reachable from
    /// this endpoint, [`TransportError::Closed`] if the transport is shut
    /// down, or [`TransportError::Io`] on socket failure.
    fn send(&mut self, to: PeerId, payload: &[u8]) -> Result<(), TransportError>;

    /// Takes the next datagram available right now, if any. Never blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the transport is shut down, or
    /// [`TransportError::Io`] on socket failure. Absence of data is `Ok(None)`,
    /// not an error.
    fn try_recv(&mut self) -> Result<Option<(PeerId, Vec<u8>)>, TransportError>;
}

/// One end of an in-process loopback link created by [`loopback`].
///
/// Delivery is immediate, lossless, and ordered — useful for unit tests and
/// for driving the real-time runner without touching the OS network stack.
#[derive(Debug)]
pub struct LoopbackTransport {
    id: PeerId,
    peer: PeerId,
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    pending: VecDeque<Vec<u8>>,
}

/// Creates a connected pair of in-process transports.
pub fn loopback(a: PeerId, b: PeerId) -> (LoopbackTransport, LoopbackTransport) {
    let (tx_ab, rx_ab) = mpsc::channel();
    let (tx_ba, rx_ba) = mpsc::channel();
    (
        LoopbackTransport {
            id: a,
            peer: b,
            tx: tx_ab,
            rx: rx_ba,
            pending: VecDeque::new(),
        },
        LoopbackTransport {
            id: b,
            peer: a,
            tx: tx_ba,
            rx: rx_ab,
            pending: VecDeque::new(),
        },
    )
}

impl Transport for LoopbackTransport {
    fn local_id(&self) -> PeerId {
        self.id
    }

    fn send(&mut self, to: PeerId, payload: &[u8]) -> Result<(), TransportError> {
        if to != self.peer {
            return Err(TransportError::UnknownPeer(to));
        }
        // A dropped peer swallows datagrams silently, like UDP to a dead
        // host: sending is never an error on an unreliable transport.
        let _ = self.tx.send(payload.to_vec());
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<(PeerId, Vec<u8>)>, TransportError> {
        if let Some(p) = self.pending.pop_front() {
            return Ok(Some((self.peer, p)));
        }
        match self.rx.try_recv() {
            Ok(p) => Ok(Some((self.peer, p))),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => {
                // The peer may legitimately finish first; remaining queued
                // datagrams were already drained by try_recv above.
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_in_order() {
        let (mut a, mut b) = loopback(PeerId(0), PeerId(1));
        a.send(PeerId(1), b"one").unwrap();
        a.send(PeerId(1), b"two").unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap().1, b"one");
        assert_eq!(b.try_recv().unwrap().unwrap().1, b"two");
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn loopback_is_bidirectional() {
        let (mut a, mut b) = loopback(PeerId(0), PeerId(1));
        b.send(PeerId(0), b"pong").unwrap();
        assert_eq!(a.try_recv().unwrap(), Some((PeerId(1), b"pong".to_vec())));
    }

    #[test]
    fn loopback_rejects_unknown_peer() {
        let (mut a, _b) = loopback(PeerId(0), PeerId(1));
        assert!(matches!(
            a.send(PeerId(9), b"x"),
            Err(TransportError::UnknownPeer(PeerId(9)))
        ));
    }

    #[test]
    fn loopback_survives_peer_drop() {
        let (mut a, b) = loopback(PeerId(0), PeerId(1));
        drop(b);
        // UDP semantics: sends to a dead peer vanish without error.
        assert!(a.send(PeerId(1), b"x").is_ok());
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn errors_format_and_source() {
        let e = TransportError::UnknownPeer(PeerId(3));
        assert_eq!(e.to_string(), "unknown peer peer3");
        let io = TransportError::from(std::io::Error::other("boom"));
        assert!(Error::source(&io).is_some());
    }
}
