//! A real UDP transport for live sessions.
//!
//! This is the deployment path the paper describes in §2: a UDP channel is
//! established between the two players' machines after rendezvous. Peer
//! identities are mapped to socket addresses with a small static table; the
//! socket is non-blocking so the frame loop's `SyncInput` poll never stalls
//! in the kernel.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

use coplay_telemetry::Telemetry;

use crate::transport::{PeerId, Transport, TransportError};

/// Maximum datagram this transport will receive. The sync protocol sends
/// small frames (tens of bytes), so 64 KiB is far beyond any legal packet.
const MAX_DATAGRAM: usize = 65_536;

/// A [`Transport`] backed by a non-blocking [`UdpSocket`].
///
/// # Examples
///
/// ```no_run
/// use coplay_net::{PeerId, Transport, UdpTransport};
///
/// let mut t = UdpTransport::bind(PeerId(0), "127.0.0.1:7000")?;
/// t.add_peer(PeerId(1), "127.0.0.1:7001")?;
/// t.send(PeerId(1), b"hello")?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct UdpTransport {
    id: PeerId,
    socket: UdpSocket,
    peers: BTreeMap<PeerId, SocketAddr>,
    by_addr: BTreeMap<SocketAddr, PeerId>,
    buf: Vec<u8>,
    telemetry: Telemetry,
}

impl UdpTransport {
    /// Binds a UDP socket at `addr` and takes identity `id`.
    ///
    /// # Errors
    ///
    /// Returns any socket-creation error from the OS.
    pub fn bind<A: ToSocketAddrs>(id: PeerId, addr: A) -> io::Result<UdpTransport> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        Ok(UdpTransport {
            id,
            socket,
            peers: BTreeMap::new(),
            by_addr: BTreeMap::new(),
            buf: vec![0; MAX_DATAGRAM],
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches an observability sink: datagram/byte counters on both
    /// directions, plus `udp_send_would_block_total` — the kernel-buffer
    /// drop that [`Transport::send`] otherwise swallows silently.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Registers `peer` as reachable at `addr`.
    ///
    /// # Errors
    ///
    /// Returns an error if `addr` does not resolve to any address.
    pub fn add_peer<A: ToSocketAddrs>(&mut self, peer: PeerId, addr: A) -> io::Result<()> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address did not resolve")
        })?;
        self.peers.insert(peer, addr);
        self.by_addr.insert(addr, peer);
        Ok(())
    }

    /// The local socket address actually bound (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has become invalid.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Waits up to `timeout` for a datagram from a known peer, blocking in
    /// the kernel under a computed deadline instead of sleep-polling — a
    /// paced frame waiting on remote input wakes the moment the packet
    /// lands rather than paying up-to-1 ms quantization per check.
    ///
    /// Returns `Ok(None)` if the deadline passes with nothing received.
    /// The socket is restored to non-blocking before returning, on every
    /// path, so `try_recv` keeps its semantics afterwards.
    ///
    /// # Errors
    ///
    /// Returns any socket error from the OS other than the timeout itself.
    // detlint exempts crates/net from wall-clock rules: transport pacing is
    // inherently wall-clock and never feeds simulation state.
    #[allow(clippy::disallowed_methods)]
    pub fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(PeerId, Vec<u8>)>, TransportError> {
        let deadline = Instant::now() + timeout;
        self.socket
            .set_nonblocking(false)
            .map_err(TransportError::Io)?;
        let result = loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break Ok(None);
            }
            // Never Some(ZERO): that is "no timeout" on some platforms and
            // an InvalidInput error on others.
            if let Err(e) = self.socket.set_read_timeout(Some(remaining)) {
                break Err(TransportError::Io(e));
            }
            match self.socket.recv_from(&mut self.buf) {
                Ok((n, from)) => {
                    // Same policy as `try_recv`: unknown senders are noise.
                    if let Some(&peer) = self.by_addr.get(&from) {
                        self.telemetry
                            .counter_add("udp_datagrams_received_total", 1);
                        self.telemetry
                            .counter_add("udp_bytes_received_total", n as u64);
                        break Ok(Some((peer, self.buf[..n].to_vec())));
                    }
                }
                // Timeouts surface as WouldBlock or TimedOut depending on
                // the platform; the loop re-checks the deadline either way.
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => break Err(TransportError::Io(e)),
            }
        };
        // Restore non-blocking mode even when the wait failed; a transport
        // left blocking would stall the frame loop's next poll.
        let restore = self
            .socket
            .set_read_timeout(None)
            .and_then(|()| self.socket.set_nonblocking(true));
        match (result, restore) {
            (Err(e), _) => Err(e),
            (Ok(_), Err(e)) => Err(TransportError::Io(e)),
            (ok, Ok(())) => ok,
        }
    }
}

impl Transport for UdpTransport {
    fn local_id(&self) -> PeerId {
        self.id
    }

    fn send(&mut self, to: PeerId, payload: &[u8]) -> Result<(), TransportError> {
        let addr = self
            .peers
            .get(&to)
            .copied()
            .ok_or(TransportError::UnknownPeer(to))?;
        match self.socket.send_to(payload, addr) {
            Ok(n) => {
                self.telemetry.counter_add("udp_datagrams_sent_total", 1);
                self.telemetry.counter_add("udp_bytes_sent_total", n as u64);
                Ok(())
            }
            // A full send buffer on an unreliable transport is a drop, not
            // an error — exactly what UDP gives the paper's system.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                self.telemetry.counter_add("udp_send_would_block_total", 1);
                Ok(())
            }
            Err(e) => Err(TransportError::Io(e)),
        }
    }

    fn try_recv(&mut self) -> Result<Option<(PeerId, Vec<u8>)>, TransportError> {
        loop {
            match self.socket.recv_from(&mut self.buf) {
                Ok((n, from)) => {
                    // Datagrams from unknown senders are dropped silently;
                    // an open UDP port receives arbitrary internet noise.
                    if let Some(&peer) = self.by_addr.get(&from) {
                        self.telemetry
                            .counter_add("udp_datagrams_received_total", 1);
                        self.telemetry
                            .counter_add("udp_bytes_received_total", n as u64);
                        return Ok(Some((peer, self.buf[..n].to_vec())));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpTransport, UdpTransport) {
        let mut a = UdpTransport::bind(PeerId(0), "127.0.0.1:0").unwrap();
        let mut b = UdpTransport::bind(PeerId(1), "127.0.0.1:0").unwrap();
        let aa = a.local_addr().unwrap();
        let ba = b.local_addr().unwrap();
        a.add_peer(PeerId(1), ba).unwrap();
        b.add_peer(PeerId(0), aa).unwrap();
        (a, b)
    }

    fn recv_blocking(t: &mut UdpTransport) -> (PeerId, Vec<u8>) {
        t.recv_timeout(Duration::from_secs(2))
            .unwrap()
            .expect("no datagram arrived within 2s")
    }

    #[test]
    fn roundtrip_over_loopback() {
        let (mut a, mut b) = pair();
        a.send(PeerId(1), b"ping").unwrap();
        let (from, data) = recv_blocking(&mut b);
        assert_eq!((from, data.as_slice()), (PeerId(0), b"ping".as_slice()));
        b.send(PeerId(0), b"pong").unwrap();
        let (from, data) = recv_blocking(&mut a);
        assert_eq!((from, data.as_slice()), (PeerId(1), b"pong".as_slice()));
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let (mut a, _b) = pair();
        assert!(matches!(
            a.send(PeerId(9), b"x"),
            Err(TransportError::UnknownPeer(PeerId(9)))
        ));
    }

    #[test]
    fn datagrams_from_unknown_senders_are_dropped() {
        let (_, mut b) = pair();
        let stranger = UdpSocket::bind("127.0.0.1:0").unwrap();
        stranger.send_to(b"noise", b.local_addr().unwrap()).unwrap();
        // Give the kernel a moment, then confirm the noise is invisible.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn empty_queue_returns_none() {
        let (mut a, _b) = pair();
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn recv_timeout_expires_and_restores_nonblocking() {
        let (mut a, mut b) = pair();
        assert!(a.recv_timeout(Duration::from_millis(10)).unwrap().is_none());
        // The socket must be non-blocking again: an immediate poll returns
        // rather than hanging.
        assert!(a.try_recv().unwrap().is_none());
        // And a subsequent wait still delivers normally.
        b.send(PeerId(0), b"late").unwrap();
        let (from, data) = recv_blocking(&mut a);
        assert_eq!((from, data.as_slice()), (PeerId(1), b"late".as_slice()));
    }

    #[test]
    fn recv_timeout_ignores_unknown_senders_until_deadline() {
        let (_, mut b) = pair();
        let stranger = UdpSocket::bind("127.0.0.1:0").unwrap();
        stranger.send_to(b"noise", b.local_addr().unwrap()).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(20)).unwrap().is_none());
        assert!(b.try_recv().unwrap().is_none());
    }
}
