//! The relay server binary.
//!
//! Binds one UDP socket and routes registered sessions until killed:
//!
//! ```text
//! cargo run --release -p coplay-relay --bin relay -- \
//!     --bind 0.0.0.0:7777 --shard 0/4 --rate 2000 --burst 256
//! ```
//!
//! Run one process per shard (each on its own port) to scale past a single
//! core; sessions stripe across shards by `session % shard_count`, so
//! clients pick their shard's port from the session id the lobby assigned.

use std::process::ExitCode;

use coplay_relay::{RelayConfig, UdpRelay};

fn usage() -> &'static str {
    "usage: relay [--bind ADDR:PORT] [--shard I/N] [--rate PER_SEC] \
     [--burst N] [--max-sessions N]"
}

struct Args {
    bind: String,
    cfg: RelayConfig,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut bind = "127.0.0.1:7777".to_string();
    let mut cfg = RelayConfig::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--bind" => bind = value("--bind")?,
            "--shard" => {
                let v = value("--shard")?;
                let (i, n) = v
                    .split_once('/')
                    .ok_or_else(|| format!("--shard wants I/N, got {v}"))?;
                let index = i.parse().map_err(|_| format!("bad shard index {i}"))?;
                let count = n.parse().map_err(|_| format!("bad shard count {n}"))?;
                cfg = cfg.shard(index, count);
            }
            "--rate" => {
                let v = value("--rate")?;
                cfg.bucket_rate = v.parse().map_err(|_| format!("bad rate {v}"))?;
            }
            "--burst" => {
                let v = value("--burst")?;
                cfg.bucket_burst = v.parse().map_err(|_| format!("bad burst {v}"))?;
            }
            "--max-sessions" => {
                let v = value("--max-sessions")?;
                cfg.max_sessions = v.parse().map_err(|_| format!("bad max-sessions {v}"))?;
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(Args { bind, cfg })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut relay = match UdpRelay::bind(&args.bind, args.cfg.clone()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("relay: cannot bind {}: {e}", args.bind);
            return ExitCode::from(1);
        }
    };
    match relay.local_addr() {
        Ok(a) => println!(
            "relay: listening on {a} (shard {}/{}, {} sessions max)",
            args.cfg.shard_index,
            args.cfg.shard_count.max(1),
            args.cfg.max_sessions,
        ),
        Err(e) => eprintln!("relay: bound but local_addr failed: {e}"),
    }
    if let Err(e) = relay.run_until(|| false) {
        eprintln!("relay: socket error: {e}");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let a = parse_args(&argv(&[
            "--bind",
            "0.0.0.0:9000",
            "--shard",
            "2/8",
            "--rate",
            "500",
            "--burst",
            "32",
            "--max-sessions",
            "100",
        ]))
        .unwrap();
        assert_eq!(a.bind, "0.0.0.0:9000");
        assert_eq!(a.cfg.shard_index, 2);
        assert_eq!(a.cfg.shard_count, 8);
        assert_eq!(a.cfg.bucket_rate, 500);
        assert_eq!(a.cfg.bucket_burst, 32);
        assert_eq!(a.cfg.max_sessions, 100);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&argv(&["--shard", "nope"])).is_err());
        assert!(parse_args(&argv(&["--rate"])).is_err());
        assert!(parse_args(&argv(&["--wat"])).is_err());
    }
}
