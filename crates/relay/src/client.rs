//! The client side of the relay topology.
//!
//! [`RelaySocket`] wraps any [`Transport`] whose single reachable peer is
//! the relay and restores ordinary site-addressed semantics on top of it:
//! `send(PeerId(s), bytes)` wraps the opaque payload in a
//! [`Forward`](RelayMessage::Forward) envelope addressed to site `s`, and
//! `try_recv` unwraps [`Deliver`](RelayMessage::Deliver) envelopes back
//! into `(PeerId(from_site), bytes)`. The session drivers therefore run
//! unmodified — they still believe they are talking to peers directly —
//! while every datagram on the wire goes to one relay address.
//!
//! Registration is lazy and self-healing: until the relay acknowledges,
//! every outbound datagram is preceded by a `Register`, and an
//! [`Evicted`](RelayMessage::Evicted) notice flips the socket back to the
//! unregistered state so the next send re-registers.

use coplay_net::{PeerId, Transport, TransportError};

use crate::wire::{self, RelayMessage, RelayWireError};

/// While unregistered, `try_recv` retransmits `Register` once per this many
/// polls (including the very first). A session master may have nothing to
/// send until a peer's hello arrives — and that hello can only be fanned
/// out to members the relay already knows about — so a pure receiver must
/// still announce itself, and keep re-announcing in case the datagram was
/// lost.
const REGISTER_POLL_EVERY: u32 = 16;

/// A [`Transport`] adapter that tunnels site-addressed datagrams through a
/// relay. See the module docs.
///
/// The inner transport only ever needs to reach `relay`; in relay topology
/// that is the one configured address a client talks to.
pub struct RelaySocket<T> {
    inner: T,
    relay: PeerId,
    session: u32,
    spectator: bool,
    registered: bool,
    /// Receive polls since the last `try_recv`-driven `Register`
    /// retransmission (see [`REGISTER_POLL_EVERY`]).
    recv_polls: u32,
    /// Reused encode buffer: steady-state sends allocate nothing.
    buf: Vec<u8>,
    /// Deliver envelopes unwrapped (what the session driver consumes).
    delivered: u64,
    /// Non-Deliver or undecodable datagrams discarded by `try_recv`.
    discarded: u64,
    /// Eviction notices seen (each forces a re-registration).
    evictions: u64,
}

impl<T: Transport> RelaySocket<T> {
    /// Wraps `inner`, joining `session` as this transport's local site.
    pub fn new(inner: T, relay: PeerId, session: u32) -> RelaySocket<T> {
        RelaySocket {
            inner,
            relay,
            session,
            spectator: false,
            registered: false,
            recv_polls: 0,
            buf: Vec::with_capacity(64),
            delivered: 0,
            discarded: 0,
            evictions: 0,
        }
    }

    /// Registers as a read-only spectator instead of a player. Spectators
    /// receive the session's forwarded input stream but may not send.
    pub fn spectator(mut self) -> Self {
        self.spectator = true;
        self
    }

    /// `true` once the relay has acknowledged the registration.
    pub fn is_registered(&self) -> bool {
        self.registered
    }

    /// Deliver envelopes unwrapped so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Datagrams discarded because they were not (decodable) envelopes.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Eviction notices received so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Sends liveness (a `Register` until acknowledged, then a
    /// `Heartbeat`). Players refresh their slot with every forward, so this
    /// matters for spectators and otherwise-idle members; call it at the
    /// lobby heartbeat cadence.
    ///
    /// # Errors
    ///
    /// Propagates the inner transport's send error.
    pub fn heartbeat(&mut self) -> Result<(), TransportError> {
        let msg = if self.registered {
            RelayMessage::Heartbeat {
                session: self.session,
            }
        } else {
            self.register_message()
        };
        msg.encode_into(&mut self.buf);
        self.inner.send(self.relay, &self.buf)
    }

    /// Announces an orderly leave, freeing the relay slot immediately.
    ///
    /// # Errors
    ///
    /// Propagates the inner transport's send error.
    pub fn bye(&mut self) -> Result<(), TransportError> {
        self.registered = false;
        RelayMessage::Bye {
            session: self.session,
        }
        .encode_into(&mut self.buf);
        self.inner.send(self.relay, &self.buf)
    }

    fn register_message(&self) -> RelayMessage {
        RelayMessage::Register {
            session: self.session,
            site: self.inner.local_id().0,
            spectator: self.spectator,
        }
    }

    fn send_register(&mut self) -> Result<(), TransportError> {
        self.register_message().encode_into(&mut self.buf);
        self.inner.send(self.relay, &self.buf)
    }

    /// Handles a relay control message surfaced by `try_recv`.
    fn on_control(&mut self, msg: RelayMessage) -> Result<(), TransportError> {
        match msg {
            RelayMessage::Registered { session, .. } if session == self.session => {
                self.registered = true;
            }
            RelayMessage::Evicted { session } if session == self.session => {
                self.evictions += 1;
                self.registered = false;
                // Re-register immediately rather than waiting for the next
                // outbound datagram (spectators may never send one).
                self.send_register()?;
            }
            _ => self.discarded += 1,
        }
        Ok(())
    }
}

impl<T: Transport> Transport for RelaySocket<T> {
    fn local_id(&self) -> PeerId {
        self.inner.local_id()
    }

    /// Wraps `payload` in a `Forward` envelope to site `to` and sends it to
    /// the relay. [`PeerId::BROADCAST`] maps to the wire broadcast
    /// destination (the two constants share a value by design). Until the
    /// registration is acknowledged, each send is preceded by a `Register`
    /// retransmission — the sync protocol's own send cadence paces the
    /// retries.
    fn send(&mut self, to: PeerId, payload: &[u8]) -> Result<(), TransportError> {
        if !self.registered {
            self.send_register()?;
        }
        wire::encode_forward_into(&mut self.buf, to.0, payload);
        self.inner.send(self.relay, &self.buf)
    }

    /// Receives from the relay, unwrapping `Deliver` envelopes into
    /// `(PeerId(from_site), payload)` and consuming control traffic
    /// (registration acks, eviction notices) internally.
    fn try_recv(&mut self) -> Result<Option<(PeerId, Vec<u8>)>, TransportError> {
        if !self.registered {
            // Receive-only members (a waiting session master, a spectator
            // between heartbeats) still have to register; pace the
            // retransmission by poll count since this path has no clock.
            if self.recv_polls == 0 {
                self.send_register()?;
            }
            self.recv_polls = (self.recv_polls + 1) % REGISTER_POLL_EVERY;
        }
        while let Some((from, data)) = self.inner.try_recv()? {
            if from != self.relay {
                // Relay topology: anything not from the relay is noise.
                self.discarded += 1;
                continue;
            }
            match wire::decode_deliver(&data) {
                Ok((from_site, payload)) => {
                    self.delivered += 1;
                    return Ok(Some((PeerId(from_site), payload.to_vec())));
                }
                Err(RelayWireError::UnknownType(_)) => match RelayMessage::decode(&data) {
                    Ok(msg) => self.on_control(msg)?,
                    Err(_) => self.discarded += 1,
                },
                Err(_) => self.discarded += 1,
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_clock::SimTime;
    use coplay_net::loopback;

    use crate::server::{RelayConfig, RelayCore};

    const RELAY: PeerId = PeerId(200);

    /// Runs every datagram queued on either core-side link through the
    /// core, dispatching replies to whichever link owns the destination
    /// address (the loopback stand-in for one socket serving many peers).
    fn pump(core: &mut RelayCore<PeerId>, links: &mut [&mut dyn Transport], now: SimTime) {
        loop {
            let mut quiet = true;
            for i in 0..links.len() {
                while let Some((from, data)) = links[i].try_recv().unwrap() {
                    quiet = false;
                    let replies: Vec<_> = core.handle(from, &data, now).to_vec();
                    for (to, bytes) in replies {
                        let reached = links.iter_mut().any(|l| l.send(to, &bytes).is_ok());
                        assert!(reached, "no link reaches {to}");
                    }
                }
            }
            if quiet {
                break;
            }
        }
    }

    #[test]
    fn send_registers_then_forwards() {
        let (a, mut relay_end) = loopback(PeerId(0), RELAY);
        let mut sock = RelaySocket::new(a, RELAY, 42);
        sock.send(PeerId::BROADCAST, b"input").unwrap();

        // First datagram is the lazy Register, second the Forward.
        let (_, reg) = relay_end.try_recv().unwrap().unwrap();
        assert!(matches!(
            RelayMessage::decode(&reg),
            Ok(RelayMessage::Register {
                session: 42,
                site: 0,
                spectator: false,
            })
        ));
        let (_, fwd) = relay_end.try_recv().unwrap().unwrap();
        let (dest, payload) = wire::decode_forward(&fwd).unwrap();
        assert_eq!(dest, wire::DEST_BROADCAST);
        assert_eq!(payload, b"input");

        // The ack flips the socket to registered; later sends skip Register.
        relay_end
            .send(
                PeerId(0),
                &RelayMessage::Registered {
                    session: 42,
                    site: 0,
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(sock.try_recv().unwrap(), None);
        assert!(sock.is_registered());
        // That try_recv entered unregistered, so it retransmitted one more
        // Register before consuming the ack.
        let (_, retry) = relay_end.try_recv().unwrap().unwrap();
        assert!(matches!(
            RelayMessage::decode(&retry),
            Ok(RelayMessage::Register { .. })
        ));
        sock.send(PeerId(1), b"more").unwrap();
        let (_, only) = relay_end.try_recv().unwrap().unwrap();
        assert!(wire::decode_forward(&only).is_ok());
        assert!(relay_end.try_recv().unwrap().is_none());
    }

    #[test]
    fn recv_unwraps_deliver_and_eats_control() {
        let (a, mut relay_end) = loopback(PeerId(1), RELAY);
        let mut sock = RelaySocket::new(a, RELAY, 7);
        relay_end
            .send(
                PeerId(1),
                &RelayMessage::Registered {
                    session: 7,
                    site: 1,
                }
                .encode(),
            )
            .unwrap();
        relay_end
            .send(
                PeerId(1),
                &RelayMessage::Deliver {
                    from_site: 0,
                    payload: coplay_net::bytes::Bytes::copy_from_slice(b"frame"),
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(
            sock.try_recv().unwrap(),
            Some((PeerId(0), b"frame".to_vec()))
        );
        assert!(sock.is_registered());
        assert_eq!(sock.delivered(), 1);
    }

    #[test]
    fn eviction_triggers_reregistration() {
        let (a, mut relay_end) = loopback(PeerId(0), RELAY);
        let mut sock = RelaySocket::new(a, RELAY, 7).spectator();
        sock.heartbeat().unwrap();
        let (_, first) = relay_end.try_recv().unwrap().unwrap();
        assert!(matches!(
            RelayMessage::decode(&first),
            Ok(RelayMessage::Register {
                spectator: true,
                ..
            })
        ));
        relay_end
            .send(
                PeerId(0),
                &RelayMessage::Registered {
                    session: 7,
                    site: 0,
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(sock.try_recv().unwrap(), None);
        assert!(sock.is_registered());

        relay_end
            .send(PeerId(0), &RelayMessage::Evicted { session: 7 }.encode())
            .unwrap();
        assert_eq!(sock.try_recv().unwrap(), None);
        assert!(!sock.is_registered());
        assert_eq!(sock.evictions(), 1);
        // The eviction notice provoked an immediate Register retry.
        let (_, retry) = relay_end.try_recv().unwrap().unwrap();
        assert!(matches!(
            RelayMessage::decode(&retry),
            Ok(RelayMessage::Register { session: 7, .. })
        ));
    }

    #[test]
    fn two_sockets_converse_through_a_core() {
        let now = SimTime::ZERO;
        let mut core: RelayCore<PeerId> = RelayCore::new(RelayConfig::default());
        let (a, mut core_a) = loopback(PeerId(0), RELAY);
        let (b, mut core_b) = loopback(PeerId(1), RELAY);
        let mut sa = RelaySocket::new(a, RELAY, 9);
        let mut sb = RelaySocket::new(b, RELAY, 9);

        // Both sides register by sending; the core routes between links.
        sa.send(PeerId::BROADCAST, b"from a").unwrap();
        sb.send(PeerId::BROADCAST, b"from b").unwrap();
        pump(&mut core, &mut [&mut core_a, &mut core_b], now);
        // a's first Forward predated b's registration — resend after both
        // are in, as the sync protocol's retransmission naturally would.
        // (b's Forward went out after a registered, so it was delivered.)
        assert_eq!(
            sa.try_recv().unwrap(),
            Some((PeerId(1), b"from b".to_vec()))
        );
        assert!(sa.is_registered());
        sa.send(PeerId::BROADCAST, b"from a").unwrap();
        pump(&mut core, &mut [&mut core_a, &mut core_b], now);

        let got_b = sb.try_recv().unwrap();
        assert_eq!(got_b, Some((PeerId(0), b"from a".to_vec())));
        assert_eq!(core.session_count(), 1);
        assert_eq!(core.member_count(9), 2);
    }
}
