//! A multiplexed input-relay server for outbound-only clients.
//!
//! The paper's two-site topology assumes the players can reach each other
//! directly. Production deployments (ROADMAP item 1) cannot: consoles sit
//! behind NATs and only dial out. This crate supplies the missing piece —
//! a relay that multiplexes **many** sessions over **one** UDP socket and
//! forwards each opaque input datagram to the session's other members
//! without ever decoding the game traffic it carries. Because all
//! simulation stays client-side (lockstep or rollback, unchanged), a dumb
//! forwarding server is sufficient for correctness; everything here is
//! about routing, policy, and observability:
//!
//! - [`wire`] — the relay datagram protocol (magic `0xC7`): register /
//!   forward / deliver envelopes with zero-copy hot-path codecs.
//! - [`RelayCore`] — the sans-io routing core: compact slab session table,
//!   per-session token-bucket backpressure with drop accounting, spectator
//!   fan-out, and heartbeat eviction on the lobby's TTL cadence.
//! - [`UdpRelay`] — the single-threaded non-blocking socket loop; shard by
//!   `session % shard_count` ([`RelayConfig::shard`]) to scale out.
//! - [`RelaySocket`] — the client adapter: wraps any [`Transport`] whose
//!   one reachable peer is the relay and restores site-addressed
//!   semantics, so the session drivers run unmodified.
//!
//! [`Transport`]: coplay_net::Transport

pub mod client;
pub mod server;
pub mod udp;
pub mod wire;

pub use client::RelaySocket;
pub use server::{RelayConfig, RelayCore, RelayStats, MEMBER_TTL};
pub use udp::UdpRelay;
pub use wire::{RelayMessage, RelayWireError, DEST_BROADCAST, MAX_RELAY_PAYLOAD};
