//! The relay's sans-io forwarding core.
//!
//! [`RelayCore`] multiplexes many sessions over one datagram socket. It is
//! generic over the address type `A` so the same code serves real sockets
//! (`A = SocketAddr` in the UDP event loop), simulated peers
//! (`A = PeerId` in the end-to-end tests) and the fleet load generator
//! (`A = u32` client indices) — and, like the lobby server, it is sans-io
//! in time: every entry point takes `now` explicitly, so the discrete-event
//! simulator and the wall-clock loop drive identical code.
//!
//! Routing state lives in a compact slab: a `Vec` of session slots indexed
//! through a free list, with `BTreeMap` indexes by session id and by client
//! address. Freed slots keep their member-vector capacity, so the steady
//! state of the per-datagram path — look up the sender, charge the
//! session's token bucket, fan the payload out — allocates nothing.

use std::collections::BTreeMap;

use coplay_clock::{SimDuration, SimTime};
use coplay_telemetry::{EventKind, Telemetry};

use crate::wire::{self, RelayMessage, RelayWireError, DEST_BROADCAST};

/// How long a member may stay silent before the sweep evicts it.
///
/// Deliberately *the lobby's* heartbeat cadence ([`coplay_lobby::SESSION_TTL`]):
/// a client that keeps its lobby registration alive keeps its relay slot
/// alive with the same traffic pattern, and operators tune one knob.
pub const MEMBER_TTL: SimDuration = coplay_lobby::SESSION_TTL;

/// Sites `254` and `255` are reserved (broadcast and the time server).
const MAX_SITE: u8 = DEST_BROADCAST - 1;

/// Relay policy knobs. The defaults suit one shard of a production relay;
/// tests shrink them to exercise the refusal paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayConfig {
    /// Most concurrent sessions one core will route.
    pub max_sessions: usize,
    /// Most player members per session.
    pub max_players: usize,
    /// Most spectator members per session.
    pub max_spectators: usize,
    /// Evict a member after this much silence.
    pub member_ttl: SimDuration,
    /// Token-bucket refill rate: forwarded datagrams per second per
    /// session. A two-player sync session sends ≈100 datagrams/s, so the
    /// default leaves generous headroom before backpressure bites.
    pub bucket_rate: u32,
    /// Token-bucket burst capacity (datagrams).
    pub bucket_burst: u32,
    /// This shard's index (sessions are striped by `session % shard_count`).
    pub shard_index: u32,
    /// Total shards; `1` disables sharding.
    pub shard_count: u32,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            max_sessions: 4096,
            max_players: 8,
            max_spectators: 32,
            member_ttl: MEMBER_TTL,
            bucket_rate: 2_000,
            bucket_burst: 256,
            shard_index: 0,
            shard_count: 1,
        }
    }
}

impl RelayConfig {
    /// Restricts this core to shard `index` of `count` (sessions striped
    /// by id). Run one single-threaded core per shard, each on its own
    /// socket, to scale past one core of CPU.
    pub fn shard(mut self, index: u32, count: u32) -> Self {
        self.shard_index = index;
        self.shard_count = count.max(1);
        self
    }

    /// `true` if `session` is striped onto this shard.
    pub fn owns(&self, session: u32) -> bool {
        self.shard_count <= 1 || session % self.shard_count == self.shard_index
    }
}

/// Running totals, for operators and the fleet bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelayStats {
    /// Forward datagrams accepted and fanned out.
    pub forwarded: u64,
    /// Deliver copies emitted (≥ `forwarded` once spectators subscribe).
    pub fanout_copies: u64,
    /// Forwards refused by a session's token bucket.
    pub dropped_backpressure: u64,
    /// Datagrams from addresses with no live registration.
    pub dropped_unregistered: u64,
    /// Datagrams that failed to decode (or arrived in the wrong direction).
    pub dropped_malformed: u64,
    /// Registrations/forwards refused by policy (site conflict, capacity,
    /// foreign shard, spectator trying to send).
    pub dropped_refused: u64,
    /// Members evicted for silence.
    pub evicted_members: u64,
    /// Sessions whose last member left or was evicted.
    pub expired_sessions: u64,
    /// Successful (non-duplicate) registrations.
    pub registrations: u64,
}

/// Integer token bucket: micro-token accounting so refill loses nothing to
/// rounding and stays deterministic under virtual time.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    /// Millionths of a token.
    micro: u64,
    last: SimTime,
}

const MICRO: u64 = 1_000_000;

impl TokenBucket {
    fn full(burst: u32, now: SimTime) -> TokenBucket {
        TokenBucket {
            micro: burst as u64 * MICRO,
            last: now,
        }
    }

    /// Refills for the elapsed time, then tries to spend one token.
    fn take(&mut self, now: SimTime, rate: u32, burst: u32) -> bool {
        let dt = now.saturating_since(self.last).as_micros();
        self.last = now;
        self.micro = (self.micro + rate as u64 * dt).min(burst as u64 * MICRO);
        if self.micro >= MICRO {
            self.micro -= MICRO;
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Member<A> {
    site: u8,
    addr: A,
    spectator: bool,
    last_seen: SimTime,
}

#[derive(Debug)]
struct Slot<A> {
    session: u32,
    members: Vec<Member<A>>,
    bucket: TokenBucket,
    /// Forwards this session lost to backpressure (per-session accounting
    /// on top of the global counter).
    drops: u64,
    in_use: bool,
}

/// The sans-io relay core. See the module docs for the big picture.
pub struct RelayCore<A> {
    cfg: RelayConfig,
    slots: Vec<Slot<A>>,
    free: Vec<u32>,
    by_session: BTreeMap<u32, u32>,
    by_addr: BTreeMap<A, u32>,
    /// Reply buffers, reused across calls: `out[..out_len]` is live.
    out: Vec<(A, Vec<u8>)>,
    out_len: usize,
    stats: RelayStats,
    telemetry: Telemetry,
}

impl<A: Copy + Ord> RelayCore<A> {
    /// A core with the given policy and no telemetry.
    pub fn new(cfg: RelayConfig) -> RelayCore<A> {
        RelayCore {
            cfg,
            // Constructor-time containers; every per-datagram path reuses them.
            slots: Vec::new(),           // detlint: allow(hot_alloc) -- constructor
            free: Vec::new(),            // detlint: allow(hot_alloc) -- constructor
            by_session: BTreeMap::new(), // detlint: allow(hot_alloc) -- constructor
            by_addr: BTreeMap::new(),    // detlint: allow(hot_alloc) -- constructor
            out: Vec::new(),             // detlint: allow(hot_alloc) -- constructor
            out_len: 0,
            stats: RelayStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink (flight-recorder events for registration
    /// and eviction, counters and a fan-out histogram for the hot path).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The policy in force.
    pub fn config(&self) -> &RelayConfig {
        &self.cfg
    }

    /// Running totals.
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    /// Live sessions routed by this core.
    pub fn session_count(&self) -> usize {
        self.by_session.len()
    }

    /// Members currently registered in `session` (0 if unknown).
    pub fn member_count(&self, session: u32) -> usize {
        self.by_session
            .get(&session)
            .and_then(|&si| self.slots.get(si as usize))
            .map_or(0, |s| s.members.len())
    }

    /// Forwards this session has lost to backpressure (0 if unknown).
    pub fn session_drops(&self, session: u32) -> u64 {
        self.by_session
            .get(&session)
            .and_then(|&si| self.slots.get(si as usize))
            .map_or(0, |s| s.drops)
    }

    /// Processes one datagram from `from`, returning the datagrams to send
    /// in response (valid until the next `handle`/`sweep` call).
    pub fn handle(&mut self, from: A, data: &[u8], now: SimTime) -> &[(A, Vec<u8>)] {
        self.out_len = 0;
        match wire::decode_forward(data) {
            Ok((dest, payload)) => self.on_forward(from, dest, payload, now),
            Err(RelayWireError::UnknownType(_)) => match RelayMessage::decode(data) {
                Ok(msg) => self.on_control(from, msg, now),
                Err(_) => self.note_malformed(),
            },
            Err(_) => self.note_malformed(),
        }
        self.replies()
    }

    /// Evicts members silent for longer than the TTL and frees emptied
    /// session slots. Returns best-effort `Evicted` notifications (valid
    /// until the next `handle`/`sweep` call). Call periodically — the TTL
    /// over 4 is a sensible cadence.
    pub fn sweep(&mut self, now: SimTime) -> &[(A, Vec<u8>)] {
        self.out_len = 0;
        for si in 0..self.slots.len() {
            if !self.slots[si].in_use {
                continue;
            }
            let session = self.slots[si].session;
            let mut mi = 0;
            while mi < self.slots[si].members.len() {
                let m = self.slots[si].members[mi];
                if now.saturating_since(m.last_seen) <= self.cfg.member_ttl {
                    mi += 1;
                    continue;
                }
                self.slots[si].members.swap_remove(mi);
                self.by_addr.remove(&m.addr);
                self.stats.evicted_members += 1;
                self.telemetry.record(
                    now,
                    EventKind::RelayEvicted {
                        session,
                        site: m.site,
                    },
                );
                let buf = out_slot(&mut self.out, &mut self.out_len, m.addr);
                RelayMessage::Evicted { session }.encode_into(buf);
            }
            if self.slots[si].members.is_empty() {
                self.free_slot(si as u32);
            }
        }
        self.replies()
    }

    /// The replies produced by the last `handle`/`sweep` call.
    pub fn replies(&self) -> &[(A, Vec<u8>)] {
        self.out.get(..self.out_len).unwrap_or(&[])
    }

    fn note_malformed(&mut self) {
        self.stats.dropped_malformed += 1;
        self.telemetry
            .counter_add("relay_dropped_malformed_total", 1);
    }

    fn note_refused(&mut self) {
        self.stats.dropped_refused += 1;
        self.telemetry.counter_add("relay_dropped_refused_total", 1);
    }

    /// The per-datagram hot path: sender lookup, token charge, fan-out.
    fn on_forward(&mut self, from: A, dest: u8, payload: &[u8], now: SimTime) {
        let Some(&si) = self.by_addr.get(&from) else {
            self.stats.dropped_unregistered += 1;
            self.telemetry
                .counter_add("relay_dropped_unregistered_total", 1);
            return;
        };
        let si = si as usize;
        let (rate, burst) = (self.cfg.bucket_rate, self.cfg.bucket_burst);
        let Some(slot) = self.slots.get_mut(si) else {
            return;
        };
        let Some(sender) = slot.members.iter_mut().find(|m| m.addr == from) else {
            // The index and the slot disagree (stale entry); treat like an
            // unknown sender rather than panicking in the datagram path.
            self.stats.dropped_unregistered += 1;
            return;
        };
        sender.last_seen = now;
        let from_site = sender.site;
        if sender.spectator {
            // Spectators are read-only: their input never enters a session.
            self.note_refused();
            return;
        }
        if !slot.bucket.take(now, rate, burst) {
            slot.drops += 1;
            self.stats.dropped_backpressure += 1;
            self.telemetry
                .counter_add("relay_dropped_backpressure_total", 1);
            return;
        }
        self.stats.forwarded += 1;
        let mut copies = 0u64;
        for mi in 0..self.slots[si].members.len() {
            let m = self.slots[si].members[mi];
            if m.addr == from {
                continue;
            }
            // Players receive traffic addressed to their site (or to all);
            // spectators tap the whole input stream.
            if !(m.spectator || dest == DEST_BROADCAST || m.site == dest) {
                continue;
            }
            let buf = out_slot(&mut self.out, &mut self.out_len, m.addr);
            wire::encode_deliver_into(buf, from_site, payload);
            copies += 1;
        }
        self.stats.fanout_copies += copies;
        self.telemetry.counter_add("relay_forwarded_total", 1);
        self.telemetry
            .counter_add("relay_fanout_copies_total", copies);
        self.telemetry.observe("relay_fanout", copies);
    }

    fn on_control(&mut self, from: A, msg: RelayMessage, now: SimTime) {
        match msg {
            RelayMessage::Register {
                session,
                site,
                spectator,
            } => self.on_register(from, session, site, spectator, now),
            RelayMessage::Heartbeat { session } => {
                let mut refreshed = false;
                if let Some((member_session, m)) = self.member_mut(from) {
                    if member_session == session {
                        m.last_seen = now;
                        refreshed = true;
                    }
                }
                if !refreshed {
                    self.stats.dropped_unregistered += 1;
                    self.telemetry
                        .counter_add("relay_dropped_unregistered_total", 1);
                }
            }
            RelayMessage::Bye { session } => {
                let Some(&si) = self.by_addr.get(&from) else {
                    return;
                };
                if self
                    .slots
                    .get(si as usize)
                    .is_none_or(|s| s.session != session)
                {
                    return;
                }
                self.remove_member(si, from);
            }
            // Server-to-client messages arriving at the server are noise.
            RelayMessage::Registered { .. }
            | RelayMessage::Deliver { .. }
            | RelayMessage::Evicted { .. }
            | RelayMessage::Forward { .. } => self.note_malformed(),
        }
    }

    fn on_register(&mut self, from: A, session: u32, site: u8, spectator: bool, now: SimTime) {
        if site > MAX_SITE || !self.cfg.owns(session) {
            self.note_refused();
            return;
        }
        // Idempotent re-registration from a live member: refresh and re-ack
        // (the ack datagram may simply have been lost).
        let mut already = false;
        if let Some((member_session, m)) = self.member_mut(from) {
            if member_session == session && m.site == site && m.spectator == spectator {
                m.last_seen = now;
                already = true;
            }
        }
        if already {
            let buf = out_slot(&mut self.out, &mut self.out_len, from);
            RelayMessage::Registered { session, site }.encode_into(buf);
            return;
        }
        // Same address, different identity: drop the old registration and
        // fall through to a fresh insert.
        if let Some(&si) = self.by_addr.get(&from) {
            self.remove_member(si, from);
        }
        let si = match self.by_session.get(&session) {
            Some(&si) => si,
            None => match self.alloc_slot(session, now) {
                Some(si) => si,
                None => {
                    self.note_refused();
                    return;
                }
            },
        };
        let Some(slot) = self.slots.get_mut(si as usize) else {
            return;
        };
        // A site may have only one live owner; the contender is refused
        // until eviction or an orderly Bye frees it.
        if !spectator && slot.members.iter().any(|m| !m.spectator && m.site == site) {
            self.note_refused();
            return;
        }
        let spectators = slot.members.iter().filter(|m| m.spectator).count();
        let players = slot.members.len() - spectators;
        let full = if spectator {
            spectators >= self.cfg.max_spectators
        } else {
            players >= self.cfg.max_players
        };
        if full {
            self.note_refused();
            return;
        }
        slot.members.push(Member {
            site,
            addr: from,
            spectator,
            last_seen: now,
        });
        self.by_addr.insert(from, si);
        self.stats.registrations += 1;
        self.telemetry.record(
            now,
            EventKind::RelayRegistered {
                session,
                site,
                spectator,
            },
        );
        self.set_session_gauge();
        let buf = out_slot(&mut self.out, &mut self.out_len, from);
        RelayMessage::Registered { session, site }.encode_into(buf);
    }

    /// Finds the member registered at `from`, with its session id.
    fn member_mut(&mut self, from: A) -> Option<(u32, &mut Member<A>)> {
        let &si = self.by_addr.get(&from)?;
        let slot = self.slots.get_mut(si as usize)?;
        let session = slot.session;
        slot.members
            .iter_mut()
            .find(|m| m.addr == from)
            .map(|m| (session, m))
    }

    fn remove_member(&mut self, si: u32, addr: A) {
        self.by_addr.remove(&addr);
        let Some(slot) = self.slots.get_mut(si as usize) else {
            return;
        };
        if let Some(mi) = slot.members.iter().position(|m| m.addr == addr) {
            slot.members.swap_remove(mi);
        }
        if slot.members.is_empty() {
            self.free_slot(si);
        }
    }

    /// Takes a slot from the free list (capacity retained from its previous
    /// tenancy) or grows the slab, up to `max_sessions`.
    fn alloc_slot(&mut self, session: u32, now: SimTime) -> Option<u32> {
        let si = match self.free.pop() {
            Some(si) => si,
            None => {
                if self.slots.len() >= self.cfg.max_sessions {
                    return None;
                }
                self.slots.push(Slot {
                    session: 0,
                    // detlint: allow(hot_alloc) -- slab growth; freed slots keep capacity
                    members: Vec::new(),
                    bucket: TokenBucket::full(self.cfg.bucket_burst, now),
                    drops: 0,
                    in_use: false,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let slot = self.slots.get_mut(si as usize)?;
        slot.session = session;
        slot.members.clear();
        slot.bucket = TokenBucket::full(self.cfg.bucket_burst, now);
        slot.drops = 0;
        slot.in_use = true;
        self.by_session.insert(session, si);
        Some(si)
    }

    fn free_slot(&mut self, si: u32) {
        let Some(slot) = self.slots.get_mut(si as usize) else {
            return;
        };
        if !slot.in_use {
            return;
        }
        slot.in_use = false;
        self.by_session.remove(&slot.session);
        self.free.push(si);
        self.stats.expired_sessions += 1;
        self.set_session_gauge();
    }

    fn set_session_gauge(&self) {
        self.telemetry
            .gauge_set("relay_sessions", self.by_session.len() as i64);
    }
}

/// Reuses (or grows) the reply list, returning the cleared buffer for the
/// next datagram to `to`. Free function so callers can hold disjoint
/// borrows of the core's other fields.
fn out_slot<'a, A: Copy>(
    out: &'a mut Vec<(A, Vec<u8>)>,
    out_len: &mut usize,
    to: A,
) -> &'a mut Vec<u8> {
    if *out_len == out.len() {
        // detlint: allow(hot_alloc) -- grows to the high-water fan-out, then reused
        out.push((to, Vec::new()));
    }
    let i = *out_len;
    *out_len += 1;
    let entry = &mut out[i];
    entry.0 = to;
    entry.1.clear();
    &mut entry.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{RelayMessage, DEST_BROADCAST};
    use coplay_net::bytes::Bytes;
    use coplay_net::PeerId;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn core(cfg: RelayConfig) -> RelayCore<PeerId> {
        RelayCore::new(cfg)
    }

    fn register(
        c: &mut RelayCore<PeerId>,
        from: PeerId,
        session: u32,
        site: u8,
        spectator: bool,
        now: SimTime,
    ) -> Vec<RelayMessage> {
        let data = RelayMessage::Register {
            session,
            site,
            spectator,
        }
        .encode();
        c.handle(from, &data, now)
            .iter()
            .map(|(_, bytes)| RelayMessage::decode(bytes).unwrap())
            .collect()
    }

    fn forward(
        c: &mut RelayCore<PeerId>,
        from: PeerId,
        dest: u8,
        payload: &[u8],
        now: SimTime,
    ) -> Vec<(PeerId, RelayMessage)> {
        let data = RelayMessage::Forward {
            dest,
            payload: Bytes::copy_from_slice(payload),
        }
        .encode();
        c.handle(from, &data, now)
            .iter()
            .map(|(to, bytes)| (*to, RelayMessage::decode(bytes).unwrap()))
            .collect()
    }

    #[test]
    fn registration_is_acked_and_idempotent() {
        let mut c = core(RelayConfig::default());
        let acks = register(&mut c, PeerId(10), 1, 0, false, at(0));
        assert_eq!(
            acks,
            vec![RelayMessage::Registered {
                session: 1,
                site: 0
            }]
        );
        // A retransmitted Register re-acks without duplicating the member.
        let acks = register(&mut c, PeerId(10), 1, 0, false, at(5));
        assert_eq!(
            acks,
            vec![RelayMessage::Registered {
                session: 1,
                site: 0
            }]
        );
        assert_eq!(c.member_count(1), 1);
        assert_eq!(c.stats().registrations, 1);
    }

    #[test]
    fn forwards_route_between_players() {
        let mut c = core(RelayConfig::default());
        register(&mut c, PeerId(10), 1, 0, false, at(0));
        register(&mut c, PeerId(11), 1, 1, false, at(0));
        // Broadcast reaches the other player, not the sender.
        let out = forward(&mut c, PeerId(10), DEST_BROADCAST, b"hello", at(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PeerId(11));
        assert_eq!(
            out[0].1,
            RelayMessage::Deliver {
                from_site: 0,
                payload: Bytes::copy_from_slice(b"hello"),
            }
        );
        // Unicast to a specific site skips everyone else.
        register(&mut c, PeerId(12), 1, 2, false, at(1));
        let out = forward(&mut c, PeerId(10), 1, b"just you", at(2));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PeerId(11));
    }

    #[test]
    fn sessions_are_isolated() {
        let mut c = core(RelayConfig::default());
        register(&mut c, PeerId(10), 1, 0, false, at(0));
        register(&mut c, PeerId(11), 1, 1, false, at(0));
        register(&mut c, PeerId(20), 2, 0, false, at(0));
        register(&mut c, PeerId(21), 2, 1, false, at(0));
        let out = forward(&mut c, PeerId(10), DEST_BROADCAST, b"s1", at(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PeerId(11));
        assert_eq!(c.session_count(), 2);
    }

    #[test]
    fn eviction_frees_the_slot_and_reregistration_succeeds() {
        let mut c = core(RelayConfig {
            max_sessions: 1,
            ..RelayConfig::default()
        });
        register(&mut c, PeerId(10), 1, 0, false, at(0));
        register(&mut c, PeerId(11), 1, 1, false, at(0));
        // Player 0 keeps talking; player 1 goes silent past the TTL.
        let ttl_ms = c.config().member_ttl.as_millis();
        forward(&mut c, PeerId(10), DEST_BROADCAST, b"tick", at(ttl_ms));
        let notices: Vec<_> = c
            .sweep(at(ttl_ms + 1))
            .iter()
            .map(|(to, bytes)| (*to, RelayMessage::decode(bytes).unwrap()))
            .collect();
        assert_eq!(
            notices,
            vec![(PeerId(11), RelayMessage::Evicted { session: 1 })]
        );
        assert_eq!(c.member_count(1), 1);
        assert_eq!(c.stats().evicted_members, 1);

        // Both go silent: the session slot itself is reclaimed...
        let wiped = at(ttl_ms * 3);
        c.sweep(wiped);
        assert_eq!(c.session_count(), 0);
        assert_eq!(c.stats().expired_sessions, 1);
        // ...and with max_sessions=1 a new session only fits if the slot
        // was truly freed.
        let acks = register(&mut c, PeerId(30), 9, 0, false, wiped);
        assert_eq!(
            acks,
            vec![RelayMessage::Registered {
                session: 9,
                site: 0
            }]
        );
        // The evicted member can also rejoin its old session id.
        assert!(register(&mut c, PeerId(11), 9, 1, false, wiped).contains(
            &RelayMessage::Registered {
                session: 9,
                site: 1
            }
        ));
    }

    #[test]
    fn backpressure_drops_are_counted_not_panicked() {
        let mut c = core(RelayConfig {
            bucket_rate: 1,
            bucket_burst: 2,
            ..RelayConfig::default()
        });
        register(&mut c, PeerId(10), 1, 0, false, at(0));
        register(&mut c, PeerId(11), 1, 1, false, at(0));
        let mut delivered = 0;
        for _ in 0..10 {
            delivered += forward(&mut c, PeerId(10), DEST_BROADCAST, b"x", at(1)).len();
        }
        // Burst of 2 admits two forwards; the rest are accounted drops.
        assert_eq!(delivered, 2);
        assert_eq!(c.stats().forwarded, 2);
        assert_eq!(c.stats().dropped_backpressure, 8);
        assert_eq!(c.session_drops(1), 8);
        // The bucket refills with time: a later forward goes through.
        let out = forward(&mut c, PeerId(10), DEST_BROADCAST, b"later", at(2_000));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn mid_session_spectator_receives_subsequent_frames_only() {
        let mut c = core(RelayConfig::default());
        register(&mut c, PeerId(10), 1, 0, false, at(0));
        register(&mut c, PeerId(11), 1, 1, false, at(0));
        forward(&mut c, PeerId(10), DEST_BROADCAST, b"before", at(1));

        // Spectator joins mid-session.
        let acks = register(&mut c, PeerId(50), 1, 9, true, at(2));
        assert_eq!(
            acks,
            vec![RelayMessage::Registered {
                session: 1,
                site: 9
            }]
        );

        // Even unicast player traffic fans out to the spectator.
        let out = forward(&mut c, PeerId(10), 1, b"after", at(3));
        let to: Vec<PeerId> = out.iter().map(|(to, _)| *to).collect();
        assert_eq!(to, vec![PeerId(11), PeerId(50)]);
        assert!(out.iter().all(|(_, m)| matches!(
            m,
            RelayMessage::Deliver { from_site: 0, payload } if &payload[..] == b"after"
        )));

        // Spectators are read-only: their forwards are refused.
        let out = forward(&mut c, PeerId(50), DEST_BROADCAST, b"rogue", at(4));
        assert!(out.is_empty());
        assert_eq!(c.stats().dropped_refused, 1);
    }

    #[test]
    fn unregistered_and_malformed_traffic_is_dropped_not_routed() {
        let mut c = core(RelayConfig::default());
        assert!(forward(&mut c, PeerId(66), DEST_BROADCAST, b"who", at(0)).is_empty());
        assert_eq!(c.stats().dropped_unregistered, 1);
        assert!(c.handle(PeerId(66), b"garbage", at(0)).is_empty());
        assert_eq!(c.stats().dropped_malformed, 1);
        // Server-to-client messages arriving at the server are malformed.
        let evicted = RelayMessage::Evicted { session: 1 }.encode();
        assert!(c.handle(PeerId(66), &evicted, at(0)).is_empty());
        assert_eq!(c.stats().dropped_malformed, 2);
    }

    #[test]
    fn policy_refusals_site_conflict_capacity_and_shard() {
        let mut c = core(RelayConfig {
            max_players: 2,
            max_spectators: 1,
            ..RelayConfig::default().shard(0, 2)
        });
        // Session 1 stripes onto shard 1, not this shard 0.
        assert!(register(&mut c, PeerId(10), 1, 0, false, at(0)).is_empty());
        assert_eq!(c.stats().dropped_refused, 1);

        // Session 2 is ours. Site 0 is taken; a contender is refused.
        register(&mut c, PeerId(10), 2, 0, false, at(0));
        assert!(register(&mut c, PeerId(11), 2, 0, false, at(0)).is_empty());
        // Player capacity: 2 players max.
        register(&mut c, PeerId(12), 2, 1, false, at(0));
        assert!(register(&mut c, PeerId(13), 2, 3, false, at(0)).is_empty());
        // Spectator capacity is separate: 1 fits, the 2nd is refused.
        assert!(!register(&mut c, PeerId(20), 2, 8, true, at(0)).is_empty());
        assert!(register(&mut c, PeerId(21), 2, 8, true, at(0)).is_empty());
        // Reserved sites are refused outright.
        assert!(register(&mut c, PeerId(30), 2, DEST_BROADCAST, false, at(0)).is_empty());
    }

    #[test]
    fn bye_frees_the_member_and_empty_sessions_expire() {
        let mut c = core(RelayConfig::default());
        register(&mut c, PeerId(10), 1, 0, false, at(0));
        register(&mut c, PeerId(11), 1, 1, false, at(0));
        let bye = RelayMessage::Bye { session: 1 }.encode();
        c.handle(PeerId(10), &bye, at(1));
        assert_eq!(c.member_count(1), 1);
        c.handle(PeerId(11), &bye, at(1));
        assert_eq!(c.session_count(), 0);
        // The departed address can register afresh (new session).
        assert!(!register(&mut c, PeerId(10), 2, 0, false, at(2)).is_empty());
    }

    #[test]
    fn heartbeat_refreshes_the_eviction_timer() {
        let mut c = core(RelayConfig::default());
        register(&mut c, PeerId(10), 1, 0, true, at(0));
        let ttl_ms = c.config().member_ttl.as_millis();
        let hb = RelayMessage::Heartbeat { session: 1 }.encode();
        c.handle(PeerId(10), &hb, at(ttl_ms));
        // Was refreshed at ttl, so a sweep shortly after keeps it.
        assert!(c.sweep(at(ttl_ms + 1)).is_empty());
        assert_eq!(c.member_count(1), 1);
        // A heartbeat for the wrong session does not refresh.
        let wrong = RelayMessage::Heartbeat { session: 99 }.encode();
        c.handle(PeerId(10), &wrong, at(ttl_ms * 2));
        c.sweep(at(ttl_ms * 2 + 1));
        assert_eq!(c.member_count(1), 0);
    }

    #[test]
    fn rebinding_an_address_to_a_new_identity_moves_it() {
        let mut c = core(RelayConfig::default());
        register(&mut c, PeerId(10), 1, 0, false, at(0));
        // Same address re-registers with a different site: old slot freed.
        let acks = register(&mut c, PeerId(10), 1, 3, false, at(1));
        assert_eq!(
            acks,
            vec![RelayMessage::Registered {
                session: 1,
                site: 3
            }]
        );
        assert_eq!(c.member_count(1), 1);
    }
}
