//! The relay's real-socket event loop.
//!
//! One non-blocking [`UdpSocket`] serves every session on the shard: the
//! ROADMAP's outbound-only clients all talk to this single well-known
//! address, and [`RelayCore`] routes between them by sender address. The
//! loop is single-threaded by design — the per-datagram work is a map
//! lookup and a memcpy fan-out — and scales horizontally by running one
//! process (or thread) per shard, each bound to its own port.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

use coplay_clock::SimTime;
use coplay_telemetry::Telemetry;

use crate::server::{RelayConfig, RelayCore, RelayStats};

/// Largest datagram the relay will accept: the wire cap plus envelope
/// headroom. Anything bigger is not a legal relay datagram.
const RECV_BUF: usize = crate::wire::MAX_RELAY_PAYLOAD + 64;

/// How often the eviction sweep runs, as a divisor of the member TTL.
const SWEEP_DIVISOR: u64 = 4;

/// A [`RelayCore`] bound to a real UDP socket. See the module docs.
pub struct UdpRelay {
    socket: UdpSocket,
    core: RelayCore<SocketAddr>,
    buf: Vec<u8>,
    sweep_every: Duration,
    epoch: Option<Instant>,
    last_sweep: SimTime,
}

impl UdpRelay {
    /// Binds the relay socket at `addr` (non-blocking) with policy `cfg`.
    ///
    /// # Errors
    ///
    /// Returns any socket-creation error from the OS.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: RelayConfig) -> io::Result<UdpRelay> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        let sweep_every = (cfg.member_ttl / SWEEP_DIVISOR).to_std();
        Ok(UdpRelay {
            socket,
            core: RelayCore::new(cfg),
            buf: vec![0; RECV_BUF],
            sweep_every,
            epoch: None,
            last_sweep: SimTime::ZERO,
        })
    }

    /// Attaches a telemetry sink to the routing core.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.core = self.core.with_telemetry(telemetry);
        self
    }

    /// The socket address actually bound (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has become invalid.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The routing core's running totals.
    pub fn stats(&self) -> RelayStats {
        self.core.stats()
    }

    /// Live sessions on this shard.
    pub fn session_count(&self) -> usize {
        self.core.session_count()
    }

    /// Drains the socket once, routing every pending datagram, and runs the
    /// eviction sweep when its cadence is due. Returns how many datagrams
    /// were processed. Never blocks.
    ///
    /// # Errors
    ///
    /// Returns socket errors other than an empty receive queue. Send
    /// failures to individual clients are ignored (UDP semantics: the relay
    /// must not stall on one dead receiver).
    pub fn poll(&mut self, now: SimTime) -> io::Result<usize> {
        let mut handled = 0usize;
        loop {
            match self.socket.recv_from(&mut self.buf) {
                Ok((n, from)) => {
                    handled += 1;
                    let data = self.buf.get(..n).unwrap_or(&[]);
                    for (to, reply) in self.core.handle(from, data, now) {
                        let _ = self.socket.send_to(reply, *to);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        if now.saturating_since(self.last_sweep).to_std() >= self.sweep_every {
            self.last_sweep = now;
            for (to, notice) in self.core.sweep(now) {
                let _ = self.socket.send_to(notice, *to);
            }
        }
        Ok(handled)
    }

    /// Runs the event loop until `stop` returns `true` (checked between
    /// polls), parking briefly when the socket is idle.
    ///
    /// # Errors
    ///
    /// Propagates the first socket error from [`poll`](UdpRelay::poll).
    // Wall clock is the relay's legitimate time source: it serves live
    // clients and only feeds eviction timers, never simulation state.
    #[allow(clippy::disallowed_methods)]
    pub fn run_until(&mut self, mut stop: impl FnMut() -> bool) -> io::Result<()> {
        let epoch = *self.epoch.get_or_insert_with(Instant::now);
        while !stop() {
            let now = SimTime::from_micros(epoch.elapsed().as_micros() as u64);
            if self.poll(now)? == 0 {
                // Idle: a short park bounds both CPU burn and the extra
                // forward latency added when traffic resumes.
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{self, RelayMessage};
    use coplay_net::bytes::Bytes;

    fn client() -> UdpSocket {
        let s = UdpSocket::bind("127.0.0.1:0").unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s
    }

    fn recv(sock: &UdpSocket) -> Vec<u8> {
        let mut buf = vec![0u8; RECV_BUF];
        let (n, _) = sock.recv_from(&mut buf).unwrap();
        buf.truncate(n);
        buf
    }

    #[test]
    fn routes_between_real_sockets() {
        let mut relay = UdpRelay::bind("127.0.0.1:0", RelayConfig::default()).unwrap();
        let addr = relay.local_addr().unwrap();
        let a = client();
        let b = client();

        a.send_to(
            &RelayMessage::Register {
                session: 1,
                site: 0,
                spectator: false,
            }
            .encode(),
            addr,
        )
        .unwrap();
        b.send_to(
            &RelayMessage::Register {
                session: 1,
                site: 1,
                spectator: false,
            }
            .encode(),
            addr,
        )
        .unwrap();
        // Poll until both registrations are in (datagrams may land across
        // separate polls).
        let mut now = SimTime::ZERO;
        while relay.core.member_count(1) < 2 {
            relay.poll(now).unwrap();
            now += coplay_clock::SimDuration::from_millis(1);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(matches!(
            RelayMessage::decode(&recv(&a)),
            Ok(RelayMessage::Registered {
                session: 1,
                site: 0
            })
        ));
        assert!(matches!(
            RelayMessage::decode(&recv(&b)),
            Ok(RelayMessage::Registered {
                session: 1,
                site: 1
            })
        ));

        a.send_to(
            &RelayMessage::Forward {
                dest: wire::DEST_BROADCAST,
                payload: Bytes::copy_from_slice(b"input frame"),
            }
            .encode(),
            addr,
        )
        .unwrap();
        let mut forwarded = 0;
        while forwarded == 0 {
            relay.poll(now).unwrap();
            forwarded = relay.stats().forwarded;
            std::thread::sleep(Duration::from_millis(1));
        }
        let delivered = recv(&b);
        let (from_site, payload) = wire::decode_deliver(&delivered).unwrap();
        assert_eq!(from_site, 0);
        assert_eq!(payload, b"input frame");
    }

    #[test]
    fn run_until_stops() {
        let mut relay = UdpRelay::bind("127.0.0.1:0", RelayConfig::default()).unwrap();
        let mut polls = 0;
        relay
            .run_until(|| {
                polls += 1;
                polls > 3
            })
            .unwrap();
    }
}
