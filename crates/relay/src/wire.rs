//! The relay's datagram protocol.
//!
//! Deliberately separate from the lobby (magic `0xC6`) and sync (magic
//! `0xC5`) protocols: the relay never decodes the game traffic it carries.
//! A client registers `(session, site)` once, then wraps each opaque sync
//! datagram in a [`Forward`](RelayMessage::Forward) envelope addressed to a
//! member site (or [`DEST_BROADCAST`]); the relay re-wraps it as a
//! [`Deliver`](RelayMessage::Deliver) stamped with the sender's site so the
//! receiving client can restore ordinary per-peer addressing. All messages
//! fit one datagram; registration is idempotent and clients retransmit it
//! until acknowledged.

use std::error::Error;
use std::fmt;

use coplay_net::bytes::{Buf, BufMut, Bytes};

const MAGIC: u8 = 0xC7;
const VERSION: u8 = 1;

/// Largest opaque payload one [`Forward`](RelayMessage::Forward) or
/// [`Deliver`](RelayMessage::Deliver) envelope may carry. Comfortably above
/// the sync protocol's biggest datagram (a full input batch or snapshot
/// chunk) while keeping the relay's per-datagram buffers bounded.
pub const MAX_RELAY_PAYLOAD: usize = 8 * 1024;

/// `dest` value addressing every other member of the session.
pub const DEST_BROADCAST: u8 = 254;

/// Register flag bit: the member is a read-only spectator.
const FLAG_SPECTATOR: u8 = 1;

/// Relay protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayMessage {
    /// Client → relay: join `session` as `site`. Retransmitted until
    /// [`Registered`](RelayMessage::Registered) arrives; idempotent.
    Register {
        /// The session to join (lobby-assigned id).
        session: u32,
        /// This member's site number.
        site: u8,
        /// `true` for a read-only spectator: receives the forwarded input
        /// stream but its own forwards are refused.
        spectator: bool,
    },
    /// Relay → client: registration acknowledged.
    Registered {
        /// The session joined.
        session: u32,
        /// The site acknowledged.
        site: u8,
    },
    /// Client → relay: forward an opaque payload to `dest` (a member site,
    /// or [`DEST_BROADCAST`] for every other member). Spectators always
    /// receive a copy regardless of `dest`.
    Forward {
        /// Destination site, or [`DEST_BROADCAST`].
        dest: u8,
        /// The opaque game datagram (never decoded by the relay).
        payload: Bytes,
    },
    /// Relay → client: a payload forwarded by another member.
    Deliver {
        /// The sending member's site.
        from_site: u8,
        /// The opaque game datagram.
        payload: Bytes,
    },
    /// Client → relay: liveness for members with nothing to forward
    /// (spectators); any datagram refreshes the eviction timer.
    Heartbeat {
        /// The session kept alive.
        session: u32,
    },
    /// Relay → client: the member was dropped for silence (or the session
    /// expired). The client must re-register to keep playing.
    Evicted {
        /// The session the member was evicted from.
        session: u32,
    },
    /// Client → relay: orderly leave; frees the member slot immediately.
    Bye {
        /// The session left.
        session: u32,
    },
}

/// Errors decoding a relay datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayWireError {
    /// Not a relay datagram.
    BadMagic,
    /// Unsupported version.
    BadVersion(u8),
    /// Unknown message type.
    UnknownType(u8),
    /// Datagram shorter than advertised.
    Truncated,
    /// A length field exceeds [`MAX_RELAY_PAYLOAD`].
    TooLarge,
}

impl fmt::Display for RelayWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayWireError::BadMagic => write!(f, "not a relay datagram"),
            RelayWireError::BadVersion(v) => write!(f, "unsupported relay version {v}"),
            RelayWireError::UnknownType(t) => write!(f, "unknown relay message type {t}"),
            RelayWireError::Truncated => write!(f, "relay datagram truncated"),
            RelayWireError::TooLarge => write!(f, "relay payload length exceeds cap"),
        }
    }
}

impl Error for RelayWireError {}

mod ty {
    pub const REGISTER: u8 = 1;
    pub const REGISTERED: u8 = 2;
    pub const FORWARD: u8 = 3;
    pub const DELIVER: u8 = 4;
    pub const HEARTBEAT: u8 = 5;
    pub const EVICTED: u8 = 6;
    pub const BYE: u8 = 7;
}

impl RelayMessage {
    /// Encodes to one datagram payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out
    }

    /// Encodes into a reusable buffer (cleared first), so steady-state
    /// senders allocate nothing.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.put_u8(MAGIC);
        out.put_u8(VERSION);
        match self {
            RelayMessage::Register {
                session,
                site,
                spectator,
            } => {
                out.put_u8(ty::REGISTER);
                out.put_u32_le(*session);
                out.put_u8(*site);
                out.put_u8(if *spectator { FLAG_SPECTATOR } else { 0 });
            }
            RelayMessage::Registered { session, site } => {
                out.put_u8(ty::REGISTERED);
                out.put_u32_le(*session);
                out.put_u8(*site);
            }
            RelayMessage::Forward { dest, payload } => {
                out.put_u8(ty::FORWARD);
                let p = clamp_payload(payload);
                out.put_u8(*dest);
                out.put_u16_le(p.len() as u16);
                out.put_slice(p);
            }
            RelayMessage::Deliver { from_site, payload } => {
                out.put_u8(ty::DELIVER);
                let p = clamp_payload(payload);
                out.put_u8(*from_site);
                out.put_u16_le(p.len() as u16);
                out.put_slice(p);
            }
            RelayMessage::Heartbeat { session } => {
                out.put_u8(ty::HEARTBEAT);
                out.put_u32_le(*session);
            }
            RelayMessage::Evicted { session } => {
                out.put_u8(ty::EVICTED);
                out.put_u32_le(*session);
            }
            RelayMessage::Bye { session } => {
                out.put_u8(ty::BYE);
                out.put_u32_le(*session);
            }
        }
    }

    /// Decodes one datagram.
    ///
    /// # Errors
    ///
    /// Any [`RelayWireError`]; decoding arbitrary bytes never panics.
    pub fn decode(data: &[u8]) -> Result<RelayMessage, RelayWireError> {
        let mut b = data;
        let t = decode_header(&mut b)?;
        macro_rules! need {
            ($n:expr) => {
                if b.remaining() < $n {
                    return Err(RelayWireError::Truncated);
                }
            };
        }
        Ok(match t {
            ty::REGISTER => {
                need!(6);
                RelayMessage::Register {
                    session: b.get_u32_le(),
                    site: b.get_u8(),
                    spectator: b.get_u8() & FLAG_SPECTATOR != 0,
                }
            }
            ty::REGISTERED => {
                need!(5);
                RelayMessage::Registered {
                    session: b.get_u32_le(),
                    site: b.get_u8(),
                }
            }
            ty::FORWARD => {
                let (dest, payload) = get_envelope(&mut b)?;
                RelayMessage::Forward {
                    dest,
                    payload: Bytes::copy_from_slice(payload),
                }
            }
            ty::DELIVER => {
                let (from_site, payload) = get_envelope(&mut b)?;
                RelayMessage::Deliver {
                    from_site,
                    payload: Bytes::copy_from_slice(payload),
                }
            }
            ty::HEARTBEAT => {
                need!(4);
                RelayMessage::Heartbeat {
                    session: b.get_u32_le(),
                }
            }
            ty::EVICTED => {
                need!(4);
                RelayMessage::Evicted {
                    session: b.get_u32_le(),
                }
            }
            ty::BYE => {
                need!(4);
                RelayMessage::Bye {
                    session: b.get_u32_le(),
                }
            }
            other => return Err(RelayWireError::UnknownType(other)),
        })
    }
}

/// Truncates an over-cap payload so the length prefix and the written
/// bytes can never disagree (senders always produce a decodable datagram).
fn clamp_payload(p: &[u8]) -> &[u8] {
    p.get(..MAX_RELAY_PAYLOAD).unwrap_or(p)
}

/// Checks magic and version, returning the message-type byte.
fn decode_header(b: &mut &[u8]) -> Result<u8, RelayWireError> {
    if b.remaining() < 3 {
        return Err(RelayWireError::Truncated);
    }
    if b.get_u8() != MAGIC {
        return Err(RelayWireError::BadMagic);
    }
    let v = b.get_u8();
    if v != VERSION {
        return Err(RelayWireError::BadVersion(v));
    }
    Ok(b.get_u8())
}

/// Reads the shared `(site byte, u16 length, payload)` envelope tail of
/// `Forward`/`Deliver`. The length cap is checked before any allocation.
/// The payload is taken by copying the shared slice out of the cursor
/// first ([`Buf::try_take`] would tie it to the `&mut` borrow instead of
/// the datagram's `'a`) — both hot paths hand the slice outward zero-copy.
fn get_envelope<'a>(b: &mut &'a [u8]) -> Result<(u8, &'a [u8]), RelayWireError> {
    if b.remaining() < 3 {
        return Err(RelayWireError::Truncated);
    }
    let site = b.get_u8();
    let n = b.get_u16_le() as usize;
    if n > MAX_RELAY_PAYLOAD {
        return Err(RelayWireError::TooLarge);
    }
    let data: &'a [u8] = b;
    let Some(payload) = data.get(..n) else {
        return Err(RelayWireError::Truncated);
    };
    b.advance(n);
    Ok((site, payload))
}

/// Zero-copy parse of a [`Forward`](RelayMessage::Forward) datagram — the
/// relay's per-datagram hot path. Returns `(dest, payload)` borrowing from
/// `data`; any other (valid) message type comes back as
/// [`UnknownType`](RelayWireError::UnknownType) so callers fall through to
/// the full [`RelayMessage::decode`].
pub fn decode_forward(data: &[u8]) -> Result<(u8, &[u8]), RelayWireError> {
    let mut b = data;
    let t = decode_header(&mut b)?;
    if t != ty::FORWARD {
        return Err(RelayWireError::UnknownType(t));
    }
    get_envelope(&mut b)
}

/// Zero-copy encode of a [`Forward`](RelayMessage::Forward) datagram into a
/// reusable buffer (cleared first) — the client's send-side hot path.
/// Over-cap payloads are clamped exactly like the enum encoder's.
pub fn encode_forward_into(out: &mut Vec<u8>, dest: u8, payload: &[u8]) {
    let p = clamp_payload(payload);
    out.clear();
    out.put_u8(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(ty::FORWARD);
    out.put_u8(dest);
    out.put_u16_le(p.len() as u16);
    out.put_slice(p);
}

/// Zero-copy parse of a [`Deliver`](RelayMessage::Deliver) datagram — the
/// client's per-datagram hot path, mirroring [`decode_forward`]. Returns
/// `(from_site, payload)` borrowing from `data`; any other (valid) message
/// type comes back as [`UnknownType`](RelayWireError::UnknownType) so
/// callers fall through to the full [`RelayMessage::decode`].
pub fn decode_deliver(data: &[u8]) -> Result<(u8, &[u8]), RelayWireError> {
    let mut b = data;
    let t = decode_header(&mut b)?;
    if t != ty::DELIVER {
        return Err(RelayWireError::UnknownType(t));
    }
    get_envelope(&mut b)
}

/// Zero-copy encode of a [`Deliver`](RelayMessage::Deliver) datagram into a
/// reusable buffer (cleared first) — the fan-out side of the hot path.
/// `payload` must not exceed [`MAX_RELAY_PAYLOAD`] (forwards are capped on
/// ingress, so relayed payloads always satisfy this).
pub fn encode_deliver_into(out: &mut Vec<u8>, from_site: u8, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_RELAY_PAYLOAD,
        "deliver payload over cap"
    );
    out.clear();
    out.put_u8(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(ty::DELIVER);
    out.put_u8(from_site);
    out.put_u16_le(payload.len() as u16);
    out.put_slice(payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_message() -> Vec<RelayMessage> {
        vec![
            RelayMessage::Register {
                session: 7,
                site: 1,
                spectator: false,
            },
            RelayMessage::Register {
                session: 7,
                site: 9,
                spectator: true,
            },
            RelayMessage::Registered {
                session: 7,
                site: 1,
            },
            RelayMessage::Forward {
                dest: DEST_BROADCAST,
                payload: Bytes::copy_from_slice(b"opaque sync bytes"),
            },
            RelayMessage::Deliver {
                from_site: 0,
                payload: Bytes::copy_from_slice(&[0xC5, 1, 2, 3]),
            },
            RelayMessage::Heartbeat { session: 7 },
            RelayMessage::Evicted { session: 7 },
            RelayMessage::Bye { session: 7 },
        ]
    }

    #[test]
    fn roundtrip_every_message() {
        for msg in every_message() {
            let bytes = msg.encode();
            assert_eq!(RelayMessage::decode(&bytes), Ok(msg.clone()), "{msg:?}");
            // encode_into into a dirty buffer matches a fresh encode.
            let mut buf = vec![0xFF; 64];
            msg.encode_into(&mut buf);
            assert_eq!(buf, bytes, "{msg:?}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(RelayMessage::decode(&[]), Err(RelayWireError::Truncated));
        assert_eq!(
            RelayMessage::decode(&[0x00, VERSION, 1]),
            Err(RelayWireError::BadMagic)
        );
        assert_eq!(
            RelayMessage::decode(&[MAGIC, 99, 1]),
            Err(RelayWireError::BadVersion(99))
        );
        assert_eq!(
            RelayMessage::decode(&[MAGIC, VERSION, 200]),
            Err(RelayWireError::UnknownType(200))
        );
    }

    #[test]
    fn truncated_payloads_rejected() {
        for msg in every_message() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                let r = RelayMessage::decode(&bytes[..cut]);
                assert!(
                    r.is_err(),
                    "{msg:?} decoded from {cut}/{} bytes",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // A Forward claiming a payload over the cap must fail TooLarge even
        // though the datagram itself is tiny.
        let mut bytes = vec![MAGIC, VERSION, 3, 0];
        bytes.put_u16_le((MAX_RELAY_PAYLOAD + 1) as u16);
        assert_eq!(RelayMessage::decode(&bytes), Err(RelayWireError::TooLarge));
        assert_eq!(decode_forward(&bytes), Err(RelayWireError::TooLarge));
    }

    #[test]
    fn forward_fast_path_matches_full_decode() {
        let msg = RelayMessage::Forward {
            dest: 1,
            payload: Bytes::copy_from_slice(b"payload"),
        };
        let bytes = msg.encode();
        let (dest, payload) = decode_forward(&bytes).unwrap();
        assert_eq!(dest, 1);
        assert_eq!(payload, b"payload");
        // Non-forward datagrams fall through as UnknownType.
        let hb = RelayMessage::Heartbeat { session: 1 }.encode();
        assert_eq!(
            decode_forward(&hb),
            Err(RelayWireError::UnknownType(ty::HEARTBEAT))
        );
    }

    #[test]
    fn deliver_fast_path_matches_full_decode() {
        let msg = RelayMessage::Deliver {
            from_site: 2,
            payload: Bytes::copy_from_slice(b"payload"),
        };
        let bytes = msg.encode();
        let (from_site, payload) = decode_deliver(&bytes).unwrap();
        assert_eq!(from_site, 2);
        assert_eq!(payload, b"payload");
        let hb = RelayMessage::Heartbeat { session: 1 }.encode();
        assert_eq!(
            decode_deliver(&hb),
            Err(RelayWireError::UnknownType(ty::HEARTBEAT))
        );
    }

    #[test]
    fn deliver_fast_path_matches_enum_encode() {
        let payload = b"the opaque bytes";
        let mut fast = vec![0u8; 4];
        encode_deliver_into(&mut fast, 3, payload);
        let slow = RelayMessage::Deliver {
            from_site: 3,
            payload: Bytes::copy_from_slice(payload),
        }
        .encode();
        assert_eq!(fast, slow);
    }

    #[test]
    fn forward_fast_path_encode_matches_enum_encode() {
        let payload = b"the opaque bytes";
        let mut fast = vec![0u8; 4];
        encode_forward_into(&mut fast, DEST_BROADCAST, payload);
        let slow = RelayMessage::Forward {
            dest: DEST_BROADCAST,
            payload: Bytes::copy_from_slice(payload),
        }
        .encode();
        assert_eq!(fast, slow);
    }

    #[test]
    fn oversized_encode_is_clamped_to_cap() {
        // The enum encoder clamps rather than writing a lying length
        // prefix; senders never produce an undecodable datagram.
        let msg = RelayMessage::Forward {
            dest: 0,
            payload: Bytes::from(vec![0u8; MAX_RELAY_PAYLOAD + 100]),
        };
        match RelayMessage::decode(&msg.encode()) {
            Ok(RelayMessage::Forward { payload, .. }) => {
                assert_eq!(payload.len(), MAX_RELAY_PAYLOAD);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
