//! A zero-dependency XOR/RLE delta codec for machine-state snapshots.
//!
//! Consecutive checkpoints of a deterministic game differ in a handful of
//! bytes (positions, counters, the RNG word) while the bulk of the state —
//! RAM images, framebuffers, padding — repeats verbatim. The codec XORs the
//! new state against a base state and run-length encodes the zero runs, so
//! a typical inter-checkpoint delta is a small fraction of the full
//! snapshot. Both directions are allocation-free given caller buffers,
//! which is what lets the snapshot ring checkpoint every frame without
//! touching the heap.
//!
//! # Format
//!
//! ```text
//! delta := varint(new_len) op*
//! op    := varint(zero_run) varint(literal_len) literal_byte*
//! ```
//!
//! Ops tile `0..new_len` exactly. The implied base is the old state padded
//! with zeros (or truncated) to `new_len`, so states may grow or shrink
//! between checkpoints. A literal byte is the XOR of new against that
//! padded base; applying a delta XORs the literals back in place.
//!
//! Decoding validates every length field against the declared `new_len`
//! and the remaining input, so a truncated or corrupt delta is rejected
//! with a [`DeltaError`] instead of mis-restoring state.

use coplay_vm::DirtyPages;
use std::error::Error;
use std::fmt;

/// Error applying a malformed delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta ended before its declared contents.
    Truncated,
    /// An op runs past the declared output length.
    Overrun,
    /// The ops do not cover the declared output length exactly.
    BadCoverage,
    /// A varint is longer than a `u64` allows.
    BadVarint,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Truncated => write!(f, "delta truncated"),
            DeltaError::Overrun => write!(f, "delta op overruns the declared length"),
            DeltaError::BadCoverage => write!(f, "delta ops do not cover the output"),
            DeltaError::BadVarint => write!(f, "delta contains an oversized varint"),
        }
    }
}

impl Error for DeltaError {}

/// Appends `v` as a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `b`.
fn get_varint(b: &mut &[u8]) -> Result<u64, DeltaError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let Some((&byte, rest)) = b.split_first() else {
            return Err(DeltaError::Truncated);
        };
        *b = rest;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DeltaError::BadVarint)
}

/// The byte of `base` underlying position `i` of the padded base.
#[inline]
fn base_byte(base: &[u8], i: usize) -> u8 {
    base.get(i).copied().unwrap_or(0)
}

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Little-endian `u64` load of `s[i..i + 8]`. The scan loops bound `i`
/// so the window is always in range; a short window reads as 0 rather
/// than panicking.
#[inline(always)]
fn word_at(s: &[u8], i: usize) -> u64 {
    s.get(i..i + 8)
        .and_then(|w| w.try_into().ok())
        .map_or(0, u64::from_le_bytes)
}

/// Advances `i` past the run of bytes where `new` equals the padded base,
/// comparing eight bytes per iteration while both slices cover a full
/// word. Returns the first index that differs (or `new.len()`).
#[inline]
fn scan_zero_run(base: &[u8], new: &[u8], mut i: usize) -> usize {
    let word_end = base.len().min(new.len());
    while i + 8 <= word_end {
        let x = word_at(base, i) ^ word_at(new, i);
        if x == 0 {
            i += 8;
        } else {
            // Little-endian load: the lowest set bit sits in the first
            // differing byte.
            return i + (x.trailing_zeros() / 8) as usize;
        }
    }
    while i < new.len() && new[i] == base_byte(base, i) {
        i += 1;
    }
    i
}

/// Advances `i` past the run of bytes where `new` differs from the padded
/// base, eight bytes per iteration. Returns the first index that matches
/// (or `new.len()`).
#[inline]
fn scan_literal_run(base: &[u8], new: &[u8], mut i: usize) -> usize {
    let word_end = base.len().min(new.len());
    while i + 8 <= word_end {
        let x = word_at(base, i) ^ word_at(new, i);
        // Classic has-zero-byte trick: the flag of the *first* zero byte of
        // `x` is always the lowest set flag (higher flags may be spurious
        // from borrows, lower ones cannot be), so trailing_zeros finds the
        // first matching byte exactly.
        let z = x.wrapping_sub(LO) & !x & HI;
        if z == 0 {
            i += 8;
        } else {
            return i + (z.trailing_zeros() / 8) as usize;
        }
    }
    while i < new.len() && new[i] != base_byte(base, i) {
        i += 1;
    }
    i
}

/// Encodes `new` as a delta against `base` into `out` (cleared first).
///
/// `out`'s allocation is reused; steady-state encoding of same-shaped
/// states performs no heap allocation. Worst case (nothing repeats) the
/// delta is `new.len()` plus a few varint bytes. Run scanning is
/// word-at-a-time (eight bytes per compare) — the output is byte-identical
/// to a sequential byte scan, which the test suite asserts by fuzzing
/// against the reference scanner.
pub fn encode_into(base: &[u8], new: &[u8], out: &mut Vec<u8>) {
    out.clear();
    put_varint(out, new.len() as u64);
    let mut i = 0;
    while i < new.len() {
        // Count the zero run (bytes equal to the padded base).
        let zero_start = i;
        i = scan_zero_run(base, new, i);
        let zero_run = i - zero_start;
        // Count the literal run (bytes that differ).
        let lit_start = i;
        i = scan_literal_run(base, new, i);
        put_varint(out, zero_run as u64);
        put_varint(out, (i - lit_start) as u64);
        for (j, &b) in new.iter().enumerate().take(i).skip(lit_start) {
            out.push(b ^ base_byte(base, j));
        }
    }
}

/// Encodes `new` against `base` like [`encode_into`], but skips the scan
/// entirely over pages `dirty` guarantees clean.
///
/// `dirty` must satisfy the capture contract: every byte where `new`
/// differs from the padded base lies inside a marked page (marked pages
/// that turn out equal are fine — they are scanned and folded into zero
/// runs). Under that contract the output is **byte-identical** to
/// [`encode_into`], because both scanners break runs at exactly the
/// equal/differ transitions: clean gaps only extend zero runs, which this
/// encoder accumulates across gaps before emitting. A saturated or
/// wrong-length bitmap degrades to the full scan.
pub fn encode_dirty_into(base: &[u8], new: &[u8], dirty: &DirtyPages, out: &mut Vec<u8>) {
    if dirty.is_all() || dirty.len() != new.len() {
        encode_into(base, new, out);
        return;
    }
    out.clear();
    put_varint(out, new.len() as u64);
    let mut zero_pending: usize = 0;
    let mut pos = 0;
    for (rs, re) in dirty.byte_ranges() {
        // The clean gap [pos, rs) is guaranteed equal to the padded base.
        zero_pending += rs - pos;
        let mut i = rs;
        while i < re {
            let zero_start = i;
            i = scan_zero_run(base, &new[..re], i);
            zero_pending += i - zero_start;
            if i >= re {
                break;
            }
            // A literal run always terminates at or before `re`: ranges
            // are maximal, so the byte at `re` (if any) is clean-gap and
            // equal to the base.
            let lit_start = i;
            i = scan_literal_run(base, &new[..re], i);
            put_varint(out, zero_pending as u64);
            put_varint(out, (i - lit_start) as u64);
            for (j, &b) in new.iter().enumerate().take(i).skip(lit_start) {
                out.push(b ^ base_byte(base, j));
            }
            zero_pending = 0;
        }
        pos = re;
    }
    zero_pending += new.len() - pos;
    if zero_pending > 0 {
        put_varint(out, zero_pending as u64);
        put_varint(out, 0);
    }
}

/// The original byte-at-a-time encoder, kept as the reference the
/// word-at-a-time scanner is fuzzed against.
#[cfg(test)]
pub(crate) fn encode_into_bytewise(base: &[u8], new: &[u8], out: &mut Vec<u8>) {
    out.clear();
    put_varint(out, new.len() as u64);
    let mut i = 0;
    while i < new.len() {
        let zero_start = i;
        while i < new.len() && new[i] == base_byte(base, i) {
            i += 1;
        }
        let zero_run = i - zero_start;
        let lit_start = i;
        while i < new.len() && new[i] != base_byte(base, i) {
            i += 1;
        }
        put_varint(out, zero_run as u64);
        put_varint(out, (i - lit_start) as u64);
        for (j, &b) in new.iter().enumerate().take(i).skip(lit_start) {
            out.push(b ^ base_byte(base, j));
        }
    }
}

/// Applies a delta in place: `buf` holds the base state on entry and the
/// new state on success.
///
/// # Errors
///
/// Returns a [`DeltaError`] if the delta is truncated, overruns its
/// declared length, or fails to cover it; `buf` must then be considered
/// garbage (the snapshot ring discards it rather than restoring from it).
pub fn apply_in_place(buf: &mut Vec<u8>, mut delta: &[u8]) -> Result<(), DeltaError> {
    let new_len = get_varint(&mut delta)? as usize;
    // The padded base: grow with zeros or truncate to the target length.
    buf.resize(new_len, 0);
    let mut i = 0;
    while i < new_len {
        let zero_run = get_varint(&mut delta)? as usize;
        let lit_len = get_varint(&mut delta)? as usize;
        i = i
            .checked_add(zero_run)
            .and_then(|v| v.checked_add(lit_len))
            .filter(|&end| end <= new_len)
            .map(|end| end - lit_len)
            .ok_or(DeltaError::Overrun)?;
        if delta.len() < lit_len {
            return Err(DeltaError::Truncated);
        }
        // Slice-zip so the XOR vectorizes; the Overrun check above
        // guarantees `i + lit_len <= new_len`.
        for (d, &s) in buf[i..i + lit_len].iter_mut().zip(&delta[..lit_len]) {
            *d ^= s;
        }
        i += lit_len;
        delta = &delta[lit_len..];
        // A zero literal run only terminates the delta (trailing zeros);
        // anywhere else it could not have been emitted by the encoder and
        // would loop forever on zero_run == 0.
        if lit_len == 0 && i < new_len && zero_run == 0 {
            return Err(DeltaError::BadCoverage);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(base: &[u8], new: &[u8]) -> Vec<u8> {
        let mut delta = Vec::new();
        encode_into(base, new, &mut delta);
        let mut buf = base.to_vec();
        apply_in_place(&mut buf, &delta).expect("self-produced delta applies");
        assert_eq!(buf, new, "base {base:?} -> new {new:?}");
        delta
    }

    #[test]
    fn identical_states_encode_to_almost_nothing() {
        let state = vec![7u8; 4096];
        let delta = roundtrip(&state, &state);
        assert!(delta.len() <= 6, "len {}", delta.len());
    }

    #[test]
    fn sparse_changes_stay_small() {
        let base = vec![0xAAu8; 65_536];
        let mut new = base.clone();
        new[17] ^= 1;
        new[40_000] = 0;
        new[65_535] = 3;
        let delta = roundtrip(&base, &new);
        assert!(delta.len() < 32, "len {}", delta.len());
    }

    #[test]
    fn growth_shrink_and_empty_roundtrip() {
        roundtrip(b"short", b"a much longer state vector");
        roundtrip(b"a much longer state vector", b"short");
        roundtrip(b"", b"fresh");
        roundtrip(b"old", b"");
        roundtrip(b"", b"");
    }

    #[test]
    fn worst_case_is_linear_with_small_overhead() {
        let base: Vec<u8> = (0..=255u8).collect();
        let new: Vec<u8> = (0..=255u8).map(|b| b ^ 0xFF).collect();
        let delta = roundtrip(&base, &new);
        assert!(delta.len() <= new.len() + 8, "len {}", delta.len());
    }

    #[test]
    fn truncated_delta_is_rejected() {
        let base = vec![1u8; 100];
        let mut new = base.clone();
        new[50] = 9;
        let mut delta = Vec::new();
        encode_into(&base, &new, &mut delta);
        for cut in 0..delta.len() {
            let mut buf = base.clone();
            assert!(
                apply_in_place(&mut buf, &delta[..cut]).is_err(),
                "prefix of {cut} bytes must not apply"
            );
        }
    }

    #[test]
    fn overrunning_ops_are_rejected() {
        // new_len = 4, then a zero run of 100.
        let mut delta = Vec::new();
        put_varint(&mut delta, 4);
        put_varint(&mut delta, 100);
        put_varint(&mut delta, 0);
        let mut buf = vec![0u8; 4];
        assert_eq!(apply_in_place(&mut buf, &delta), Err(DeltaError::Overrun));
        // Overflow-sized runs must not wrap around usize.
        let mut delta = Vec::new();
        put_varint(&mut delta, 4);
        put_varint(&mut delta, u64::MAX);
        put_varint(&mut delta, 1);
        let mut buf = vec![0u8; 4];
        assert!(apply_in_place(&mut buf, &delta).is_err());
    }

    #[test]
    fn degenerate_empty_op_is_rejected() {
        // A (0, 0) op before the end would never terminate; the decoder
        // must reject it instead of spinning.
        let mut delta = Vec::new();
        put_varint(&mut delta, 2);
        put_varint(&mut delta, 0);
        put_varint(&mut delta, 0);
        let mut buf = vec![0u8; 2];
        assert_eq!(
            apply_in_place(&mut buf, &delta),
            Err(DeltaError::BadCoverage)
        );
    }

    #[test]
    fn oversized_varint_is_rejected() {
        let delta = [0xFFu8; 11];
        let mut buf = Vec::new();
        assert_eq!(apply_in_place(&mut buf, &delta), Err(DeltaError::BadVarint));
    }

    #[test]
    fn pseudorandom_states_roundtrip() {
        // Deterministic xorshift stream; no OS entropy.
        let mut x = 0x1234_5678_9ABC_DEFFu64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..50 {
            let base_len = (next() % 300) as usize;
            let new_len = (next() % 300) as usize;
            let base: Vec<u8> = (0..base_len).map(|_| next() as u8).collect();
            let mut new: Vec<u8> = base.iter().copied().take(new_len).collect();
            new.resize(new_len, 0);
            // Mutate a few positions.
            for _ in 0..(next() % 8) {
                if !new.is_empty() {
                    let i = (next() as usize) % new.len();
                    new[i] = next() as u8;
                }
            }
            roundtrip(&base, &new);
        }
    }

    #[test]
    fn word_scanner_matches_bytewise_reference() {
        // Deterministic fuzz over run structures that stress the word
        // loop: runs crossing 8-byte boundaries, runs shorter than a word,
        // length mismatches, and tails past the shorter slice.
        let mut x = 0x0F0F_1234_5678_9ABCu64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..200 {
            let base_len = (next() % 200) as usize;
            let new_len = (next() % 200) as usize;
            let base: Vec<u8> = (0..base_len).map(|_| next() as u8).collect();
            // Build `new` as alternating equal/differing runs of random
            // lengths so both scanners see every transition shape.
            let mut new = Vec::with_capacity(new_len);
            let mut differ = next() % 2 == 0;
            while new.len() < new_len {
                let run = 1 + (next() % 21) as usize;
                for _ in 0..run {
                    if new.len() == new_len {
                        break;
                    }
                    let i = new.len();
                    let b = base_byte(&base, i);
                    new.push(if differ {
                        b ^ (1 + (next() % 255) as u8)
                    } else {
                        b
                    });
                }
                differ = !differ;
            }

            let mut fast = Vec::new();
            let mut slow = Vec::new();
            encode_into(&base, &new, &mut fast);
            encode_into_bytewise(&base, &new, &mut slow);
            assert_eq!(fast, slow, "round {round}: encodings must be identical");

            let mut buf = base.clone();
            apply_in_place(&mut buf, &fast).expect("delta applies");
            assert_eq!(buf, new, "round {round}: roundtrip");
        }
    }

    #[test]
    fn word_scanner_handles_exact_word_boundaries() {
        // Runs that start/end exactly on 8-byte boundaries, and slices
        // that are exact multiples of the word size.
        let base = vec![5u8; 64];
        for (from, to) in [(0, 8), (8, 16), (8, 24), (0, 64), (56, 64), (7, 9)] {
            let mut new = base.clone();
            for b in &mut new[from..to] {
                *b ^= 0xFF;
            }
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            encode_into(&base, &new, &mut fast);
            encode_into_bytewise(&base, &new, &mut slow);
            assert_eq!(fast, slow, "diff range {from}..{to}");
            let mut buf = base.clone();
            apply_in_place(&mut buf, &fast).unwrap();
            assert_eq!(buf, new);
        }
    }

    #[test]
    fn dirty_guided_encoder_is_byte_identical_to_full_scan() {
        // Deterministic fuzz: mutate random positions, build a dirty
        // bitmap that covers exactly the mutated pages plus random
        // false-positive pages, and require bit-identical output.
        let mut x = 0xD127_00FF_4321_8765u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..200 {
            let len = (next() % 4000) as usize;
            let base: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let mut new = base.clone();
            let mut dirty = DirtyPages::new(len);
            for _ in 0..(next() % 12) {
                if new.is_empty() {
                    break;
                }
                let at = (next() as usize) % new.len();
                let run = 1 + (next() % 40) as usize;
                let end = (at + run).min(new.len());
                for b in &mut new[at..end] {
                    // May write the same value back — the page is then a
                    // marked false positive the encoder must tolerate.
                    *b = next() as u8;
                }
                dirty.mark_range(at, end - at);
            }
            for _ in 0..(next() % 4) {
                if len > 0 {
                    dirty.mark((next() as usize) % len); // pure false positive
                }
            }

            let mut guided = Vec::new();
            let mut full = Vec::new();
            encode_dirty_into(&base, &new, &dirty, &mut guided);
            encode_into(&base, &new, &mut full);
            assert_eq!(guided, full, "round {round}: encodings must be identical");

            let mut buf = base.clone();
            apply_in_place(&mut buf, &guided).expect("delta applies");
            assert_eq!(buf, new, "round {round}: roundtrip");
        }

        // Saturated and wrong-length bitmaps fall back to the full scan.
        let base = vec![1u8; 100];
        let mut new = base.clone();
        new[50] = 9;
        let mut full = Vec::new();
        encode_into(&base, &new, &mut full);
        let mut out = Vec::new();
        encode_dirty_into(&base, &new, &DirtyPages::all_dirty(100), &mut out);
        assert_eq!(out, full);
        encode_dirty_into(&base, &new, &DirtyPages::new(7), &mut out);
        assert_eq!(out, full);
        // Length changes always come with a mismatching bitmap.
        encode_dirty_into(&base, &new[..60], &DirtyPages::new(100), &mut out);
        encode_into(&base, &new[..60], &mut full);
        assert_eq!(out, full);
    }

    #[test]
    fn errors_display() {
        assert!(DeltaError::Truncated.to_string().contains("truncated"));
        assert!(DeltaError::Overrun.to_string().contains("overrun"));
        assert!(DeltaError::BadCoverage.to_string().contains("cover"));
        assert!(DeltaError::BadVarint.to_string().contains("varint"));
    }
}
