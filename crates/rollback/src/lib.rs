//! **coplay-rollback** — predicted-input rollback netcode as an alternative
//! to lockstep stalls.
//!
//! The paper's lockstep core (`coplay-sync`) buys logical consistency by
//! *waiting*: a frame executes only when every site's input for it has
//! arrived, so an RTT spike longer than the local-lag budget freezes every
//! replica. This crate trades that freeze for speculation:
//!
//! * [`RollbackSession`] executes frames immediately, substituting
//!   *predicted* inputs (an [`InputPredictor`], default [`RepeatLast`]) for
//!   remote partials that have not arrived yet.
//! * A [`SnapshotRing`] keeps periodic machine-state checkpoints, stored
//!   as one full newest-state image plus XOR/RLE back-[`delta`]s over
//!   pooled buffers. Captures and deltas are guided by the machine's
//!   dirty-page bitmaps (`Machine::save_state_dirty_into`), so the
//!   steady-state checkpoint path scans and copies only the pages a
//!   frame actually wrote. When a late authoritative input contradicts a
//!   prediction, the session rewinds the ring to the checkpoint at or
//!   before the mispredicted frame, patches the machine's divergent
//!   pages (`Machine::load_state_dirty`), and resimulates to the present
//!   — invisible to the game, which only ever sees `step_frame` and
//!   `load_state`.
//! * Speculation is bounded: past `max_rollback_frames` beyond the
//!   confirmed-input frontier the session degrades to lockstep-style
//!   blocking, keeping worst-case repair cost and checkpoint memory fixed.
//!
//! The session mirrors the lockstep driver's API (`new`/`tick`/`pump`/
//! `stop`/`stats`, the same [`Step`](coplay_sync::Step)/
//! [`FrameReport`](coplay_sync::FrameReport) shapes, the same wire
//! protocol) and implements [`SessionDriver`](coplay_sync::SessionDriver),
//! so `run_realtime` and the discrete-event simulator drive either
//! interchangeably — pick the mode per site via
//! [`ConsistencyMode`](coplay_sync::ConsistencyMode) in `SyncConfig`.
//!
//! # Examples
//!
//! Two rollback sites over an in-process link:
//!
//! ```
//! use coplay_net::{loopback, PeerId};
//! use coplay_rollback::RollbackSession;
//! use coplay_sync::{run_realtime, ConsistencyMode, RandomPresser, SyncConfig};
//! use coplay_vm::{NullMachine, Player};
//!
//! let (ta, tb) = loopback(PeerId(0), PeerId(1));
//! let mut cfg0 = SyncConfig::two_player(0);
//! cfg0.consistency = ConsistencyMode::rollback();
//! cfg0.cfps = 240; // quick doc test
//! let mut cfg1 = cfg0.clone();
//! cfg1.my_site = 1;
//!
//! let a = RollbackSession::new(cfg0, NullMachine::new(), ta,
//!                              RandomPresser::new(Player::ONE, 1));
//! let b = RollbackSession::new(cfg1, NullMachine::new(), tb,
//!                              RandomPresser::new(Player::TWO, 2));
//!
//! let ha = std::thread::spawn(move || run_realtime(a, 30, |_, _| {}));
//! let hb = std::thread::spawn(move || run_realtime(b, 30, |_, _| {}));
//! ha.join().unwrap()?;
//! hb.join().unwrap()?;
//! # Ok::<(), coplay_sync::SyncError>(())
//! ```

#![warn(missing_docs)]

pub mod delta;
mod pool;
mod predict;
mod session;
mod snapshot;

pub use pool::{BufferPool, PoolStats};
pub use predict::{AssumeIdle, InputPredictor, RepeatLast};
pub use session::RollbackSession;
pub use snapshot::{
    CheckpointInfo, CheckpointReport, CompressionStats, RestoreError, SnapshotRing,
};
