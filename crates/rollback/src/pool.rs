//! A free-list of byte buffers for the checkpoint hot path.
//!
//! Every checkpoint the snapshot ring takes needs a byte buffer, and every
//! eviction or discard releases one. Recycling them through this pool means
//! that after a short warm-up the steady-state checkpoint path performs
//! zero heap allocations — the acceptance bar the `hotpath` benchmark
//! tracks. The pool also counts hits and misses so telemetry can prove the
//! reuse rate instead of asserting it.

/// Reuse statistics for a [`BufferPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers served from the free list.
    pub hits: u64,
    /// Buffers newly allocated because the free list was empty.
    pub misses: u64,
}

impl PoolStats {
    /// Fraction of takes served without allocating, in thousandths
    /// (1000 = every take reused a buffer; also 1000 when nothing was
    /// ever taken). Integer so the deterministic core stays float-free.
    pub fn hit_rate_milli(&self) -> u64 {
        (self.hits * 1000)
            .checked_div(self.hits + self.misses)
            .unwrap_or(1000)
    }
}

/// A bounded free-list of `Vec<u8>` buffers.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_retained: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// Creates a pool retaining at most `max_retained` idle buffers.
    pub fn new(max_retained: usize) -> BufferPool {
        BufferPool {
            free: Vec::with_capacity(max_retained),
            max_retained,
            stats: PoolStats::default(),
        }
    }

    /// Takes a cleared buffer, reusing a pooled allocation when one is
    /// available.
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                self.stats.hits += 1;
                buf
            }
            None => {
                self.stats.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool (cleared, capacity kept). Buffers past
    /// the retention cap are dropped.
    pub fn give(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < self.max_retained {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Number of idle buffers currently retained.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn takes_miss_then_hit() {
        let mut p = BufferPool::new(4);
        let a = p.take();
        assert_eq!(p.stats(), PoolStats { hits: 0, misses: 1 });
        p.give(a);
        let b = p.take();
        assert_eq!(p.stats(), PoolStats { hits: 1, misses: 1 });
        assert_eq!(p.stats().hit_rate_milli(), 500);
        drop(b);
    }

    #[test]
    fn reuse_keeps_capacity_and_clears_contents() {
        let mut p = BufferPool::new(4);
        let mut a = p.take();
        a.extend_from_slice(&[1, 2, 3, 4]);
        let cap = a.capacity();
        p.give(a);
        let b = p.take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
    }

    #[test]
    fn retention_is_bounded() {
        let mut p = BufferPool::new(2);
        p.give(vec![0; 8]);
        p.give(vec![0; 8]);
        p.give(vec![0; 8]);
        assert_eq!(p.idle(), 2);
    }

    #[test]
    fn empty_pool_hit_rate_is_one() {
        assert_eq!(PoolStats::default().hit_rate_milli(), 1000);
    }
}
