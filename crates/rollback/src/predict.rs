//! Remote-input prediction policies.
//!
//! When a frame must execute before a remote site's partial input has
//! arrived, the session asks an [`InputPredictor`] to guess it. The
//! default, [`RepeatLast`], repeats the site's most recent authoritative
//! partial — human button presses persist for many frames, so the guess is
//! usually right and most speculated frames never need a rollback.

use coplay_vm::InputWord;

/// A policy for guessing a remote site's partial input.
///
/// `predict` receives the site, the frame being speculated, and the most
/// recent *authoritative* partial received from that site (`None` before
/// anything arrived). The returned word is masked to the site's input bits
/// by the caller, so a sloppy predictor cannot inject foreign buttons.
pub trait InputPredictor {
    /// Guesses `site`'s partial input for `frame`.
    fn predict(&mut self, site: u8, frame: u64, last_authoritative: Option<InputWord>)
        -> InputWord;
}

/// Repeats the site's last authoritative partial input (the classic
/// rollback-netcode default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepeatLast;

impl InputPredictor for RepeatLast {
    fn predict(&mut self, _site: u8, _frame: u64, last: Option<InputWord>) -> InputWord {
        last.unwrap_or(InputWord::NONE)
    }
}

/// Always predicts no input — a deliberately poor baseline that maximizes
/// mispredictions whenever the remote player holds a button (used to
/// exercise the rollback path in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssumeIdle;

impl InputPredictor for AssumeIdle {
    fn predict(&mut self, _site: u8, _frame: u64, _last: Option<InputWord>) -> InputWord {
        InputWord::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_last_echoes_the_latest_partial() {
        let mut p = RepeatLast;
        assert_eq!(p.predict(1, 10, None), InputWord::NONE);
        assert_eq!(p.predict(1, 11, Some(InputWord(0x0300))), InputWord(0x0300));
    }

    #[test]
    fn assume_idle_never_presses() {
        let mut p = AssumeIdle;
        assert_eq!(p.predict(0, 5, Some(InputWord(0xFF))), InputWord::NONE);
    }
}
