//! The speculative session driver: predict, execute, repair.
//!
//! [`RollbackSession`] mirrors the lockstep driver's shape — same wire
//! protocol, same handshake, same [`Step`]/[`FrameReport`] surface — but
//! replaces Algorithm 2's *wait for every input* exit condition with
//! speculation: a frame whose remote inputs are missing executes anyway
//! under predicted inputs, and a later authoritative input that contradicts
//! a prediction triggers a checkpoint restore plus resimulation. The
//! session only blocks when execution would run more than
//! `max_rollback_frames` past the confirmed-input frontier, so RTT spikes
//! shallower than the speculation window never freeze the frame loop.
//!
//! Because both drivers speak the identical protocol, a rollback site can
//! play against a lockstep site — each maintains logical consistency its
//! own way while the merged authoritative input sequence stays the same.

use std::collections::BTreeMap;

use coplay_clock::{SimDelta, SimDuration, SimTime};
use coplay_net::{PeerId, Transport};
use coplay_sync::{
    ConsistencyMode, FrameEnd, FrameReport, FrameTimer, InputSource, InputSync, Message,
    RttEstimator, SessionDriver, SessionStats, Step, StopReason, SyncConfig, SyncError, Topology,
};
use coplay_telemetry::{EventKind, SpanStage};
use coplay_vm::{DirtyPages, InputWord, InterpStats, Machine, StepMode};

use crate::predict::{InputPredictor, RepeatLast};
use crate::snapshot::SnapshotRing;

/// Hello retransmission interval during the session handshake.
const JOIN_RETRY: SimDuration = SimDuration::from_millis(200);

/// Cap on confirmed-hash entries retained when the caller never drains
/// [`RollbackSession::take_confirmed`].
const MAX_RETAINED_HASHES: usize = 4096;

#[derive(Debug)]
enum Phase {
    /// Master: waiting for every player's Hello.
    MasterWait,
    /// Non-master: helloing until every player acknowledged.
    Connecting {
        next_hello: SimTime,
        acks: BTreeMap<u8, u64>,
    },
    Run(RunState),
    Done(StopReason),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    StartAt(SimTime),
    Begin,
    Executing,
    EndWait(SimTime),
}

/// One site of a distributed game session under rollback consistency.
///
/// Construction mirrors [`LockstepSession`](coplay_sync::LockstepSession):
/// the speculation window and checkpoint cadence come from
/// [`SyncConfig::consistency`] (defaults applied when it is `Lockstep`).
pub struct RollbackSession<M, T, S, P = RepeatLast> {
    cfg: SyncConfig,
    max_rollback_frames: u64,
    checkpoint_interval: u64,
    machine: M,
    transport: T,
    source: S,
    predictor: P,
    sync: InputSync,
    timer: FrameTimer,
    rtt: RttEstimator,
    phase: Phase,
    frame: u64,
    frame_start: SimTime,
    rom_hash: u64,
    joined: Vec<u8>,
    time_server: Option<PeerId>,
    hash_frames: bool,
    stats: SessionStats,
    blocked_at: Option<SimTime>,
    ring: SnapshotRing,
    /// Reusable dirty bitmap for rollback: drained from the machine and
    /// unioned with popped checkpoints' bitmaps to bound the restore.
    rollback_dirty: DirtyPages,
    /// Reusable restore buffer for checkpoint reconstruction.
    restore_buf: Vec<u8>,
    /// Reusable datagram buffer for the per-frame input send path.
    send_buf: Vec<u8>,
    /// Pool hits already published to the telemetry counter.
    pool_hits_reported: u64,
    /// Decode-cache totals already published to telemetry (the report
    /// event carries deltas against this).
    interp_reported: InterpStats,
    /// Predicted partials actually fed to the machine, per speculated frame
    /// per remote site — the comparison base for misprediction detection.
    used: BTreeMap<u64, BTreeMap<u8, InputWord>>,
    /// State hash after each executed frame, kept until confirmed and
    /// drained via [`RollbackSession::take_confirmed`].
    recent_hashes: BTreeMap<u64, u64>,
    /// First mispredicted frame discovered while draining the transport;
    /// repaired by the next `perform_rollback`.
    pending_rollback: Option<u64>,
    /// Next frame eligible for confirmation: frames below were already
    /// drained via `take_confirmed` and must not be re-reported when a
    /// rollback resimulates through them.
    confirm_next: u64,
    /// Timestamp of the most recent `tick`/`pump` call, used to stamp
    /// `Confirmed` spans from [`RollbackSession::take_confirmed`], which
    /// takes no clock of its own.
    last_tick_at: SimTime,
}

impl<M: Machine, T: Transport, S: InputSource> RollbackSession<M, T, S, RepeatLast> {
    /// Creates a session site with the default repeat-last predictor.
    /// `machine` must be in its initial state — its state hash doubles as
    /// the game-image identity the handshake compares.
    pub fn new(cfg: SyncConfig, machine: M, transport: T, source: S) -> Self {
        RollbackSession::with_predictor(cfg, machine, transport, source, RepeatLast)
    }
}

impl<M: Machine, T: Transport, S: InputSource, P: InputPredictor> RollbackSession<M, T, S, P> {
    /// Creates a session site with a custom prediction policy.
    pub fn with_predictor(
        cfg: SyncConfig,
        machine: M,
        transport: T,
        source: S,
        predictor: P,
    ) -> Self {
        let (max_rollback_frames, checkpoint_interval) = match cfg.consistency {
            ConsistencyMode::Rollback {
                max_rollback_frames,
                checkpoint_interval,
            } => (max_rollback_frames, checkpoint_interval.max(1)),
            // Constructed without explicit tuning: apply the defaults.
            ConsistencyMode::Lockstep => match ConsistencyMode::rollback() {
                ConsistencyMode::Rollback {
                    max_rollback_frames,
                    checkpoint_interval,
                } => (max_rollback_frames, checkpoint_interval),
                // detlint: allow(panic_path) -- ConsistencyMode::rollback() always returns Rollback
                ConsistencyMode::Lockstep => unreachable!(),
            },
        };
        let rom_hash = machine.state_hash();
        let tpf = cfg.time_per_frame();
        let dead_zone = cfg.sync_dead_zone.min(cfg.local_lag() / 4);
        let timer = FrameTimer::new(tpf, cfg.is_master(), cfg.rate_sync, cfg.buf_frames)
            .with_dead_zone(dead_zone)
            // detlint: allow(hot_alloc) -- constructor-time Arc handle clone, not per-frame
            .with_telemetry(cfg.telemetry.clone());
        // detlint: allow(hot_alloc) -- constructor-time Arc handle clone, not per-frame
        let rtt = RttEstimator::default().with_telemetry(cfg.telemetry.clone());
        let phase = if cfg.is_master() {
            Phase::MasterWait
        } else {
            Phase::Connecting {
                next_hello: SimTime::ZERO,
                // detlint: allow(hot_alloc) -- constructor-time handshake state, not per-frame
                acks: BTreeMap::new(),
            }
        };
        RollbackSession {
            // detlint: allow(hot_alloc) -- one-time config clone at session construction
            sync: InputSync::new(cfg.clone()),
            max_rollback_frames,
            checkpoint_interval,
            timer,
            rtt,
            phase,
            frame: 0,
            frame_start: SimTime::ZERO,
            rom_hash,
            // detlint: allow(hot_alloc) -- one-time constructor allocation, not per-frame
            joined: Vec::new(),
            time_server: None,
            hash_frames: true,
            stats: SessionStats::default(),
            blocked_at: None,
            ring: SnapshotRing::new(SnapshotRing::capacity_for(
                max_rollback_frames,
                checkpoint_interval,
            )),
            rollback_dirty: DirtyPages::default(),
            // detlint: allow(hot_alloc) -- reusable buffer; grows once, then steady-state
            restore_buf: Vec::new(),
            // detlint: allow(hot_alloc) -- reusable buffer; grows once, then steady-state
            send_buf: Vec::new(),
            pool_hits_reported: 0,
            interp_reported: InterpStats::default(),
            // detlint: allow(hot_alloc) -- one-time constructor allocation, not per-frame
            used: BTreeMap::new(),
            // detlint: allow(hot_alloc) -- one-time constructor allocation, not per-frame
            recent_hashes: BTreeMap::new(),
            pending_rollback: None,
            confirm_next: 0,
            last_tick_at: SimTime::ZERO,
            cfg,
            machine,
            transport,
            source,
            predictor,
        }
    }

    /// Also stamp every frame begin to the measurement time server at
    /// `peer` (§4's experimental setup).
    pub fn with_time_server(mut self, peer: PeerId) -> Self {
        self.time_server = Some(peer);
        self
    }

    /// Disables per-frame state hashing (checkpoints still hash at the
    /// checkpoint cadence). [`RollbackSession::take_confirmed`] returns
    /// nothing in this mode.
    pub fn without_frame_hashes(mut self) -> Self {
        self.hash_frames = false;
        self
    }

    /// The local machine replica. Its state is *speculative*: frames past
    /// the confirmed-input frontier may still be rolled back.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// The site's current frame.
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// The site configuration.
    pub fn config(&self) -> &SyncConfig {
        &self.cfg
    }

    /// The current smoothed RTT estimate.
    pub fn rtt(&self) -> SimDuration {
        self.rtt.rtt()
    }

    /// The sync engine (metrics/test hook).
    pub fn sync(&self) -> &InputSync {
        &self.sync
    }

    /// In-band session counters, including the rollback triple
    /// (`rollbacks`, `resimulated_frames`, `max_rollback_depth`).
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Total bytes currently held by the checkpoint ring.
    pub fn checkpoint_bytes(&self) -> usize {
        self.ring.bytes()
    }

    /// Drains the per-frame state hashes that have become *authoritative*:
    /// every site's input for them arrived, any misprediction was repaired,
    /// and no future rollback can revisit them. Returns `(frame, hash)`
    /// pairs in frame order — directly comparable against a lockstep
    /// replica's per-frame hashes.
    pub fn take_confirmed(&mut self) -> Vec<(u64, u64)> {
        let pointer = self.sync.pointer();
        if pointer == 0 {
            // detlint: allow(hot_alloc) -- empty Vec::new() does not touch the heap
            return Vec::new();
        }
        let limit = self.sync.authoritative_frontier().min(pointer - 1);
        let at = self.last_tick_at;
        // detlint: allow(hot_alloc) -- drained accumulator; ownership moves to the caller
        let mut out = Vec::new();
        while let Some(entry) = self.recent_hashes.first_entry() {
            if *entry.key() > limit {
                break;
            }
            let (frame, hash) = entry.remove_entry();
            // A rollback may resimulate through already-confirmed frames
            // and re-insert their (identical) hashes; report each once.
            if frame >= self.confirm_next {
                self.cfg
                    .telemetry
                    .span(at, SpanStage::Confirmed, frame, self.cfg.my_site);
                out.push((frame, hash));
            }
        }
        if let Some(&(last, _)) = out.last() {
            self.confirm_next = last + 1;
        }
        out
    }

    /// Sends an orderly goodbye and stops the session.
    ///
    /// # Errors
    ///
    /// Propagates transport failures while sending the goodbye.
    pub fn stop(&mut self) -> Result<(), SyncError> {
        let bye = Message::Bye.encode();
        if self.cfg.topology == Topology::Relay {
            // One relay address carries the whole session: a single
            // broadcast goodbye reaches every other member.
            self.transport.send(PeerId::BROADCAST, &bye)?;
        } else {
            for p in self.cfg.peers().map(PeerId).collect::<Vec<_>>() {
                self.transport.send(p, &bye)?;
            }
        }
        self.phase = Phase::Done(StopReason::LocalQuit);
        Ok(())
    }

    /// Drives the session. Call whenever the previous [`Step::Wait`]
    /// deadline passes **or** a datagram may have arrived.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError`] on transport failure, game-image mismatch, a
    /// missing rollback checkpoint, or a stall exceeding the configured
    /// timeout while blocked at the speculation-window edge.
    pub fn tick(&mut self, now: SimTime) -> Result<Step, SyncError> {
        self.last_tick_at = now;
        self.drain_transport(now)?;
        self.perform_rollback(now)?;
        loop {
            match &mut self.phase {
                // detlint: allow(hot_alloc) -- terminal stop path, runs once per session
                Phase::Done(reason) => return Ok(Step::Stopped(reason.clone())),
                Phase::MasterWait => {
                    let players_expected = self.cfg.num_sites as usize - 1;
                    if self.joined.len() >= players_expected {
                        self.phase =
                            Phase::Run(RunState::StartAt(now + self.cfg.first_frame_delay));
                        continue;
                    }
                    return Ok(Step::Wait(now + JOIN_RETRY));
                }
                Phase::Connecting { next_hello, acks } => {
                    let player_peers: Vec<u8> = (0..self.cfg.num_sites)
                        .filter(|&s| s != self.cfg.my_site)
                        .collect();
                    if player_peers.iter().all(|p| acks.contains_key(p)) {
                        let start = acks.values().copied().max().unwrap_or(0);
                        if start != 0 {
                            // A speculative replica cannot serve (or join
                            // from) a mid-game snapshot: the state is not
                            // authoritative until the frontier passes it.
                            return Err(SyncError::Snapshot(
                                "rollback sessions do not support latecomer joins".into(),
                            ));
                        }
                        self.phase =
                            Phase::Run(RunState::StartAt(now + self.cfg.first_frame_delay));
                        continue;
                    }
                    if now >= *next_hello {
                        *next_hello = now + JOIN_RETRY;
                        let hello = Message::Hello {
                            site: self.cfg.my_site,
                            rom_hash: self.rom_hash,
                            observer: !self.sync.is_player(),
                        }
                        .encode();
                        if self.cfg.topology == Topology::Relay {
                            // Outbound-only client: the relay fans the
                            // hello out to whichever members are present.
                            self.transport.send(PeerId::BROADCAST, &hello)?;
                        } else {
                            for &p in &player_peers {
                                if !acks.contains_key(&p) {
                                    self.transport.send(PeerId(p), &hello)?;
                                }
                            }
                        }
                    }
                    let deadline = match &self.phase {
                        Phase::Connecting { next_hello, .. } => *next_hello,
                        // detlint: allow(panic_path) -- this arm matched Phase::Connecting above
                        _ => unreachable!(),
                    };
                    return Ok(Step::Wait(deadline));
                }
                Phase::Run(state) => match *state {
                    RunState::StartAt(t) => {
                        if now >= t {
                            self.phase = Phase::Run(RunState::Begin);
                            continue;
                        }
                        return Ok(Step::Wait(t));
                    }
                    RunState::Begin => {
                        self.frame_start = now;
                        self.cfg
                            .telemetry
                            .record(now, EventKind::FrameBegun { frame: self.frame });
                        let obs = self.sync.master_observation();
                        self.timer
                            .begin_frame(now, self.frame, obs.as_ref(), self.rtt.rtt());
                        if self.timer.last_sync_adjust() != SimDelta::ZERO {
                            self.stats.pace_adjustments += 1;
                        }
                        let local = self.source.sample(self.frame);
                        self.sync.begin_frame(self.frame, local, now);
                        if let Some(server) = self.time_server {
                            let stamp = Message::TimeStamp {
                                site: self.cfg.my_site,
                                frame: self.frame,
                            };
                            self.transport.send(server, &stamp.encode())?;
                        }
                        self.phase = Phase::Run(RunState::Executing);
                    }
                    RunState::Executing => {
                        if !self.cfg.is_master() {
                            if let Some(nonce) = self.rtt.maybe_ping(now) {
                                self.transport
                                    .send(PeerId(0), &Message::Ping { nonce }.encode())?;
                            }
                        }
                        for (dst, msg) in self.sync.outgoing(now) {
                            self.stats.input_messages_sent += 1;
                            self.stats.input_frames_sent += msg.inputs.len() as u64;
                            Message::Input(msg).encode_into(&mut self.send_buf);
                            self.transport.send(PeerId(dst), &self.send_buf)?;
                        }
                        let pointer = self.sync.pointer();
                        let frontier = self.sync.authoritative_frontier();
                        // The speculation window: execute unless this frame
                        // would run more than `max_rollback_frames` past the
                        // confirmed frontier (degrading to lockstep-style
                        // blocking keeps rollback depth — and the checkpoint
                        // ring — bounded).
                        let within_window =
                            pointer <= frontier.saturating_add(self.max_rollback_frames);
                        if within_window {
                            let mut stall = SimDuration::ZERO;
                            if let Some(began) = self.blocked_at.take() {
                                stall = now.saturating_since(began);
                                self.stats.note_stall(began, now);
                                self.cfg.telemetry.record(
                                    now,
                                    EventKind::StallEnd {
                                        frame: self.frame,
                                        duration: stall,
                                    },
                                );
                            }
                            let input = self.step_frame_at(pointer, now, true, StepMode::Present);
                            self.cfg.telemetry.span(
                                now,
                                SpanStage::Merged,
                                pointer,
                                self.cfg.my_site,
                            );
                            self.cfg.telemetry.span(
                                now,
                                SpanStage::Presented,
                                pointer,
                                self.cfg.my_site,
                            );
                            self.sync.advance();
                            self.cfg.telemetry.record(
                                now,
                                EventKind::FrameExecuted {
                                    frame: self.frame,
                                    frame_time: now.saturating_since(self.frame_start),
                                },
                            );
                            let report = FrameReport {
                                frame: self.frame,
                                input,
                                state_hash: self.hash_frames.then(|| self.machine.state_hash()),
                                began_at: self.frame_start,
                                stall,
                            };
                            self.stats.frames += 1;
                            let next_wake = match self.timer.end_frame(now) {
                                FrameEnd::WaitUntil(t) => t,
                                FrameEnd::Behind => {
                                    self.stats.late_frames += 1;
                                    now
                                }
                            };
                            self.phase = Phase::Run(RunState::EndWait(next_wake));
                            return Ok(Step::FrameDone { report, next_wake });
                        }
                        if self.blocked_at.is_none() {
                            self.blocked_at = Some(now);
                            self.cfg
                                .telemetry
                                .record(now, EventKind::StallBegin { frame: self.frame });
                        }
                        if let (Some(limit), Some(began)) =
                            (self.cfg.stall_timeout, self.blocked_at)
                        {
                            let stalled = now.saturating_since(began);
                            if stalled >= limit {
                                return Err(SyncError::Stalled(stalled));
                            }
                        }
                        return Ok(Step::Wait(now + self.cfg.poll_interval));
                    }
                    RunState::EndWait(until) => {
                        if now >= until {
                            self.frame += 1;
                            self.phase = Phase::Run(RunState::Begin);
                            continue;
                        }
                        return Ok(Step::Wait(until));
                    }
                },
            }
        }
    }

    /// Services the network without advancing the game: drains incoming
    /// datagrams, repairs any misprediction they revealed, and flushes
    /// input frames still owed to peers.
    ///
    /// # Errors
    ///
    /// Propagates transport failures, like [`tick`](Self::tick).
    pub fn pump(&mut self, now: SimTime) -> Result<(), SyncError> {
        self.last_tick_at = now;
        self.drain_transport(now)?;
        self.perform_rollback(now)?;
        if matches!(self.phase, Phase::Run(_)) {
            for (dst, msg) in self.sync.outgoing(now) {
                self.stats.input_messages_sent += 1;
                self.stats.input_frames_sent += msg.inputs.len() as u64;
                Message::Input(msg).encode_into(&mut self.send_buf);
                self.transport.send(PeerId(dst), &self.send_buf)?;
            }
        }
        Ok(())
    }

    /// Saves a checkpoint before executing `frame` when the cadence (or an
    /// empty ring) calls for one, then executes it: authoritative partials
    /// where the frontier covers them, predictions elsewhere. `mode` is
    /// `Headless` for repair frames whose output will never be presented.
    fn step_frame_at(
        &mut self,
        frame: u64,
        now: SimTime,
        count_predictions: bool,
        mode: StepMode,
    ) -> InputWord {
        let due = frame.is_multiple_of(self.checkpoint_interval) || self.ring.is_empty();
        if due && self.ring.newest_frame().is_none_or(|n| n < frame) {
            let report =
                self.ring
                    .checkpoint_from(frame, self.machine.state_hash(), &mut self.machine);
            self.cfg.telemetry.record(
                now,
                EventKind::CheckpointSaved {
                    frame,
                    bytes: report.state_len as u64,
                },
            );
            // Bytes the incremental capture actually rewrote (vs the 84 KiB
            // a full-image save would copy), and how concentrated the
            // frame's writes were.
            self.cfg
                .telemetry
                .counter_add("snapshot_bytes_saved_total", report.dirty_bytes as u64);
            self.cfg
                .telemetry
                .observe("dirty_pages_per_frame", report.dirty_pages as u64);
            // How much smaller delta storage keeps checkpoints than full
            // copies, in thousandths (4000 = 4× smaller).
            self.cfg.telemetry.gauge_set(
                "checkpoint_compression_ratio_milli",
                self.ring.compression().ratio_milli() as i64,
            );
            let hits = self.ring.pool_stats().hits;
            if hits > self.pool_hits_reported {
                self.cfg
                    .telemetry
                    .counter_add("snapshot_pool_hits_total", hits - self.pool_hits_reported);
                self.pool_hits_reported = hits;
            }
            if let Some(stats) = self.machine.interp_stats() {
                let hits = stats.hits.saturating_sub(self.interp_reported.hits);
                let misses = stats.misses.saturating_sub(self.interp_reported.misses);
                let flushes = stats.flushes.saturating_sub(self.interp_reported.flushes);
                let fused = stats
                    .fused_hits
                    .saturating_sub(self.interp_reported.fused_hits);
                if hits | misses | flushes | fused != 0 {
                    self.cfg.telemetry.record(
                        now,
                        EventKind::DecodeCacheReport {
                            hits,
                            misses,
                            flushes,
                            fused,
                        },
                    );
                    self.interp_reported = stats;
                }
            }
        }
        let mut word = self.sync.merged_input(frame);
        self.used.remove(&frame);
        for s in 0..self.cfg.num_sites {
            if s == self.cfg.my_site {
                continue;
            }
            let last_rcv = self.sync.last_rcv(s).unwrap_or(0);
            if frame <= last_rcv {
                // Covered by the contiguous frontier: the buffered partial
                // (or its absence, meaning no input) is authoritative.
                continue;
            }
            let last = self
                .sync
                .has_authoritative(last_rcv, s)
                .then(|| self.sync.authoritative_partial(last_rcv, s));
            let guess = self.predictor.predict(s, frame, last);
            let masked = self.cfg.port_map.partial_input(s, guess);
            self.used.entry(frame).or_default().insert(s, masked);
            if count_predictions {
                self.cfg.telemetry.counter_add("predicted_frames_total", 1);
                self.cfg.telemetry.span(now, SpanStage::Predicted, frame, s);
            }
            word = word.merged(masked);
        }
        self.machine.step_frame_mode(word, mode);
        if self.hash_frames {
            self.recent_hashes.insert(frame, self.machine.state_hash());
            while self.recent_hashes.len() > MAX_RETAINED_HASHES {
                self.recent_hashes.pop_first();
            }
        }
        word
    }

    /// Restores the newest checkpoint at or before the first mispredicted
    /// frame and resimulates to the present, re-predicting inputs that are
    /// still missing.
    fn perform_rollback(&mut self, now: SimTime) -> Result<(), SyncError> {
        let Some(target) = self.pending_rollback.take() else {
            return Ok(());
        };
        let pointer = self.sync.pointer();
        if target >= pointer {
            return Ok(());
        }
        // One O(dirty) pass: discard the checkpoints computed from the
        // mispredicted state (they must not serve as restore points
        // again), rewind the ring's tail to the target, and accumulate —
        // on top of the machine's own drift since the newest capture —
        // the pages each popped checkpoint changed. The union bounds
        // every byte where the live state can differ from the target, so
        // the restore touches only those.
        self.machine.collect_dirty_into(&mut self.rollback_dirty);
        let info = self
            .ring
            .rewind_into(target, &mut self.restore_buf, &mut self.rollback_dirty)
            // detlint: allow(hot_alloc) -- error path; the session is about to abort
            .map_err(|e| SyncError::Snapshot(e.to_string()))?;
        let cp_frame = info.frame;
        self.machine
            .load_state_dirty(&self.restore_buf, &self.rollback_dirty)
            // detlint: allow(hot_alloc) -- error path; the session is about to abort
            .map_err(|e| SyncError::Snapshot(e.to_string()))?;
        let restored: usize = self.rollback_dirty.byte_ranges().map(|(s, e)| e - s).sum();
        self.cfg
            .telemetry
            .counter_add("snapshot_bytes_restored_total", restored as u64);
        if self.machine.state_hash() != info.hash {
            // detlint: allow(hot_alloc) -- error path; the session is about to abort
            return Err(SyncError::Snapshot(format!(
                "checkpoint for frame {cp_frame} restored to a mismatched state hash"
            )));
        }
        let depth = pointer - target;
        let resimulated = pointer - cp_frame;
        self.cfg.telemetry.span(
            now,
            SpanStage::CheckpointRestored,
            cp_frame,
            self.cfg.my_site,
        );
        // Only the last repaired frame is ever presented: everything before
        // it steps headless, skipping draw/audio work nobody will see while
        // advancing authoritative state byte-identically.
        for g in cp_frame..pointer {
            let mode = if g + 1 == pointer {
                StepMode::Present
            } else {
                StepMode::Headless
            };
            let _ = self.step_frame_at(g, now, false, mode);
            self.cfg
                .telemetry
                .span(now, SpanStage::Resimulated, g, self.cfg.my_site);
        }
        if resimulated > 1 {
            self.cfg
                .telemetry
                .counter_add("headless_resim_frames_total", resimulated - 1);
        }
        self.stats.note_rollback(depth, resimulated);
        self.cfg.telemetry.record(
            now,
            EventKind::RollbackExecuted {
                to_frame: target,
                depth,
                resimulated,
            },
        );
        Ok(())
    }

    fn drain_transport(&mut self, now: SimTime) -> Result<(), SyncError> {
        while let Some((from, data)) = self.transport.try_recv()? {
            let Ok(msg) = Message::decode(&data) else {
                continue; // UDP noise
            };
            self.handle_message(from, msg, now)?;
        }
        Ok(())
    }

    fn handle_message(
        &mut self,
        from: PeerId,
        msg: Message,
        now: SimTime,
    ) -> Result<(), SyncError> {
        match msg {
            Message::Input(m) => {
                self.stats.input_messages_received += 1;
                let sender = m.from;
                let before = self.sync.last_rcv(sender);
                let outcome = self.sync.on_message(&m, now);
                if outcome.duplicate {
                    self.stats.duplicate_messages_received += 1;
                }
                self.stats.retransmitted_frames_received +=
                    (outcome.carried - outcome.fresh) as u64;
                if let Some(before) = before {
                    self.check_predictions(sender, before, now);
                }
            }
            Message::Ping { nonce } => {
                self.transport
                    .send(from, &Message::Pong { nonce }.encode())?;
            }
            Message::Pong { nonce } => self.rtt.on_pong(nonce, now),
            Message::Hello {
                site,
                rom_hash,
                observer,
            } => {
                if rom_hash != self.rom_hash {
                    return Err(SyncError::RomMismatch {
                        ours: self.rom_hash,
                        theirs: rom_hash,
                    });
                }
                self.sync.add_peer(site, self.sync.pointer());
                self.cfg
                    .telemetry
                    .record(now, EventKind::PeerJoined { site });
                if !observer && !self.joined.contains(&site) {
                    self.joined.push(site);
                }
                // Unlike lockstep, a speculative site cannot serve a
                // latecomer snapshot, so it always advertises a fresh start.
                let ack = Message::HelloAck {
                    rom_hash: self.rom_hash,
                    start_frame: 0,
                };
                self.transport.send(from, &ack.encode())?;
            }
            Message::HelloAck {
                rom_hash,
                start_frame,
            } => {
                if rom_hash != self.rom_hash {
                    return Err(SyncError::RomMismatch {
                        ours: self.rom_hash,
                        theirs: rom_hash,
                    });
                }
                if let Phase::Connecting { acks, .. } = &mut self.phase {
                    acks.insert(from.0, start_frame);
                }
            }
            Message::Bye => {
                self.phase = Phase::Done(StopReason::PeerLeft);
            }
            // Snapshot transfer belongs to lockstep latecomer joins; a
            // rollback site neither serves nor consumes it. Time stamps are
            // for the measurement server only.
            Message::SnapshotRequest
            | Message::SnapshotChunk { .. }
            | Message::TimeStamp { .. } => {}
        }
        Ok(())
    }

    /// Compares the predictions used for frames newly covered by `sender`'s
    /// advancing frontier against the authoritative partials, queueing a
    /// rollback at the earliest mismatch.
    fn check_predictions(&mut self, sender: u8, before: u64, now: SimTime) {
        let after = self.sync.last_rcv(sender).unwrap_or(before);
        let pointer = self.sync.pointer();
        for g in (before + 1)..=after {
            if g >= pointer {
                break; // not executed yet: nothing was predicted
            }
            let mut emptied = false;
            let mut mispredicted = false;
            if let Some(per_site) = self.used.get_mut(&g) {
                if let Some(predicted) = per_site.remove(&sender) {
                    let authoritative = self.sync.authoritative_partial(g, sender);
                    mispredicted = predicted != authoritative;
                }
                emptied = per_site.is_empty();
            }
            if emptied {
                self.used.remove(&g);
            }
            if mispredicted {
                self.cfg.telemetry.record(
                    now,
                    EventKind::InputMispredicted {
                        frame: g,
                        site: sender,
                    },
                );
                self.cfg
                    .telemetry
                    .span(now, SpanStage::Mispredicted, g, sender);
                self.pending_rollback = Some(self.pending_rollback.map_or(g, |p| p.min(g)));
            }
        }
    }
}

impl<M: Machine, T: Transport, S: InputSource, P: InputPredictor> SessionDriver
    for RollbackSession<M, T, S, P>
{
    type Machine = M;

    fn tick(&mut self, now: SimTime) -> Result<Step, SyncError> {
        RollbackSession::tick(self, now)
    }

    fn pump(&mut self, now: SimTime) -> Result<(), SyncError> {
        RollbackSession::pump(self, now)
    }

    fn machine(&self) -> &M {
        RollbackSession::machine(self)
    }

    fn config(&self) -> &SyncConfig {
        RollbackSession::config(self)
    }

    fn stats(&self) -> SessionStats {
        RollbackSession::stats(self)
    }

    fn frame(&self) -> u64 {
        RollbackSession::frame(self)
    }
}

impl<M, T, S, P> std::fmt::Debug for RollbackSession<M, T, S, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollbackSession")
            .field("site", &self.cfg.my_site)
            .field("frame", &self.frame)
            .field("phase", &self.phase)
            .field("checkpoints", &self.ring.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_net::{loopback, LoopbackTransport};
    use coplay_sync::RandomPresser;
    use coplay_vm::{NullMachine, Player};

    type Sess = RollbackSession<NullMachine, LoopbackTransport, RandomPresser>;

    fn rollback_cfg(site: u8) -> SyncConfig {
        let mut cfg = SyncConfig::two_player(site);
        cfg.consistency = ConsistencyMode::rollback();
        cfg
    }

    fn sessions() -> (Sess, Sess) {
        let (ta, tb) = loopback(PeerId(0), PeerId(1));
        let a = RollbackSession::new(
            rollback_cfg(0),
            NullMachine::new(),
            ta,
            RandomPresser::new(Player::ONE, 1),
        );
        let b = RollbackSession::new(
            rollback_cfg(1),
            NullMachine::new(),
            tb,
            RandomPresser::new(Player::TWO, 2),
        );
        (a, b)
    }

    /// Confirmed `(frame, state_hash)` pairs drained from one session.
    type Confirmed = Vec<(u64, u64)>;

    /// Ticks both sessions in virtual time until each executed `frames`.
    fn run_pair(a: &mut Sess, b: &mut Sess, frames: u64) -> (Confirmed, Confirmed) {
        let mut now = SimTime::ZERO;
        let (mut ca, mut cb) = (Vec::new(), Vec::new());
        let mut guard = 0;
        while a.stats().frames < frames || b.stats().frames < frames {
            guard += 1;
            assert!(guard < 1_000_000, "no progress after 1M ticks");
            let mut next = now + SimDuration::from_millis(1);
            for (sess, confirmed) in [(&mut *a, &mut ca), (&mut *b, &mut cb)] {
                match sess.tick(now).unwrap() {
                    Step::Wait(t) => next = next.min(t),
                    Step::FrameDone { next_wake, .. } => next = next.min(next_wake),
                    Step::Stopped(r) => panic!("unexpected stop: {r}"),
                }
                confirmed.extend(sess.take_confirmed());
            }
            now = next.max(now + SimDuration::from_micros(100));
        }
        (ca, cb)
    }

    #[test]
    fn clean_loopback_converges_without_rollbacks() {
        let (mut a, mut b) = sessions();
        let (ca, cb) = run_pair(&mut a, &mut b, 120);
        // The local lag (6 frames ≈ 100 ms) dwarfs loopback delivery: every
        // input arrives before its frame executes, so nothing is predicted.
        assert_eq!(a.stats().rollbacks, 0, "clean link must not roll back");
        assert_eq!(b.stats().rollbacks, 0);
        let common = ca.len().min(cb.len());
        assert!(common >= 100, "confirmed hashes drained: {common}");
        assert_eq!(ca[..common], cb[..common], "replicas diverged");
    }

    #[test]
    fn silent_peer_speculates_then_blocks_at_the_window() {
        let (mut a, mut b) = sessions();
        // Handshake: both must exchange hellos first.
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            let _ = a.tick(now).unwrap();
            let _ = b.tick(now).unwrap();
            now += SimDuration::from_millis(5);
        }
        // b falls silent; a keeps ticking. The frontier freezes at whatever
        // b already covered; a speculates 30 frames past it, then blocks.
        let mut waits_at_limit = 0;
        for _ in 0..5_000 {
            now += SimDuration::from_millis(2);
            match a.tick(now).unwrap() {
                Step::Wait(_) if a.stats().frames > 30 => waits_at_limit += 1,
                _ => {}
            }
        }
        let frontier = a.sync().authoritative_frontier();
        assert_eq!(
            a.sync().pointer(),
            frontier + 31,
            "speculated to the window edge, then blocked"
        );
        assert!(waits_at_limit > 100, "blocked ticks observed");
        assert_eq!(
            a.stats().rollbacks,
            0,
            "no authoritative input, no rollback"
        );
        // The late peer finally speaks: its real inputs contradict the
        // repeat-last guess (b's presser holds real buttons, a predicted
        // empty), so a rolls back and both replicas converge.
        let (ca, cb) = run_pair(&mut a, &mut b, 120);
        assert!(a.stats().rollbacks > 0, "late inputs must trigger repair");
        assert!(a.stats().resimulated_frames >= a.stats().rollbacks);
        assert!(a.stats().max_rollback_depth > 0);
        assert!(a.stats().max_rollback_depth <= 31, "window bounds depth");
        let common = ca.len().min(cb.len());
        assert!(common >= 100);
        assert_eq!(ca[..common], cb[..common], "post-rollback hashes agree");
    }

    #[test]
    fn stall_timeout_fires_at_the_window_edge() {
        let (ta, _tb_keepalive) = loopback(PeerId(0), PeerId(1));
        let mut cfg = rollback_cfg(0);
        cfg.stall_timeout = Some(SimDuration::from_millis(400));
        let mut a = RollbackSession::new(
            cfg,
            NullMachine::new(),
            ta,
            RandomPresser::new(Player::ONE, 3),
        );
        // Fake the handshake: pretend site 1 joined so the run starts.
        a.joined.push(1);
        let mut now = SimTime::ZERO;
        let err = loop {
            match a.tick(now) {
                Ok(_) => now += SimDuration::from_millis(10),
                Err(e) => break e,
            }
            assert!(now < SimTime::from_secs(30), "never stalled out");
        };
        assert!(matches!(err, SyncError::Stalled(_)));
    }

    #[test]
    fn checkpoints_follow_the_cadence() {
        let (mut a, mut b) = sessions();
        let _ = run_pair(&mut a, &mut b, 60);
        assert!(a.checkpoint_bytes() > 0);
        // Cadence 5 over 60 frames: the ring (capacity 8) holds the newest
        // eight of frames {0, 5, 10, ...}.
        assert_eq!(a.ring.len(), 8);
        let newest = a.ring.newest_frame().unwrap();
        assert_eq!(newest % 5, 0);
    }

    #[test]
    fn report_carries_speculative_hash_and_stall() {
        let (mut a, mut b) = sessions();
        let mut now = SimTime::ZERO;
        let mut saw_report = false;
        for _ in 0..2_000 {
            for s in [&mut a, &mut b] {
                if let Step::FrameDone { report, .. } = s.tick(now).unwrap() {
                    assert!(report.state_hash.is_some());
                    assert_eq!(report.stall, SimDuration::ZERO, "clean link never stalls");
                    saw_report = true;
                }
            }
            now += SimDuration::from_millis(1);
        }
        assert!(saw_report);
    }
}
