//! A bounded ring of state checkpoints for rollback.
//!
//! The session saves a checkpoint every `checkpoint_interval` frames; on a
//! misprediction it restores the most recent checkpoint at or before the
//! mispredicted frame and resimulates forward. The ring's capacity is sized
//! so that a checkpoint always exists inside the speculation window (see
//! [`SnapshotRing::capacity_for`]).
//!
//! # Storage: one full tail + chained back-deltas
//!
//! Storing every checkpoint as a full `save_state` copy costs
//! `capacity × state_size` bytes and a full memcpy per checkpoint.
//! Consecutive checkpoints of a deterministic game are nearly identical,
//! so the ring keeps exactly one full image — `tail_full`, the *newest*
//! checkpoint — and stores every older slot as a *back-delta*: an XOR/RLE
//! patch (see [`crate::delta`]) that transforms a slot's own state into
//! the previous (older) slot's state. Restoring frame `k` copies the tail
//! and applies back-deltas newest-first until the walk reaches `k`.
//!
//! Pointing the chain backwards has two payoffs over the older
//! keyframe-plus-forward-delta layout:
//!
//! * **Push is O(dirty).** A new checkpoint encodes against the previous
//!   tail, and [`SnapshotRing::push_dirty`] narrows that scan to the byte
//!   ranges a [`DirtyPages`] bitmap says may have changed — no keyframe
//!   cadence ever forces an 84 KiB memcpy back into the hot path.
//! * **Eviction is O(1).** The oldest slot's back-delta points *out of*
//!   the ring (to a state nobody retains), so eviction just recycles its
//!   buffer — no promotion step re-applying deltas.
//!
//! Each slot also retains its dirty bitmap. A rollback via
//! [`SnapshotRing::rewind_into`] unions the bitmaps of every slot it pops,
//! yielding (by the triangle inequality on byte diffs) a sound
//! over-approximation of which pages differ between the machine's present
//! state and the restore target — so `Machine::load_state_dirty` touches
//! only those pages.
//!
//! All slot buffers and bitmaps cycle through pools, so the steady-state
//! checkpoint path allocates nothing.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use coplay_vm::{DirtyPages, Machine};

use crate::delta::{self, DeltaError};
use crate::pool::{BufferPool, PoolStats};

/// Which patch format a slot's `data` holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PatchKind {
    /// XOR/RLE back-delta (see [`crate::delta`]); self-describing, may
    /// change the state length.
    Delta,
    /// The previous state's raw bytes over the slot's dirty ranges,
    /// concatenated in range order — applied by memcpy alone, no decode
    /// scan. Produced only by [`SnapshotRing::checkpoint_from`]'s hot
    /// path, where both states have the same length.
    Ranges,
}

#[derive(Debug)]
struct Slot {
    frame: u64,
    hash: u64,
    /// Back-patch: applied to *this* slot's full state it yields the
    /// previous (older) slot's full state. The oldest slot's patch
    /// targets a state the ring no longer retains and is never applied.
    data: Vec<u8>,
    /// How to interpret `data`.
    kind: PatchKind,
    /// Pages that may differ between this slot's state and the previous
    /// slot's state (superset of the bytes `data` touches; for
    /// [`PatchKind::Ranges`] it *is* the patch's range list).
    dirty: DirtyPages,
}

impl Slot {
    /// Applies this slot's back-patch to `buf`, turning this slot's state
    /// into the previous slot's state.
    fn apply(&self, buf: &mut Vec<u8>) -> Result<(), RestoreError> {
        match self.kind {
            PatchKind::Delta => Ok(delta::apply_in_place(buf, &self.data)?),
            PatchKind::Ranges => apply_ranges(buf, &self.data, &self.dirty),
        }
    }
}

/// Applies a raw-range back-patch: `data` holds the previous state's bytes
/// over `dirty`'s ranges, concatenated in range order.
fn apply_ranges(buf: &mut [u8], data: &[u8], dirty: &DirtyPages) -> Result<(), RestoreError> {
    if dirty.len() != buf.len() {
        // A range patch never changes the state length; disagreement
        // means the slot is corrupt.
        return Err(RestoreError::Delta(DeltaError::Overrun));
    }
    let mut off = 0;
    for (s, e) in dirty.byte_ranges() {
        let src = data
            .get(off..off + (e - s))
            .ok_or(RestoreError::Delta(DeltaError::Truncated))?;
        buf[s..e].copy_from_slice(src);
        off += e - s;
    }
    if off != data.len() {
        return Err(RestoreError::Delta(DeltaError::BadCoverage));
    }
    Ok(())
}

/// What [`SnapshotRing::checkpoint_from`] captured, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Full serialized length of the captured state.
    pub state_len: usize,
    /// Bytes the ring stored for this checkpoint (the back-patch, or the
    /// full image for the first checkpoint).
    pub stored_bytes: usize,
    /// Bytes of the image the capture rewrote (sum of the dirty ranges).
    pub dirty_bytes: usize,
    /// Pages the machine reported dirty since the previous capture.
    pub dirty_pages: usize,
}

/// Metadata for a checkpoint served by [`SnapshotRing::restore_into`] or
/// [`SnapshotRing::rewind_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// The frame this state precedes: restoring it positions the machine
    /// to execute `frame` next.
    pub frame: u64,
    /// `Machine::state_hash` at capture time — callers verify the restored
    /// machine reproduces it.
    pub hash: u64,
    /// Bytes the ring stores for this checkpoint (its back-delta; the
    /// newest slot's full image lives in the shared tail and is counted
    /// by [`SnapshotRing::bytes`]).
    pub stored_bytes: usize,
}

/// Error restoring a checkpoint from the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// No retained checkpoint is at or before the requested frame.
    NoCheckpoint {
        /// The requested rollback frame.
        frame: u64,
    },
    /// A stored delta failed to apply (corrupt slot).
    Delta(DeltaError),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::NoCheckpoint { frame } => {
                write!(f, "no rollback checkpoint at or before frame {frame}")
            }
            RestoreError::Delta(e) => write!(f, "checkpoint delta corrupt: {e}"),
        }
    }
}

impl Error for RestoreError {}

impl From<DeltaError> for RestoreError {
    fn from(e: DeltaError) -> RestoreError {
        RestoreError::Delta(e)
    }
}

/// Compression statistics accumulated across every push.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressionStats {
    /// Total full-state bytes offered to the ring.
    pub full_bytes: u64,
    /// Total bytes actually stored (the first push's full tail copy plus
    /// every subsequent back-delta).
    pub stored_bytes: u64,
}

impl CompressionStats {
    /// Full-to-stored ratio in thousandths: 4000 means checkpoints average
    /// 4× smaller than full copies; 1000 when nothing was pushed. Integer
    /// so the deterministic core stays float-free.
    pub fn ratio_milli(&self) -> u64 {
        self.full_bytes
            .saturating_mul(1000)
            .checked_div(self.stored_bytes)
            .unwrap_or(1000)
    }
}

/// A bounded FIFO of checkpoints ordered by frame, stored as one full
/// newest-state image plus chained back-deltas over pooled buffers.
#[derive(Debug)]
pub struct SnapshotRing {
    slots: VecDeque<Slot>,
    capacity: usize,
    /// Full state of the newest checkpoint — the base every restore walk
    /// starts from and the reference the next push diffs against.
    tail_full: Vec<u8>,
    pool: BufferPool,
    /// Recycled dirty bitmaps, bounded like the buffer pool.
    dirty_pool: Vec<DirtyPages>,
    stats: CompressionStats,
}

impl SnapshotRing {
    /// Creates a ring retaining at most `capacity` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a rollback session without any
    /// checkpoint cannot repair a misprediction.
    pub fn new(capacity: usize) -> SnapshotRing {
        assert!(capacity > 0, "snapshot ring needs at least one slot");
        SnapshotRing {
            // detlint: allow(hot_alloc) -- one-time constructor allocation, not per-frame
            slots: VecDeque::with_capacity(capacity),
            capacity,
            // detlint: allow(hot_alloc) -- grows once to state size, then reused
            tail_full: Vec::new(),
            // One buffer per slot plus the one in flight during a push.
            pool: BufferPool::new(capacity + 1),
            // detlint: allow(hot_alloc) -- one-time constructor allocation, not per-frame
            dirty_pool: Vec::with_capacity(capacity + 1),
            stats: CompressionStats::default(),
        }
    }

    /// The capacity that guarantees a restore point for any rollback within
    /// `max_rollback_frames`, with checkpoints every `checkpoint_interval`
    /// frames: the window spans at most `window / interval` checkpoints,
    /// plus one for the partially-covered oldest edge and one in flight.
    pub fn capacity_for(max_rollback_frames: u64, checkpoint_interval: u64) -> usize {
        let interval = checkpoint_interval.max(1);
        (max_rollback_frames / interval) as usize + 2
    }

    fn take_dirty_buf(&mut self) -> DirtyPages {
        self.dirty_pool.pop().unwrap_or_default()
    }

    fn give_dirty_buf(&mut self, d: DirtyPages) {
        if self.dirty_pool.len() < self.capacity + 1 {
            self.dirty_pool.push(d);
        }
    }

    /// Appends a checkpoint, evicting the oldest when full.
    ///
    /// `state` is borrowed, not consumed: callers capture into a reusable
    /// buffer (`Machine::save_state_into`) and the ring copies into pooled
    /// storage. This full-scan variant diffs every byte of `state` against
    /// the previous checkpoint; prefer [`SnapshotRing::push_dirty`] when a
    /// dirty bitmap is available.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not strictly greater than the newest retained
    /// frame — checkpoints must arrive in execution order.
    pub fn push(&mut self, frame: u64, state: &[u8], hash: u64) {
        self.push_dirty(frame, state, hash, &DirtyPages::all_dirty(state.len()));
    }

    /// Appends a checkpoint like [`SnapshotRing::push`], but restricts the
    /// diff scan and the tail update to the byte ranges `dirty` marks.
    ///
    /// `dirty` must be a sound over-approximation of the bytes where
    /// `state` differs from the *previously pushed* state (extra marked
    /// pages cost only scan time; missing ones corrupt restores). A
    /// saturated bitmap or one whose length disagrees with `state`
    /// degrades to the full scan, so callers without tracking stay
    /// correct.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not strictly greater than the newest retained
    /// frame — checkpoints must arrive in execution order.
    pub fn push_dirty(&mut self, frame: u64, state: &[u8], hash: u64, dirty: &DirtyPages) {
        if let Some(newest) = self.newest_frame() {
            assert!(frame > newest, "checkpoints must be pushed in order");
        }
        if self.slots.len() == self.capacity {
            self.evict_front();
        }
        let mut data = self.pool.take();
        let mut slot_dirty = self.take_dirty_buf();
        if self.slots.is_empty() {
            // First checkpoint: the full image lives in the tail; the
            // slot's back-delta targets nothing and stays empty.
            data.clear();
            self.tail_full.clear();
            self.tail_full.extend_from_slice(state);
            slot_dirty.reset(state.len());
            slot_dirty.mark_all();
            self.stats.stored_bytes += state.len() as u64;
        } else {
            // Back-delta: applying it to `state` must yield the old tail.
            delta::encode_dirty_into(state, &self.tail_full, dirty, &mut data);
            self.stats.stored_bytes += data.len() as u64;
            if dirty.len() == state.len() && self.tail_full.len() == state.len() {
                slot_dirty.copy_from(dirty);
                for (s, e) in dirty.byte_ranges() {
                    self.tail_full[s..e].copy_from_slice(&state[s..e]);
                }
            } else {
                slot_dirty.reset(state.len());
                slot_dirty.mark_all();
                self.tail_full.clear();
                self.tail_full.extend_from_slice(state);
            }
        }
        self.stats.full_bytes += state.len() as u64;
        self.slots.push_back(Slot {
            frame,
            hash,
            data,
            kind: PatchKind::Delta,
            dirty: slot_dirty,
        });
    }

    /// Captures a checkpoint directly from `machine` into the ring — the
    /// zero-copy successor to capture-into-a-buffer-then-
    /// [`push_dirty`](SnapshotRing::push_dirty). The machine's dirty
    /// accumulators are drained once; the tail bytes those ranges are
    /// about to overwrite are saved as a raw [`PatchKind::Ranges`]
    /// back-patch; then the machine writes its new bytes straight into
    /// the tail. Both directions are pure memcpy — no XOR/RLE scan runs
    /// on this path, and no intermediate full-image buffer exists.
    ///
    /// Falls back to a full capture when the ring is empty (the first
    /// checkpoint stores the full image) and to an XOR/RLE back-delta
    /// when the dirty set spans at least half the image or the state
    /// length changed — there the encode scan earns its cost by
    /// collapsing unchanged bytes inside the marked ranges.
    ///
    /// `hash` is the machine's `state_hash()` at capture time, passed in
    /// so the ring stays agnostic of hashing policy.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not strictly greater than the newest retained
    /// frame — checkpoints must arrive in execution order.
    pub fn checkpoint_from<M: Machine + ?Sized>(
        &mut self,
        frame: u64,
        hash: u64,
        machine: &mut M,
    ) -> CheckpointReport {
        if let Some(newest) = self.newest_frame() {
            assert!(frame > newest, "checkpoints must be pushed in order");
        }
        if self.slots.len() == self.capacity {
            self.evict_front();
        }
        let mut data = self.pool.take();
        let mut slot_dirty = self.take_dirty_buf();
        machine.collect_dirty_into(&mut slot_dirty);
        // Popcount approximation of the dirty volume (exact to within the
        // final page's clamp) — enough for the path decision and far
        // cheaper than walking the ranges twice.
        let dirty_pages = slot_dirty.count_pages();
        let dirty_bytes;
        let kind;
        if self.slots.is_empty() {
            // First checkpoint: the full image lives in the tail; the
            // slot's back-patch targets nothing and stays empty.
            machine.save_state_into(&mut self.tail_full);
            slot_dirty.reset(self.tail_full.len());
            slot_dirty.mark_all();
            self.stats.stored_bytes += self.tail_full.len() as u64;
            dirty_bytes = self.tail_full.len();
            kind = PatchKind::Delta;
        } else if slot_dirty.len() == self.tail_full.len()
            && dirty_pages * coplay_vm::DIRTY_PAGE_SIZE * 2 < self.tail_full.len()
        {
            // Hot path: memcpy the soon-overwritten tail bytes out as the
            // back-patch, then let the machine rewrite exactly those
            // ranges in place.
            for (s, e) in slot_dirty.byte_ranges() {
                data.extend_from_slice(&self.tail_full[s..e]);
            }
            machine.save_state_ranges_into(&mut self.tail_full, &slot_dirty);
            self.stats.stored_bytes += data.len() as u64;
            dirty_bytes = data.len();
            kind = PatchKind::Ranges;
        } else {
            // Wide or resized dirty set: capture in full and store an
            // XOR/RLE delta, which compresses far below the ranges' raw
            // size when most marked bytes did not actually change.
            let old = std::mem::replace(&mut self.tail_full, self.pool.take());
            machine.save_state_into(&mut self.tail_full);
            if slot_dirty.len() == self.tail_full.len() && slot_dirty.len() == old.len() {
                delta::encode_dirty_into(&self.tail_full, &old, &slot_dirty, &mut data);
            } else {
                delta::encode_into(&self.tail_full, &old, &mut data);
                slot_dirty.reset(self.tail_full.len());
                slot_dirty.mark_all();
            }
            self.pool.give(old);
            self.stats.stored_bytes += data.len() as u64;
            dirty_bytes = slot_dirty.byte_ranges().map(|(s, e)| e - s).sum();
            kind = PatchKind::Delta;
        }
        self.stats.full_bytes += self.tail_full.len() as u64;
        let report = CheckpointReport {
            state_len: self.tail_full.len(),
            stored_bytes: if self.slots.is_empty() {
                self.tail_full.len()
            } else {
                data.len()
            },
            dirty_bytes,
            dirty_pages: slot_dirty.count_pages(),
        };
        self.slots.push_back(Slot {
            frame,
            hash,
            data,
            kind,
            dirty: slot_dirty,
        });
        report
    }

    /// Serialized length of the newest checkpoint's state (0 when the
    /// ring is empty).
    pub fn state_len(&self) -> usize {
        self.tail_full.len()
    }

    /// Drops the oldest slot. Its back-delta points at a state the ring no
    /// longer retains, so nothing needs re-encoding — both buffers are
    /// simply recycled.
    fn evict_front(&mut self) {
        if let Some(front) = self.slots.pop_front() {
            self.pool.give(front.data);
            self.give_dirty_buf(front.dirty);
        }
    }

    /// Index of the most recent slot at or before `frame`.
    fn floor_index(&self, frame: u64) -> Option<usize> {
        (0..self.slots.len())
            .rev()
            .find(|&i| self.slots[i].frame <= frame)
    }

    /// Reconstructs the most recent checkpoint at or before `frame` into
    /// `out` (cleared first; allocation reused across rollbacks) and
    /// returns its metadata. The ring is not modified; the walk copies the
    /// tail and applies every newer slot's back-delta.
    ///
    /// # Errors
    ///
    /// [`RestoreError::NoCheckpoint`] if no retained checkpoint is old
    /// enough; [`RestoreError::Delta`] if a stored delta is corrupt (the
    /// state in `out` is then garbage and must not be loaded).
    pub fn restore_into(
        &self,
        frame: u64,
        out: &mut Vec<u8>,
    ) -> Result<CheckpointInfo, RestoreError> {
        let idx = self
            .floor_index(frame)
            .ok_or(RestoreError::NoCheckpoint { frame })?;
        out.clear();
        out.extend_from_slice(&self.tail_full);
        for i in (idx + 1..self.slots.len()).rev() {
            self.slots[i].apply(out)?;
        }
        let slot = &self.slots[idx];
        Ok(CheckpointInfo {
            frame: slot.frame,
            hash: slot.hash,
            stored_bytes: slot.data.len(),
        })
    }

    /// Rolls the ring back to the most recent checkpoint at or before
    /// `frame`, writing that state's changed byte ranges into `out` and
    /// the union of every popped slot's dirty pages into `dirty`.
    ///
    /// This is the hot rollback path: it combines
    /// [`SnapshotRing::restore_into`] and [`SnapshotRing::discard_after`]
    /// while touching only O(dirty) bytes. On entry `dirty` should hold
    /// the machine's own accumulated dirty pages (covering how the live
    /// state has drifted from the newest checkpoint); on return it
    /// over-approximates every byte where the machine's present state
    /// differs from the restore target, and `out` holds valid target-state
    /// bytes *at least* in those ranges. Callers pass both straight to
    /// `Machine::load_state_dirty`.
    ///
    /// If `out` or `dirty` disagree with the checkpoint length (first
    /// rollback, or the game resized its state) both degrade to a full
    /// copy with a saturated bitmap.
    ///
    /// # Errors
    ///
    /// [`RestoreError::NoCheckpoint`] if no retained checkpoint is old
    /// enough — the ring is then left unmodified. [`RestoreError::Delta`]
    /// if a stored delta is corrupt; the ring's tail is then garbage and
    /// the session must fall back to a fresh full checkpoint.
    pub fn rewind_into(
        &mut self,
        frame: u64,
        out: &mut Vec<u8>,
        dirty: &mut DirtyPages,
    ) -> Result<CheckpointInfo, RestoreError> {
        let idx = self
            .floor_index(frame)
            .ok_or(RestoreError::NoCheckpoint { frame })?;
        if dirty.len() != self.tail_full.len() {
            dirty.reset(self.tail_full.len());
            dirty.mark_all();
        }
        while self.slots.len() > idx + 1 {
            if let Some(slot) = self.slots.pop_back() {
                dirty.union(&slot.dirty);
                slot.apply(&mut self.tail_full)?;
                self.pool.give(slot.data);
                self.give_dirty_buf(slot.dirty);
            }
        }
        // Popping back-deltas can change the tail length (a resize between
        // checkpoints); `union` already saturated `dirty` in that case but
        // its recorded length must match what `out` receives.
        if dirty.len() != self.tail_full.len() {
            dirty.reset(self.tail_full.len());
            dirty.mark_all();
        }
        if out.len() == self.tail_full.len() {
            for (s, e) in dirty.byte_ranges() {
                out[s..e].copy_from_slice(&self.tail_full[s..e]);
            }
        } else {
            dirty.mark_all();
            out.clear();
            out.extend_from_slice(&self.tail_full);
        }
        // detlint: allow(panic_path) -- floor_index returned idx, so the slot exists
        let slot = self.slots.back().expect("floor slot survives the rewind");
        Ok(CheckpointInfo {
            frame: slot.frame,
            hash: slot.hash,
            stored_bytes: slot.data.len(),
        })
    }

    /// Discards checkpoints newer than `frame` — they were computed from a
    /// state a rollback is about to rewrite — rolling the tail image back
    /// to the newest survivor by applying the popped back-deltas.
    pub fn discard_after(&mut self, frame: u64) {
        while self.slots.back().is_some_and(|s| s.frame > frame) {
            if let Some(slot) = self.slots.pop_back() {
                if self.slots.is_empty() {
                    self.tail_full.clear();
                } else {
                    slot.apply(&mut self.tail_full)
                        // detlint: allow(panic_path) -- patch was produced by this ring against this base
                        .expect("self-produced checkpoint patch applies");
                }
                self.pool.give(slot.data);
                self.give_dirty_buf(slot.dirty);
            }
        }
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if no checkpoint is retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Frame of the newest retained checkpoint.
    pub fn newest_frame(&self) -> Option<u64> {
        self.slots.back().map(|s| s.frame)
    }

    /// Frame of the oldest retained checkpoint.
    pub fn oldest_frame(&self) -> Option<u64> {
        self.slots.front().map(|s| s.frame)
    }

    /// Total bytes currently retained — stored back-deltas plus the single
    /// full newest-state image (memory accounting).
    pub fn bytes(&self) -> usize {
        self.slots.iter().map(|s| s.data.len()).sum::<usize>() + self.tail_full.len()
    }

    /// Cumulative full-vs-stored compression statistics.
    pub fn compression(&self) -> CompressionStats {
        self.stats
    }

    /// Cumulative buffer-pool reuse statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

impl Default for SnapshotRing {
    /// A ring sized for the default session envelope (30-frame speculation
    /// window, checkpoint every 5 frames) via
    /// [`SnapshotRing::capacity_for`] — the same invariant the session
    /// constructor applies, so a `Default` ring can actually cover a
    /// rollback window instead of thrashing a single slot.
    fn default() -> SnapshotRing {
        SnapshotRing::new(SnapshotRing::capacity_for(30, 5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic ~1 KiB state that changes sparsely per frame, like
    /// a real machine snapshot.
    fn state_for(frame: u64) -> Vec<u8> {
        let mut s = vec![0xA5u8; 1024];
        s[0..8].copy_from_slice(&frame.to_le_bytes());
        let hot = ((frame as usize).wrapping_mul(97)) % 1000;
        s[hot] = frame as u8;
        s[hot + 13] ^= 0x3C;
        s
    }

    /// Exact dirty bitmap for the transition `prev -> next`.
    fn dirty_between(prev: &[u8], next: &[u8]) -> DirtyPages {
        let mut d = DirtyPages::new(next.len());
        if prev.len() != next.len() {
            d.mark_all();
            return d;
        }
        for (i, (a, b)) in prev.iter().zip(next).enumerate() {
            if a != b {
                d.mark(i);
            }
        }
        d
    }

    fn ring_with(frames: &[u64]) -> SnapshotRing {
        let mut r = SnapshotRing::new(8);
        for &f in frames {
            r.push(f, &state_for(f), f * 10);
        }
        r
    }

    #[test]
    fn push_evicts_oldest_at_capacity() {
        let mut r = SnapshotRing::new(2);
        r.push(0, &[0], 0);
        r.push(5, &[5], 50);
        r.push(10, &[10], 100);
        assert_eq!(r.len(), 2);
        assert_eq!(r.oldest_frame(), Some(5));
        assert_eq!(r.newest_frame(), Some(10));
    }

    #[test]
    fn restore_picks_the_floor_checkpoint() {
        let r = ring_with(&[0, 5, 10, 15]);
        let mut buf = Vec::new();
        assert_eq!(r.restore_into(12, &mut buf).unwrap().frame, 10);
        assert_eq!(buf, state_for(10));
        assert_eq!(r.restore_into(10, &mut buf).unwrap().frame, 10);
        let info = r.restore_into(4, &mut buf).unwrap();
        assert_eq!((info.frame, info.hash), (0, 0));
        assert_eq!(buf, state_for(0));
        assert_eq!(
            ring_with(&[5]).restore_into(4, &mut buf),
            Err(RestoreError::NoCheckpoint { frame: 4 })
        );
    }

    #[test]
    fn every_slot_restores_bit_identically() {
        // Capacity 8 over 20 pushes: every restore walks back-deltas
        // across several evictions.
        let mut r = SnapshotRing::new(8);
        for f in 0..20 {
            r.push(f, &state_for(f), f);
        }
        let mut buf = Vec::new();
        for f in 12..20 {
            let info = r.restore_into(f, &mut buf).unwrap();
            assert_eq!(info.frame, f);
            assert_eq!(buf, state_for(f), "frame {f}");
        }
    }

    #[test]
    fn dirty_guided_push_matches_full_scan_push() {
        // A ring fed exact dirty bitmaps must be observationally identical
        // to one fed saturated bitmaps (the full-scan reference), including
        // across evictions and a mid-run discard_after.
        let mut full = SnapshotRing::new(6);
        let mut guided = SnapshotRing::new(6);
        let mut prev = Vec::new();
        let push_all =
            |full: &mut SnapshotRing, guided: &mut SnapshotRing, prev: &mut Vec<u8>, f: u64| {
                let s = state_for(f);
                let d = dirty_between(prev, &s);
                full.push(f, &s, f);
                guided.push_dirty(f, &s, f, &d);
                *prev = s;
            };
        for f in 0..17 {
            push_all(&mut full, &mut guided, &mut prev, f);
        }
        full.discard_after(13);
        guided.discard_after(13);
        prev = state_for(13); // newest survivor is the next diff base
        for f in 14..30 {
            push_all(&mut full, &mut guided, &mut prev, f);
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for f in 24..30 {
            let fa = full.restore_into(f, &mut a).unwrap();
            let fb = guided.restore_into(f, &mut b).unwrap();
            assert_eq!((fa.frame, fa.hash), (fb.frame, fb.hash), "frame {f}");
            assert_eq!(a, b, "frame {f}");
            assert_eq!(a, state_for(f), "frame {f}");
        }
        assert_eq!(
            full.compression(),
            guided.compression(),
            "guided encoding must emit byte-identical deltas"
        );
    }

    #[test]
    fn rewind_restores_and_reports_the_dirty_union() {
        let mut r = SnapshotRing::new(8);
        let mut prev = Vec::new();
        for f in 0..6 {
            let s = state_for(f);
            let d = dirty_between(&prev, &s);
            r.push_dirty(f, &s, f * 10, &d);
            prev = s;
        }
        // The machine drifted from checkpoint 5; its accumulator says so.
        let live = state_for(9);
        let mut dirty = dirty_between(&state_for(5), &live);
        let mut out = live.clone(); // restore buffer holds the stale image
        let info = r.rewind_into(2, &mut out, &mut dirty).unwrap();
        assert_eq!((info.frame, info.hash), (2, 20));
        assert_eq!(r.newest_frame(), Some(2), "newer slots are discarded");
        assert_eq!(r.len(), 3);
        // Every byte where `live` and the target differ must be both
        // marked dirty and correctly restored in `out`.
        let target = state_for(2);
        let marked: Vec<(usize, usize)> = dirty.byte_ranges().collect();
        for i in 0..target.len() {
            let covered = marked.iter().any(|&(s, e)| s <= i && i < e);
            if covered {
                assert_eq!(out[i], target[i], "byte {i} restored");
            } else {
                assert_eq!(live[i], target[i], "byte {i} must not differ unmarked");
            }
        }
        // The ring keeps working after the rewind: its tail re-based onto
        // frame 2, so the next push diffs against it.
        let next = state_for(3);
        r.push_dirty(3, &next, 30, &dirty_between(&target, &next));
        let mut buf = Vec::new();
        r.restore_into(3, &mut buf).unwrap();
        assert_eq!(buf, next);
    }

    #[test]
    fn rewind_without_floor_leaves_the_ring_untouched() {
        let mut r = ring_with(&[5, 10]);
        let mut out = Vec::new();
        let mut dirty = DirtyPages::new(0);
        assert_eq!(
            r.rewind_into(4, &mut out, &mut dirty),
            Err(RestoreError::NoCheckpoint { frame: 4 })
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.newest_frame(), Some(10));
    }

    #[test]
    fn rewind_with_mismatched_buffers_degrades_to_full_copy() {
        let mut r = ring_with(&[0, 5, 10]);
        let mut out = Vec::new(); // wrong length: forces the full path
        let mut dirty = DirtyPages::new(0); // wrong length: saturates
        let info = r.rewind_into(7, &mut out, &mut dirty).unwrap();
        assert_eq!(info.frame, 5);
        assert_eq!(out, state_for(5));
        assert!(dirty.is_all());
        assert_eq!(dirty.len(), out.len());
    }

    #[test]
    fn discard_after_drops_invalidated_checkpoints_and_rebases() {
        let mut r = ring_with(&[0, 5, 10, 15]);
        r.discard_after(7);
        assert_eq!(r.newest_frame(), Some(5));
        assert_eq!(r.len(), 2);
        // New deltas encode against the surviving frame-5 state; restores
        // after the discard must still be exact.
        r.push(8, &state_for(8), 80);
        let mut buf = Vec::new();
        r.restore_into(8, &mut buf).unwrap();
        assert_eq!(buf, state_for(8));
        // Discarding at an exact checkpoint frame keeps it.
        let mut r = ring_with(&[0, 5, 10]);
        r.discard_after(10);
        assert_eq!(r.newest_frame(), Some(10));
        // Discarding everything empties the ring and clears the tail.
        r.discard_after(0);
        assert_eq!(r.newest_frame(), Some(0));
        let mut r = ring_with(&[5, 10]);
        r.discard_after(3);
        assert!(r.is_empty());
        assert_eq!(r.bytes(), 0);
        r.push(4, &state_for(4), 40);
        r.restore_into(4, &mut buf).unwrap();
        assert_eq!(buf, state_for(4));
    }

    #[test]
    fn compression_beats_4x_on_sparse_changes() {
        // Only the very first push stores a full image; every later
        // checkpoint is a sparse back-delta.
        let mut r = SnapshotRing::new(8);
        for f in 0..32 {
            r.push(f, &state_for(f), f);
        }
        let c = r.compression();
        assert!(c.ratio_milli() >= 4000, "ratio {} milli", c.ratio_milli());
        assert_eq!(CompressionStats::default().ratio_milli(), 1000);
    }

    #[test]
    fn steady_state_reuses_pooled_buffers() {
        let mut r = SnapshotRing::new(8);
        for f in 0..100 {
            r.push(f, &state_for(f), f);
        }
        let stats = r.pool_stats();
        // Warm-up allocates at most one buffer per slot (+1 headroom);
        // everything after recycles.
        assert!(stats.misses <= 9, "misses {}", stats.misses);
        assert!(stats.hits >= 91, "hits {}", stats.hits);
        assert!(stats.hit_rate_milli() > 900);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_push_panics() {
        let mut r = ring_with(&[10]);
        r.push(10, &[], 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _ = SnapshotRing::new(0);
    }

    #[test]
    fn default_ring_covers_the_default_window() {
        // Satellite fix: `Default` used to build a one-slot ring that
        // thrashed on every push; it now routes through `capacity_for`.
        let r = SnapshotRing::default();
        assert_eq!(r.capacity, SnapshotRing::capacity_for(30, 5));
        assert_eq!(r.capacity, 8);
    }

    #[test]
    fn capacity_covers_the_speculation_window() {
        // 30-frame window, checkpoint every 5: worst case the rollback
        // target is 30 frames back and the nearest checkpoint up to 4 more;
        // 8 slots span 35+ frames of history.
        assert_eq!(SnapshotRing::capacity_for(30, 5), 8);
        assert_eq!(SnapshotRing::capacity_for(30, 1), 32);
        // interval 0 is treated as 1 rather than dividing by zero
        assert_eq!(SnapshotRing::capacity_for(10, 0), 12);
    }

    #[test]
    fn restore_errors_display() {
        let e = RestoreError::NoCheckpoint { frame: 7 };
        assert!(e.to_string().contains("frame 7"));
        let e = RestoreError::from(DeltaError::Truncated);
        assert!(e.to_string().contains("corrupt"));
    }

    #[test]
    fn checkpoint_from_walks_every_capture_path_and_restores_exactly() {
        use coplay_games::rom_pong_console;
        use coplay_vm::InputWord;

        let mut m = rom_pong_console();
        let mut r = SnapshotRing::new(8);
        let input = |f: u64| InputWord((f as u32) & 3);

        // First checkpoint: a full-image capture — the report says so.
        m.step_frame(input(0));
        let report = r.checkpoint_from(0, m.state_hash(), &mut m);
        assert_eq!(report.dirty_bytes, report.state_len);
        assert_eq!(report.stored_bytes, report.state_len);
        assert_eq!(r.slots[0].kind, PatchKind::Delta);

        // Steady state: a quiet game takes the raw-range hot path, and the
        // slot's back-patch length equals the reported dirty bytes.
        for f in 1..=4 {
            m.step_frame(input(f));
        }
        let report = r.checkpoint_from(4, m.state_hash(), &mut m);
        assert!(
            report.dirty_bytes < report.state_len / 8,
            "a quiet game must dirty a small fraction ({} of {})",
            report.dirty_bytes,
            report.state_len
        );
        assert_eq!(r.slots.back().unwrap().kind, PatchKind::Ranges);
        assert_eq!(r.slots.back().unwrap().data.len(), report.dirty_bytes);

        // A full-image load saturates the accumulators, so the next
        // checkpoint must refuse the range path and fall back to the
        // XOR/RLE delta encoder.
        let snap = m.save_state();
        for f in 5..=8 {
            m.step_frame(input(f));
        }
        m.load_state(&snap).unwrap();
        for f in 5..=8 {
            m.step_frame(input(f));
        }
        let report = r.checkpoint_from(8, m.state_hash(), &mut m);
        assert_eq!(r.slots.back().unwrap().kind, PatchKind::Delta);
        assert_eq!(report.dirty_bytes, report.state_len, "saturated capture");

        // Every retained checkpoint restores to exactly the bytes a
        // from-scratch replay produces at that frame.
        let mut buf = Vec::new();
        for (ckpt, frames) in [(0u64, 1u64), (4, 5), (8, 9)] {
            let mut replay = rom_pong_console();
            for f in 0..frames {
                replay.step_frame(input(f));
            }
            let info = r.restore_into(ckpt, &mut buf).unwrap();
            assert_eq!(info.frame, ckpt);
            assert_eq!(info.hash, replay.state_hash(), "frame {ckpt}");
            assert_eq!(buf, replay.save_state(), "frame {ckpt}");
        }
    }

    #[test]
    fn apply_ranges_rejects_corrupt_patches() {
        let mut dirty = DirtyPages::new(1024);
        dirty.mark_range(256, 256);
        let data = vec![0xEE; 256];
        let mut buf = vec![0u8; 1024];
        assert!(apply_ranges(&mut buf, &data, &dirty).is_ok());
        assert!(buf[256..512].iter().all(|&b| b == 0xEE));
        // Length disagreement: a range patch never resizes the state.
        let mut short = vec![0u8; 512];
        assert!(apply_ranges(&mut short, &data, &dirty).is_err());
        // Truncated patch data underruns the marked ranges.
        assert!(apply_ranges(&mut buf, &data[..100], &dirty).is_err());
        // Excess patch data means the ranges did not consume it all.
        let long = vec![0xEE; 300];
        assert!(apply_ranges(&mut buf, &long, &dirty).is_err());
    }
}
