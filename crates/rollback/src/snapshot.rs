//! A bounded ring of state checkpoints for rollback.
//!
//! The session saves a checkpoint every `checkpoint_interval` frames; on a
//! misprediction it restores the most recent checkpoint at or before the
//! mispredicted frame and resimulates forward. The ring's capacity is sized
//! so that a checkpoint always exists inside the speculation window (see
//! [`SnapshotRing::capacity_for`]).

/// One saved machine state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The frame this state precedes: restoring it positions the machine to
    /// execute `frame` next.
    pub frame: u64,
    /// `Machine::save_state` bytes.
    pub state: Vec<u8>,
    /// `Machine::state_hash` at capture time (consistency checks).
    pub hash: u64,
}

/// A bounded FIFO of [`Checkpoint`]s ordered by frame.
#[derive(Debug, Default)]
pub struct SnapshotRing {
    slots: std::collections::VecDeque<Checkpoint>,
    capacity: usize,
}

impl SnapshotRing {
    /// Creates a ring retaining at most `capacity` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a rollback session without any
    /// checkpoint cannot repair a misprediction.
    pub fn new(capacity: usize) -> SnapshotRing {
        assert!(capacity > 0, "snapshot ring needs at least one slot");
        SnapshotRing {
            slots: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// The capacity that guarantees a restore point for any rollback within
    /// `max_rollback_frames`, with checkpoints every `checkpoint_interval`
    /// frames: the window spans at most `window / interval` checkpoints,
    /// plus one for the partially-covered oldest edge and one in flight.
    pub fn capacity_for(max_rollback_frames: u64, checkpoint_interval: u64) -> usize {
        let interval = checkpoint_interval.max(1);
        (max_rollback_frames / interval) as usize + 2
    }

    /// Appends a checkpoint, evicting the oldest when full.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not strictly greater than the newest retained
    /// frame — checkpoints must arrive in execution order.
    pub fn push(&mut self, frame: u64, state: Vec<u8>, hash: u64) {
        if let Some(newest) = self.newest_frame() {
            assert!(frame > newest, "checkpoints must be pushed in order");
        }
        if self.slots.len() == self.capacity {
            self.slots.pop_front();
        }
        self.slots.push_back(Checkpoint { frame, state, hash });
    }

    /// The most recent checkpoint at or before `frame`, if any survives.
    pub fn latest_at_or_before(&self, frame: u64) -> Option<&Checkpoint> {
        self.slots.iter().rev().find(|c| c.frame <= frame)
    }

    /// Discards checkpoints newer than `frame` — they were computed from a
    /// state a rollback is about to rewrite.
    pub fn discard_after(&mut self, frame: u64) {
        while self.slots.back().is_some_and(|c| c.frame > frame) {
            self.slots.pop_back();
        }
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if no checkpoint is retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Frame of the newest retained checkpoint.
    pub fn newest_frame(&self) -> Option<u64> {
        self.slots.back().map(|c| c.frame)
    }

    /// Frame of the oldest retained checkpoint.
    pub fn oldest_frame(&self) -> Option<u64> {
        self.slots.front().map(|c| c.frame)
    }

    /// Total state bytes currently retained (memory accounting).
    pub fn bytes(&self) -> usize {
        self.slots.iter().map(|c| c.state.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_with(frames: &[u64]) -> SnapshotRing {
        let mut r = SnapshotRing::new(8);
        for &f in frames {
            r.push(f, vec![f as u8], f * 10);
        }
        r
    }

    #[test]
    fn push_evicts_oldest_at_capacity() {
        let mut r = SnapshotRing::new(2);
        r.push(0, vec![0], 0);
        r.push(5, vec![5], 50);
        r.push(10, vec![10], 100);
        assert_eq!(r.len(), 2);
        assert_eq!(r.oldest_frame(), Some(5));
        assert_eq!(r.newest_frame(), Some(10));
        assert_eq!(r.bytes(), 2);
    }

    #[test]
    fn latest_at_or_before_picks_the_floor_checkpoint() {
        let r = ring_with(&[0, 5, 10, 15]);
        assert_eq!(r.latest_at_or_before(12).unwrap().frame, 10);
        assert_eq!(r.latest_at_or_before(10).unwrap().frame, 10);
        assert_eq!(r.latest_at_or_before(4).unwrap().frame, 0);
        assert!(ring_with(&[5]).latest_at_or_before(4).is_none());
    }

    #[test]
    fn discard_after_drops_invalidated_checkpoints() {
        let mut r = ring_with(&[0, 5, 10, 15]);
        r.discard_after(7);
        assert_eq!(r.newest_frame(), Some(5));
        assert_eq!(r.len(), 2);
        // Discarding at an exact checkpoint frame keeps it.
        let mut r = ring_with(&[0, 5, 10]);
        r.discard_after(10);
        assert_eq!(r.newest_frame(), Some(10));
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_push_panics() {
        let mut r = ring_with(&[10]);
        r.push(10, vec![], 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _ = SnapshotRing::new(0);
    }

    #[test]
    fn capacity_covers_the_speculation_window() {
        // 30-frame window, checkpoint every 5: worst case the rollback
        // target is 30 frames back and the nearest checkpoint up to 4 more;
        // 8 slots span 35+ frames of history.
        assert_eq!(SnapshotRing::capacity_for(30, 5), 8);
        assert_eq!(SnapshotRing::capacity_for(30, 1), 32);
        // interval 0 is treated as 1 rather than dividing by zero
        assert_eq!(SnapshotRing::capacity_for(10, 0), 12);
    }
}
