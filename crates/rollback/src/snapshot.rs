//! A bounded ring of state checkpoints for rollback.
//!
//! The session saves a checkpoint every `checkpoint_interval` frames; on a
//! misprediction it restores the most recent checkpoint at or before the
//! mispredicted frame and resimulates forward. The ring's capacity is sized
//! so that a checkpoint always exists inside the speculation window (see
//! [`SnapshotRing::capacity_for`]).
//!
//! # Storage: keyframes + chained deltas
//!
//! Storing every checkpoint as a full `save_state` copy costs
//! `capacity × state_size` bytes and a full memcpy per checkpoint.
//! Consecutive checkpoints of a deterministic game are nearly identical,
//! so the ring instead stores a *keyframe* (full copy) every
//! `keyframe_interval` slots and XOR/RLE deltas (see [`crate::delta`]) in
//! between. Each delta's base is the immediately preceding checkpoint's
//! full state; restoring walks keyframe → deltas. Three invariants keep
//! this correct under eviction and rollback:
//!
//! * the oldest retained slot is always a keyframe (eviction *promotes*
//!   the next delta slot by applying it onto the evicted keyframe);
//! * `tail_full` always holds the newest checkpoint's full state — the
//!   encoding base for the next push;
//! * [`SnapshotRing::discard_after`] rebuilds both from what survives.
//!
//! All slot buffers cycle through a [`BufferPool`], so the steady-state
//! checkpoint path allocates nothing. `keyframe_interval == 1` degenerates
//! to the original full-copy ring, which the tests use as the reference
//! implementation.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use crate::delta::{self, DeltaError};
use crate::pool::{BufferPool, PoolStats};

/// How a slot stores its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    /// `data` is the full `save_state` image.
    Keyframe,
    /// `data` is a delta against the previous slot's full state.
    Delta,
}

#[derive(Debug)]
struct Slot {
    frame: u64,
    hash: u64,
    kind: SlotKind,
    data: Vec<u8>,
}

/// Metadata for a checkpoint served by [`SnapshotRing::restore_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// The frame this state precedes: restoring it positions the machine
    /// to execute `frame` next.
    pub frame: u64,
    /// `Machine::state_hash` at capture time — callers verify the restored
    /// machine reproduces it.
    pub hash: u64,
    /// Bytes the ring stores for this checkpoint (delta or full).
    pub stored_bytes: usize,
    /// `true` if the slot holds a full copy rather than a delta.
    pub is_keyframe: bool,
}

/// Error restoring a checkpoint from the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// No retained checkpoint is at or before the requested frame.
    NoCheckpoint {
        /// The requested rollback frame.
        frame: u64,
    },
    /// A stored delta failed to apply (corrupt slot).
    Delta(DeltaError),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::NoCheckpoint { frame } => {
                write!(f, "no rollback checkpoint at or before frame {frame}")
            }
            RestoreError::Delta(e) => write!(f, "checkpoint delta corrupt: {e}"),
        }
    }
}

impl Error for RestoreError {}

impl From<DeltaError> for RestoreError {
    fn from(e: DeltaError) -> RestoreError {
        RestoreError::Delta(e)
    }
}

/// Compression statistics accumulated across every push.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressionStats {
    /// Total full-state bytes offered to the ring.
    pub full_bytes: u64,
    /// Total bytes actually stored (keyframes + deltas).
    pub stored_bytes: u64,
}

impl CompressionStats {
    /// Full-to-stored ratio in thousandths: 4000 means checkpoints average
    /// 4× smaller than full copies; 1000 when nothing was pushed. Integer
    /// so the deterministic core stays float-free.
    pub fn ratio_milli(&self) -> u64 {
        self.full_bytes
            .saturating_mul(1000)
            .checked_div(self.stored_bytes)
            .unwrap_or(1000)
    }
}

/// A bounded FIFO of checkpoints ordered by frame, stored as keyframes
/// plus chained deltas over pooled buffers.
#[derive(Debug)]
pub struct SnapshotRing {
    slots: VecDeque<Slot>,
    capacity: usize,
    keyframe_interval: usize,
    /// Delta slots pushed since the newest keyframe.
    since_keyframe: usize,
    /// Full state of the newest checkpoint — the next delta's base.
    tail_full: Vec<u8>,
    pool: BufferPool,
    stats: CompressionStats,
}

/// Keyframe cadence when none is configured: a restore applies at most
/// three deltas while typical checkpoints shrink ~4×.
const DEFAULT_KEYFRAME_INTERVAL: usize = 4;

impl SnapshotRing {
    /// Creates a ring retaining at most `capacity` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a rollback session without any
    /// checkpoint cannot repair a misprediction.
    pub fn new(capacity: usize) -> SnapshotRing {
        assert!(capacity > 0, "snapshot ring needs at least one slot");
        SnapshotRing {
            // detlint: allow(hot_alloc) -- one-time constructor allocation, not per-frame
            slots: VecDeque::with_capacity(capacity),
            capacity,
            keyframe_interval: DEFAULT_KEYFRAME_INTERVAL,
            since_keyframe: 0,
            // detlint: allow(hot_alloc) -- grows once to state size, then reused
            tail_full: Vec::new(),
            // One buffer per slot plus the one in flight during promotion.
            pool: BufferPool::new(capacity + 1),
            stats: CompressionStats::default(),
        }
    }

    /// Sets the keyframe cadence: a full copy every `interval` slots,
    /// deltas in between. `1` stores every checkpoint in full (the
    /// reference behaviour); values are clamped to at least 1.
    pub fn with_keyframe_interval(mut self, interval: usize) -> SnapshotRing {
        self.keyframe_interval = interval.max(1);
        self
    }

    /// The configured keyframe cadence.
    pub fn keyframe_interval(&self) -> usize {
        self.keyframe_interval
    }

    /// The capacity that guarantees a restore point for any rollback within
    /// `max_rollback_frames`, with checkpoints every `checkpoint_interval`
    /// frames: the window spans at most `window / interval` checkpoints,
    /// plus one for the partially-covered oldest edge and one in flight.
    pub fn capacity_for(max_rollback_frames: u64, checkpoint_interval: u64) -> usize {
        let interval = checkpoint_interval.max(1);
        (max_rollback_frames / interval) as usize + 2
    }

    /// Appends a checkpoint, evicting the oldest when full.
    ///
    /// `state` is borrowed, not consumed: callers capture into a reusable
    /// buffer (`Machine::save_state_into`) and the ring copies into pooled
    /// storage, so the steady-state path allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not strictly greater than the newest retained
    /// frame — checkpoints must arrive in execution order.
    pub fn push(&mut self, frame: u64, state: &[u8], hash: u64) {
        if let Some(newest) = self.newest_frame() {
            assert!(frame > newest, "checkpoints must be pushed in order");
        }
        if self.slots.len() == self.capacity {
            self.evict_front();
        }
        let is_keyframe =
            self.slots.is_empty() || self.since_keyframe + 1 >= self.keyframe_interval;
        let mut data = self.pool.take();
        let kind = if is_keyframe {
            self.since_keyframe = 0;
            data.clear();
            data.extend_from_slice(state);
            SlotKind::Keyframe
        } else {
            self.since_keyframe += 1;
            delta::encode_into(&self.tail_full, state, &mut data);
            SlotKind::Delta
        };
        self.stats.full_bytes += state.len() as u64;
        self.stats.stored_bytes += data.len() as u64;
        self.tail_full.clear();
        self.tail_full.extend_from_slice(state);
        self.slots.push_back(Slot {
            frame,
            hash,
            kind,
            data,
        });
    }

    /// Drops the oldest slot. If the slot after it is a delta, it is
    /// *promoted* to a keyframe by applying its delta onto the evicted
    /// keyframe's buffer, preserving the front-is-a-keyframe invariant.
    fn evict_front(&mut self) {
        // detlint: allow(panic_path) -- sole caller checks len() == capacity, and capacity > 0
        let front = self.slots.pop_front().expect("evict on empty ring");
        debug_assert_eq!(front.kind, SlotKind::Keyframe, "front must be a keyframe");
        let mut full = front.data;
        if let Some(next) = self.slots.front_mut() {
            if next.kind == SlotKind::Delta {
                delta::apply_in_place(&mut full, &next.data)
                    // detlint: allow(panic_path) -- delta was produced by this ring against this base
                    .expect("self-produced checkpoint delta applies");
                next.kind = SlotKind::Keyframe;
                self.pool.give(std::mem::replace(&mut next.data, full));
                return;
            }
        }
        self.pool.give(full);
    }

    /// Reconstructs the full state of the slot at `idx` into `out` by
    /// walking back to the nearest keyframe and replaying deltas forward.
    fn restore_index_into(&self, idx: usize, out: &mut Vec<u8>) -> Result<(), DeltaError> {
        let key = (0..=idx)
            .rev()
            .find(|&i| self.slots[i].kind == SlotKind::Keyframe)
            // detlint: allow(panic_path) -- push/evict maintain the front-is-a-keyframe invariant
            .expect("front slot is always a keyframe");
        out.clear();
        out.extend_from_slice(&self.slots[key].data);
        for i in key + 1..=idx {
            delta::apply_in_place(out, &self.slots[i].data)?;
        }
        Ok(())
    }

    /// Reconstructs the most recent checkpoint at or before `frame` into
    /// `out` (cleared first; allocation reused across rollbacks) and
    /// returns its metadata.
    ///
    /// # Errors
    ///
    /// [`RestoreError::NoCheckpoint`] if no retained checkpoint is old
    /// enough; [`RestoreError::Delta`] if a stored delta is corrupt (the
    /// state in `out` is then garbage and must not be loaded).
    pub fn restore_into(
        &self,
        frame: u64,
        out: &mut Vec<u8>,
    ) -> Result<CheckpointInfo, RestoreError> {
        let idx = (0..self.slots.len())
            .rev()
            .find(|&i| self.slots[i].frame <= frame)
            .ok_or(RestoreError::NoCheckpoint { frame })?;
        self.restore_index_into(idx, out)?;
        let slot = &self.slots[idx];
        Ok(CheckpointInfo {
            frame: slot.frame,
            hash: slot.hash,
            stored_bytes: slot.data.len(),
            is_keyframe: slot.kind == SlotKind::Keyframe,
        })
    }

    /// Discards checkpoints newer than `frame` — they were computed from a
    /// state a rollback is about to rewrite — and re-bases the delta chain
    /// on the newest survivor.
    pub fn discard_after(&mut self, frame: u64) {
        let mut dropped = false;
        while self.slots.back().is_some_and(|s| s.frame > frame) {
            let Some(slot) = self.slots.pop_back() else {
                break;
            };
            self.pool.give(slot.data);
            dropped = true;
        }
        if !dropped {
            return;
        }
        // The next delta must encode against the surviving tail, and the
        // cadence counter must reflect the trailing run that survived.
        self.since_keyframe = self
            .slots
            .iter()
            .rev()
            .take_while(|s| s.kind == SlotKind::Delta)
            .count();
        let mut tail = std::mem::take(&mut self.tail_full);
        match self.slots.len() {
            0 => tail.clear(),
            n => self
                .restore_index_into(n - 1, &mut tail)
                // detlint: allow(panic_path) -- replays deltas this ring encoded; corruption is a program bug
                .expect("self-produced checkpoint delta applies"),
        }
        self.tail_full = tail;
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if no checkpoint is retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Frame of the newest retained checkpoint.
    pub fn newest_frame(&self) -> Option<u64> {
        self.slots.back().map(|s| s.frame)
    }

    /// Frame of the oldest retained checkpoint.
    pub fn oldest_frame(&self) -> Option<u64> {
        self.slots.front().map(|s| s.frame)
    }

    /// Number of retained keyframe (full-copy) slots.
    pub fn keyframes(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.kind == SlotKind::Keyframe)
            .count()
    }

    /// Total bytes currently retained — stored slots plus the cached
    /// newest-state base (memory accounting).
    pub fn bytes(&self) -> usize {
        self.slots.iter().map(|s| s.data.len()).sum::<usize>() + self.tail_full.len()
    }

    /// Cumulative full-vs-stored compression statistics.
    pub fn compression(&self) -> CompressionStats {
        self.stats
    }

    /// Cumulative buffer-pool reuse statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

impl Default for SnapshotRing {
    /// A single-slot, full-copy ring (the smallest legal configuration).
    fn default() -> SnapshotRing {
        SnapshotRing::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic ~1 KiB state that changes sparsely per frame, like
    /// a real machine snapshot.
    fn state_for(frame: u64) -> Vec<u8> {
        let mut s = vec![0xA5u8; 1024];
        s[0..8].copy_from_slice(&frame.to_le_bytes());
        let hot = ((frame as usize).wrapping_mul(97)) % 1000;
        s[hot] = frame as u8;
        s[hot + 13] ^= 0x3C;
        s
    }

    fn ring_with(frames: &[u64]) -> SnapshotRing {
        let mut r = SnapshotRing::new(8);
        for &f in frames {
            r.push(f, &state_for(f), f * 10);
        }
        r
    }

    #[test]
    fn push_evicts_oldest_at_capacity() {
        let mut r = SnapshotRing::new(2);
        r.push(0, &[0], 0);
        r.push(5, &[5], 50);
        r.push(10, &[10], 100);
        assert_eq!(r.len(), 2);
        assert_eq!(r.oldest_frame(), Some(5));
        assert_eq!(r.newest_frame(), Some(10));
    }

    #[test]
    fn restore_picks_the_floor_checkpoint() {
        let r = ring_with(&[0, 5, 10, 15]);
        let mut buf = Vec::new();
        assert_eq!(r.restore_into(12, &mut buf).unwrap().frame, 10);
        assert_eq!(buf, state_for(10));
        assert_eq!(r.restore_into(10, &mut buf).unwrap().frame, 10);
        let info = r.restore_into(4, &mut buf).unwrap();
        assert_eq!((info.frame, info.hash), (0, 0));
        assert!(info.is_keyframe, "first slot is the keyframe");
        assert_eq!(
            ring_with(&[5]).restore_into(4, &mut buf),
            Err(RestoreError::NoCheckpoint { frame: 4 })
        );
    }

    #[test]
    fn every_slot_restores_bit_identically() {
        // Capacity 8, keyframe every 4: restores cross delta chains and,
        // after 20 pushes, several eviction promotions.
        let mut r = SnapshotRing::new(8);
        for f in 0..20 {
            r.push(f, &state_for(f), f);
        }
        let mut buf = Vec::new();
        for f in 12..20 {
            let info = r.restore_into(f, &mut buf).unwrap();
            assert_eq!(info.frame, f);
            assert_eq!(buf, state_for(f), "frame {f}");
        }
        assert!(r.keyframes() >= 1, "front must stay a keyframe");
    }

    #[test]
    fn delta_mode_matches_full_copy_mode() {
        // keyframe_interval 1 is the original full-copy ring; every
        // restore from the delta ring must be byte-identical to it,
        // including across evictions and a mid-run discard_after.
        let mut full = SnapshotRing::new(6).with_keyframe_interval(1);
        let mut delta = SnapshotRing::new(6).with_keyframe_interval(4);
        let push_all = |full: &mut SnapshotRing, delta: &mut SnapshotRing, f: u64| {
            let s = state_for(f);
            full.push(f, &s, f);
            delta.push(f, &s, f);
        };
        for f in 0..17 {
            push_all(&mut full, &mut delta, f);
        }
        full.discard_after(13);
        delta.discard_after(13);
        for f in 14..30 {
            push_all(&mut full, &mut delta, f);
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for f in 24..30 {
            let fa = full.restore_into(f, &mut a).unwrap();
            let fb = delta.restore_into(f, &mut b).unwrap();
            assert_eq!((fa.frame, fa.hash), (fb.frame, fb.hash), "frame {f}");
            assert_eq!(a, b, "frame {f}");
        }
        assert!(
            delta.compression().stored_bytes < full.compression().stored_bytes / 2,
            "deltas must actually compress: {:?} vs {:?}",
            delta.compression(),
            full.compression()
        );
    }

    #[test]
    fn discard_after_drops_invalidated_checkpoints_and_rebases() {
        let mut r = ring_with(&[0, 5, 10, 15]);
        r.discard_after(7);
        assert_eq!(r.newest_frame(), Some(5));
        assert_eq!(r.len(), 2);
        // New deltas encode against the surviving frame-5 state; restores
        // after the discard must still be exact.
        r.push(8, &state_for(8), 80);
        let mut buf = Vec::new();
        r.restore_into(8, &mut buf).unwrap();
        assert_eq!(buf, state_for(8));
        // Discarding at an exact checkpoint frame keeps it.
        let mut r = ring_with(&[0, 5, 10]);
        r.discard_after(10);
        assert_eq!(r.newest_frame(), Some(10));
    }

    #[test]
    fn compression_beats_4x_on_sparse_changes() {
        // The amortized ratio is capped by the keyframe cadence (every
        // keyframe costs a full copy), so measure with a longer interval.
        let mut r = SnapshotRing::new(8).with_keyframe_interval(8);
        for f in 0..32 {
            r.push(f, &state_for(f), f);
        }
        let c = r.compression();
        assert!(c.ratio_milli() >= 4000, "ratio {} milli", c.ratio_milli());
        assert_eq!(CompressionStats::default().ratio_milli(), 1000);
    }

    #[test]
    fn steady_state_reuses_pooled_buffers() {
        let mut r = SnapshotRing::new(8);
        for f in 0..100 {
            r.push(f, &state_for(f), f);
        }
        let stats = r.pool_stats();
        // Warm-up allocates at most one buffer per slot (+1 headroom);
        // everything after recycles.
        assert!(stats.misses <= 9, "misses {}", stats.misses);
        assert!(stats.hits >= 91, "hits {}", stats.hits);
        assert!(stats.hit_rate_milli() > 900);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_push_panics() {
        let mut r = ring_with(&[10]);
        r.push(10, &[], 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _ = SnapshotRing::new(0);
    }

    #[test]
    fn capacity_covers_the_speculation_window() {
        // 30-frame window, checkpoint every 5: worst case the rollback
        // target is 30 frames back and the nearest checkpoint up to 4 more;
        // 8 slots span 35+ frames of history.
        assert_eq!(SnapshotRing::capacity_for(30, 5), 8);
        assert_eq!(SnapshotRing::capacity_for(30, 1), 32);
        // interval 0 is treated as 1 rather than dividing by zero
        assert_eq!(SnapshotRing::capacity_for(10, 0), 12);
    }

    #[test]
    fn restore_errors_display() {
        let e = RestoreError::NoCheckpoint { frame: 7 };
        assert!(e.to_string().contains("frame 7"));
        let e = RestoreError::from(DeltaError::Truncated);
        assert!(e.to_string().contains("corrupt"));
    }
}
