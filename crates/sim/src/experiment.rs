//! The paper's testbed in software: two (or more) gaming sites, a Netem box
//! between them, and a LAN time server — all in deterministic virtual time.
//!
//! [`Experiment`] wires `LockstepSession`s over a [`SimNetwork`], runs the
//! configured number of frames, and computes exactly the statistics of §4:
//! Series 1 (per-site average frame time and average deviation — Figure 1)
//! and Series 2 (average absolute inter-site frame-begin difference —
//! Figure 2). Replica convergence is verified from per-frame state hashes,
//! something the paper assumes but the harness proves on every run.

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

use coplay_clock::{Clock, EventId, EventQueue, SimDuration, SimTime, TimeServer, VirtualClock};
use coplay_games::GameId;
use coplay_net::{JitterDistribution, NetemConfig, PeerId, SimNetwork, SimSocket, Transport};
use coplay_rollback::RollbackSession;
use coplay_sync::{
    ConsistencyMode, LockstepSession, Message, RandomPresser, SessionStats, Step, SyncConfig,
    SyncError,
};
use coplay_telemetry::{EventKind, Telemetry};
use coplay_vm::{Machine, Player};

use crate::metrics::{abs_mean, deltas_ms, SiteStats};

/// First observer site number (distinct from player sites 0–3).
pub const FIRST_OBSERVER_SITE: u8 = 0xE0;

/// Everything that defines one experimental run.
///
/// Defaults reproduce the paper's setup: Brawler (the SF2 stand-in),
/// 3600 frames at 60 FPS, local lag 6 frames, one message per 20 ms, a
/// 10 ms sender thread slice, two players, pace smoothing on.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Which game both sites load.
    pub game: GameId,
    /// Frames to measure (the paper records 3600 per point).
    pub frames: u64,
    /// Master seed for input scripts and network impairments.
    pub seed: u64,
    /// Round-trip time of the inter-site path (split evenly per direction).
    pub rtt: SimDuration,
    /// Jitter magnitude on the inter-site path.
    pub jitter: SimDuration,
    /// Jitter distribution.
    pub jitter_dist: JitterDistribution,
    /// Packet loss probability on the inter-site path.
    pub loss: f64,
    /// Loss burst correlation.
    pub loss_correlation: f64,
    /// Packet duplication probability.
    pub duplicate: f64,
    /// Reordering probability.
    pub reorder: f64,
    /// Sender-side thread time slice (uniform `[0, slice)` extra delay;
    /// the paper's §4.2 charges an average of half of 10 ms to this).
    pub tx_slice: SimDuration,
    /// The local lag in frames (`BufFrame`).
    pub buf_frames: u64,
    /// Outbound message pacing.
    pub send_interval: SimDuration,
    /// Game frame rate.
    pub cfps: u32,
    /// Algorithm 4 (master/slave pace smoothing) on/off.
    pub rate_sync: bool,
    /// Number of player sites (2 in the ICDCS paper).
    pub num_players: u8,
    /// Number of observer sites that join at session start.
    pub observers: u8,
    /// Virtual time at which a latecomer observer joins (snapshot path),
    /// if any.
    pub latecomer_at: Option<SimDuration>,
    /// Extra delay before the slave (site 1) boots, for the pacing ablation.
    pub start_skew: SimDuration,
    /// Verify per-frame state-hash equality across replicas.
    pub check_convergence: bool,
    /// Attach a recording [`Telemetry`] sink to every site and to the
    /// network fabric. When `false` (the default), the no-op sink is used
    /// and the run costs nothing extra.
    pub telemetry: bool,
    /// Additionally enable frame-lifecycle span tracing on every site
    /// (implies `telemetry`). Each site's handle carries `(seed, site)` as
    /// its `(session, site)` correlation identity, so per-site trace dumps
    /// from one run can be merged into a cross-site timeline (the
    /// `tracescope` tool does exactly this).
    pub trace: bool,
    /// When set, any site whose telemetry latched an anomaly (stall past
    /// threshold, rollback-depth spike, detected desync) dumps a black-box
    /// forensics bundle under this directory after the run. `None` (the
    /// default) never touches the filesystem.
    pub forensics_root: Option<PathBuf>,
    /// Consistency maintenance for the *player* sites: the paper's lockstep
    /// (default) or speculative rollback. Observer sites always run
    /// lockstep — they have no local input to predict around — and
    /// `latecomer_at` requires lockstep players (a speculative master
    /// cannot serve an authoritative snapshot).
    pub consistency: ConsistencyMode,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            game: GameId::Brawler,
            frames: 3600,
            seed: 0x0C05_01A1,
            rtt: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            jitter_dist: JitterDistribution::Uniform,
            loss: 0.0,
            loss_correlation: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            tx_slice: SimDuration::from_millis(10),
            buf_frames: 6,
            send_interval: SimDuration::from_millis(20),
            cfps: 60,
            rate_sync: true,
            num_players: 2,
            observers: 0,
            latecomer_at: None,
            start_skew: SimDuration::ZERO,
            check_convergence: true,
            telemetry: false,
            trace: false,
            forensics_root: None,
            consistency: ConsistencyMode::Lockstep,
        }
    }
}

impl ExperimentConfig {
    /// The paper's sweep point: everything default except the RTT.
    pub fn with_rtt(rtt: SimDuration) -> ExperimentConfig {
        ExperimentConfig {
            rtt,
            ..ExperimentConfig::default()
        }
    }

    /// The same sweep point under rollback consistency (default tuning).
    pub fn rollback_with_rtt(rtt: SimDuration) -> ExperimentConfig {
        ExperimentConfig {
            rtt,
            consistency: ConsistencyMode::rollback(),
            ..ExperimentConfig::default()
        }
    }
}

/// The measured outcome of one run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Series-1 statistics per player site.
    pub sites: Vec<SiteStats>,
    /// Series-2 statistic: average absolute inter-site frame-begin
    /// difference between sites 0 and 1, in ms.
    pub synchrony_ms: f64,
    /// `true` if every common frame's state hash matched across replicas.
    pub converged: bool,
    /// Frames measured per site.
    pub frames: u64,
    /// Virtual time the run spanned.
    pub elapsed: SimDuration,
    /// Inter-site packets offered / lost (both directions of the 0↔1 link).
    pub packets_offered: u64,
    /// Packets dropped by the loss process.
    pub packets_lost: u64,
    /// In-band session counters per site (players first, then observers).
    pub session_stats: Vec<SessionStats>,
    /// Per-site telemetry handles (same order as `session_stats`). Disabled
    /// no-op handles unless [`ExperimentConfig::telemetry`] was set.
    pub telemetry: Vec<Telemetry>,
    /// The network fabric's telemetry handle (packet drops/duplications).
    pub net_telemetry: Telemetry,
}

impl ExperimentResult {
    /// Convenience: the master's mean frame time in ms.
    pub fn master_frame_time_ms(&self) -> f64 {
        self.sites[0].mean_frame_time_ms
    }

    /// Convenience: the worse smoothness (average deviation) of the two
    /// player sites, ms — the conservative reading of Figure 1.
    pub fn worst_deviation_ms(&self) -> f64 {
        self.sites
            .iter()
            .map(|s| s.frame_time_deviation_ms)
            .fold(0.0, f64::max)
    }
}

/// Errors from a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// A session failed (transport, mismatch, stall).
    Session {
        /// Which site failed.
        site: u8,
        /// The underlying error.
        error: SyncError,
    },
    /// No events left but the target frame count was not reached.
    Deadlock {
        /// Virtual time of the deadlock.
        at: SimTime,
    },
    /// The run exceeded its virtual-time budget (e.g. RTT far beyond the
    /// playable regime with a stalled site).
    TimeBudgetExceeded {
        /// The budget that was exhausted.
        budget: SimDuration,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Session { site, error } => write!(f, "site {site} failed: {error}"),
            SimError::Deadlock { at } => write!(f, "event queue ran dry at {at}"),
            SimError::TimeBudgetExceeded { budget } => {
                write!(f, "virtual time budget of {budget} exceeded")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One site's session under either consistency mode. Both speak the same
/// wire protocol; the harness only needs a common driving surface.
// A handful of these exist per experiment and live for its whole run, so
// the variant size gap is not worth an extra indirection on every tick.
#[allow(clippy::large_enum_variant)]
enum Site {
    Lockstep(LockstepSession<Box<dyn Machine>, SimSocket, RandomPresser>),
    Rollback(RollbackSession<Box<dyn Machine>, SimSocket, RandomPresser>),
}

impl Site {
    fn tick(&mut self, now: SimTime) -> Result<Step, SyncError> {
        match self {
            Site::Lockstep(s) => s.tick(now),
            Site::Rollback(s) => s.tick(now),
        }
    }

    fn stats(&self) -> SessionStats {
        match self {
            Site::Lockstep(s) => s.stats(),
            Site::Rollback(s) => s.stats(),
        }
    }

    fn config(&self) -> &SyncConfig {
        match self {
            Site::Lockstep(s) => s.config(),
            Site::Rollback(s) => s.config(),
        }
    }
}

struct SiteRunner {
    site_no: u8,
    session: Site,
    pending_wake: Option<EventId>,
    frames_done: u64,
    /// Authoritative per-frame hashes: every executed frame's hash for a
    /// lockstep site, the *confirmed* (post-repair) hashes for a rollback
    /// site — speculative hashes never enter the convergence check.
    hashes: Vec<u64>,
    first_frame: u64,
    failed: bool,
}

/// One configured run of the paper's testbed.
#[derive(Debug)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Prepares a run.
    pub fn new(config: ExperimentConfig) -> Experiment {
        Experiment { config }
    }

    /// Executes the run to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a session fails, the simulation deadlocks,
    /// or the virtual-time budget is exceeded.
    pub fn run(&self) -> Result<ExperimentResult, SimError> {
        let cfg = &self.config;
        let clock = VirtualClock::new();
        let net = SimNetwork::shared(clock.clone());

        // Inter-site impairments (the Netem box).
        let impaired = NetemConfig::new()
            .delay(cfg.rtt / 2)
            .jitter(cfg.jitter)
            .jitter_distribution(cfg.jitter_dist)
            .loss(cfg.loss)
            .loss_correlation(cfg.loss_correlation)
            .duplicate(cfg.duplicate)
            .reorder(cfg.reorder)
            .tx_slice(cfg.tx_slice);
        // The measurement LAN: sub-millisecond, clean.
        let lan = NetemConfig::new().delay(SimDuration::from_micros(250));

        let mut site_numbers: Vec<u8> = (0..cfg.num_players).collect();
        for o in 0..cfg.observers + cfg.latecomer_at.map_or(0, |_| 1) {
            site_numbers.push(FIRST_OBSERVER_SITE + o);
        }
        for (i, &a) in site_numbers.iter().enumerate() {
            for &b in &site_numbers[i + 1..] {
                SimNetwork::link_pair(
                    &net,
                    PeerId(a),
                    PeerId(b),
                    impaired.clone(),
                    cfg.seed ^ ((a as u64) << 32) ^ (b as u64).wrapping_mul(0x9E37),
                );
            }
            SimNetwork::link_pair(
                &net,
                PeerId(a),
                PeerId::TIME_SERVER,
                lan.clone(),
                7 + a as u64,
            );
        }
        let mut server_sock = SimNetwork::socket(&net, PeerId::TIME_SERVER);
        let mut time_server = TimeServer::new();

        let net_telemetry = if cfg.telemetry || cfg.trace {
            Telemetry::recording()
        } else {
            Telemetry::disabled()
        };
        net.borrow_mut().set_telemetry(net_telemetry.clone());

        // Build the sites.
        let mut sites: Vec<SiteRunner> = Vec::new();
        let mut wakes: EventQueue<usize> = EventQueue::new();
        for (idx, &site_no) in site_numbers.iter().enumerate() {
            let is_observer = site_no >= FIRST_OBSERVER_SITE;
            let mut sync_cfg = SyncConfig::two_player(0);
            sync_cfg.my_site = site_no;
            sync_cfg.num_sites = cfg.num_players;
            sync_cfg.port_map = coplay_vm::PortMap::one_per_site(cfg.num_players as usize);
            sync_cfg.buf_frames = cfg.buf_frames;
            sync_cfg.send_interval = cfg.send_interval;
            sync_cfg.cfps = cfg.cfps;
            sync_cfg.rate_sync = cfg.rate_sync;
            // §3.2 initialization deviation: the slave's frame loop starts
            // late (applied post-handshake so it actually manifests).
            if site_no != 0 && !is_observer {
                sync_cfg.first_frame_delay = cfg.start_skew;
            }
            if cfg.trace {
                sync_cfg.telemetry = Telemetry::tracing(cfg.seed, site_no);
            } else if cfg.telemetry {
                sync_cfg.telemetry = Telemetry::recording();
            }
            sync_cfg.consistency = cfg.consistency;

            let machine = cfg.game.create();
            let source = RandomPresser::new(
                Player(site_no.min(3)),
                cfg.seed.wrapping_add(1 + site_no as u64),
            );
            let socket = SimNetwork::socket(&net, PeerId(site_no));
            let session = if cfg.consistency.is_rollback() && !is_observer {
                let mut s = RollbackSession::new(sync_cfg, machine, socket, source)
                    .with_time_server(PeerId::TIME_SERVER);
                if !cfg.check_convergence {
                    s = s.without_frame_hashes();
                }
                Site::Rollback(s)
            } else {
                let mut s = LockstepSession::new(sync_cfg, machine, socket, source)
                    .with_time_server(PeerId::TIME_SERVER);
                if !cfg.check_convergence {
                    s = s.without_frame_hashes();
                }
                Site::Lockstep(s)
            };
            // Boot times: everyone at 0 except a latecomer, which appears
            // at its join time.
            let is_latecomer =
                cfg.latecomer_at.is_some() && idx + 1 == site_numbers.len() && is_observer;
            let boot = if is_latecomer {
                SimTime::ZERO + cfg.latecomer_at.expect("latecomer checked")
            } else {
                SimTime::ZERO
            };
            let wake = wakes.schedule(boot, idx);
            sites.push(SiteRunner {
                site_no,
                session,
                pending_wake: Some(wake),
                frames_done: 0,
                hashes: Vec::new(),
                first_frame: 0,
                failed: false,
            });
        }

        // Virtual-time budget: generous multiple of the ideal runtime.
        let tpf_us = 1_000_000u64 / cfg.cfps.max(1) as u64;
        let budget = SimDuration::from_micros(cfg.frames * tpf_us * 30 + 120_000_000);

        // Main event loop.
        loop {
            let all_done = sites
                .iter()
                .all(|s| s.frames_done >= cfg.frames || s.failed);
            if all_done {
                break;
            }
            let next_net = net.borrow_mut().next_delivery_time();
            let next_wake = wakes.peek_time();
            let t = match (next_net, next_wake) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return Err(SimError::Deadlock { at: clock.now() }),
            };
            if t.saturating_since(SimTime::ZERO) > budget {
                return Err(SimError::TimeBudgetExceeded { budget });
            }
            clock.set(t.max(clock.now()));
            let now = clock.now();

            let delivered = net.borrow_mut().deliver_due(now);
            if delivered > 0 {
                // Drain the time server's inbox.
                while let Some((_, data)) = server_sock.try_recv().expect("sim socket") {
                    if let Ok(Message::TimeStamp { site, frame }) = Message::decode(&data) {
                        time_server.record(site, frame, now);
                    }
                }
                // Datagrams may unblock any site: tick them all.
                for idx in 0..sites.len() {
                    self.tick_site(&mut sites, idx, now, &mut wakes)?;
                }
            }
            while let Some(at) = wakes.peek_time() {
                if at > now {
                    break;
                }
                let (_, idx) = wakes.pop().expect("peeked");
                if sites[idx].pending_wake.is_some() {
                    sites[idx].pending_wake = None;
                    self.tick_site(&mut sites, idx, now, &mut wakes)?;
                }
            }
        }

        self.collect(sites, time_server, net, net_telemetry, clock.now())
    }

    fn tick_site(
        &self,
        sites: &mut [SiteRunner],
        idx: usize,
        now: SimTime,
        wakes: &mut EventQueue<usize>,
    ) -> Result<(), SimError> {
        let target = self.config.frames;
        let s = &mut sites[idx];
        if s.failed || s.frames_done >= target.saturating_mul(2) {
            return Ok(());
        }
        // Cancel any stale pending wake; we re-derive it from this tick.
        if let Some(id) = s.pending_wake.take() {
            wakes.cancel(id);
        }
        match s.session.tick(now) {
            Ok(Step::Wait(t)) => {
                s.pending_wake = Some(wakes.schedule(t.max(now), idx));
            }
            Ok(Step::FrameDone { report, next_wake }) => {
                // A rollback site's report hash is speculative; its
                // authoritative hashes are drained separately below.
                if let Site::Lockstep(_) = s.session {
                    if s.frames_done == 0 {
                        s.first_frame = report.frame;
                    }
                    if let Some(h) = report.state_hash {
                        s.hashes.push(h);
                    }
                }
                s.frames_done += 1;
                s.pending_wake = Some(wakes.schedule(next_wake.max(now), idx));
            }
            Ok(Step::Stopped(_)) => {
                s.failed = true;
            }
            Err(error) => {
                return Err(SimError::Session {
                    site: s.site_no,
                    error,
                });
            }
        }
        if let Site::Rollback(rb) = &mut s.session {
            for (f, h) in rb.take_confirmed() {
                if s.hashes.is_empty() {
                    s.first_frame = f;
                }
                s.hashes.push(h);
            }
        }
        Ok(())
    }

    fn collect(
        &self,
        sites: Vec<SiteRunner>,
        time_server: TimeServer,
        net: Rc<RefCell<SimNetwork>>,
        net_telemetry: Telemetry,
        end: SimTime,
    ) -> Result<ExperimentResult, SimError> {
        let cfg = &self.config;
        let telemetry: Vec<Telemetry> = sites
            .iter()
            .map(|s| s.session.config().telemetry.clone())
            .collect();
        // Series 1: frame times per player site, first `frames` frames.
        let mut stats = Vec::new();
        for s in sites.iter().take(cfg.num_players as usize) {
            let mut times = time_server.frame_times(s.site_no);
            times.truncate(cfg.frames as usize);
            stats.push(SiteStats::from_frame_times(&times));
        }
        // Series 2: per-frame inter-site differences, sites 0 and 1.
        let synchrony_ms = if cfg.num_players >= 2 {
            let diffs: Vec<_> = time_server
                .pair_differences(0, 1)
                .into_iter()
                .filter(|(f, _)| *f < cfg.frames)
                .map(|(_, d)| d)
                .collect();
            // Each |delta| also feeds the master's inter-site histogram
            // (no-op when telemetry is disabled).
            for d in &diffs {
                telemetry[0].observe("inter_site_frame_delta_us", d.abs().as_micros());
            }
            abs_mean(&deltas_ms(&diffs))
        } else {
            0.0
        };
        // Convergence: every pair of replicas must agree on every common
        // frame's state hash (offset by each site's first executed frame).
        let mut converged = true;
        if cfg.check_convergence {
            let reference = &sites[0];
            for (si, s) in sites.iter().enumerate().skip(1) {
                for (i, h) in s.hashes.iter().enumerate() {
                    let frame = s.first_frame + i as u64;
                    let Some(ri) = frame.checked_sub(reference.first_frame) else {
                        continue;
                    };
                    if let Some(rh) = reference.hashes.get(ri as usize) {
                        if rh != h {
                            if converged {
                                telemetry[si].record(end, EventKind::DesyncDetected { frame });
                            }
                            converged = false;
                        }
                    }
                }
            }
        }
        // Black-box dump: any site whose telemetry latched an anomaly
        // (desync above, or a stall/rollback-depth spike during the run)
        // writes its postmortem bundle before the handles are returned.
        if let Some(root) = &cfg.forensics_root {
            let config_text = format!("{cfg:#?}\n");
            for tel in &telemetry {
                match coplay_telemetry::forensics::dump_if_anomalous(
                    root,
                    tel,
                    &[("config.txt", config_text.clone().into_bytes())],
                ) {
                    Ok(Some(path)) => eprintln!("forensics bundle: {}", path.display()),
                    Ok(None) => {}
                    Err(e) => eprintln!("warning: forensics dump failed: {e}"),
                }
            }
        }
        let session_stats: Vec<SessionStats> = sites.iter().map(|s| s.session.stats()).collect();
        let net = net.borrow();
        let s01 = net.link_stats(PeerId(0), PeerId(1)).unwrap_or_default();
        let s10 = net.link_stats(PeerId(1), PeerId(0)).unwrap_or_default();
        Ok(ExperimentResult {
            sites: stats,
            synchrony_ms,
            converged,
            frames: cfg.frames,
            elapsed: end.saturating_since(SimTime::ZERO),
            packets_offered: s01.offered + s10.offered,
            packets_lost: s01.lost + s10.lost,
            session_stats,
            telemetry,
            net_telemetry,
        })
    }
}

/// Runs one experiment with the given config (convenience wrapper).
///
/// # Errors
///
/// See [`Experiment::run`].
pub fn run_experiment(config: ExperimentConfig) -> Result<ExperimentResult, SimError> {
    Experiment::new(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mut cfg: ExperimentConfig) -> ExperimentConfig {
        cfg.frames = 240;
        cfg.game = GameId::Pong;
        cfg
    }

    #[test]
    fn ideal_network_runs_at_60fps_with_zero_deviation() {
        let r = run_experiment(quick(ExperimentConfig::default())).unwrap();
        assert!(r.converged, "replicas must converge");
        for s in &r.sites {
            assert!(
                (s.mean_frame_time_ms - 16.667).abs() < 0.5,
                "frame time {} off 16.7ms",
                s.mean_frame_time_ms
            );
            assert!(
                s.frame_time_deviation_ms < 1.0,
                "deviation {}",
                s.frame_time_deviation_ms
            );
        }
        // Figure 2's own envelope below the threshold is <10ms.
        assert!(r.synchrony_ms < 10.0, "synchrony {}", r.synchrony_ms);
    }

    #[test]
    fn low_rtt_keeps_full_speed() {
        let mut cfg = quick(ExperimentConfig::with_rtt(SimDuration::from_millis(60)));
        cfg.frames = 240;
        let r = run_experiment(cfg).unwrap();
        assert!(r.converged);
        assert!((r.master_frame_time_ms() - 16.667).abs() < 1.0);
    }

    #[test]
    fn extreme_rtt_slows_the_game_but_stays_consistent() {
        let cfg = quick(ExperimentConfig::with_rtt(SimDuration::from_millis(300)));
        let r = run_experiment(cfg).unwrap();
        assert!(r.converged, "logical consistency holds at any latency");
        assert!(
            r.master_frame_time_ms() > 18.0,
            "game should be visibly slowed, got {}ms",
            r.master_frame_time_ms()
        );
    }

    #[test]
    fn packet_loss_is_survived() {
        let mut cfg = quick(ExperimentConfig::with_rtt(SimDuration::from_millis(40)));
        cfg.loss = 0.1;
        let r = run_experiment(cfg).unwrap();
        assert!(r.converged, "retransmission must mask 10% loss");
        assert!(r.packets_lost > 0, "loss process actually ran");
    }

    #[test]
    fn duplication_and_reordering_are_survived() {
        let mut cfg = quick(ExperimentConfig::with_rtt(SimDuration::from_millis(40)));
        cfg.duplicate = 0.1;
        cfg.reorder = 0.1;
        cfg.jitter = SimDuration::from_millis(15);
        let r = run_experiment(cfg).unwrap();
        assert!(r.converged);
    }

    #[test]
    fn start_skew_is_smoothed_by_the_slave() {
        let mut cfg = quick(ExperimentConfig::default());
        cfg.start_skew = SimDuration::from_millis(200);
        let r = run_experiment(cfg).unwrap();
        assert!(r.converged);
        // Despite a 200ms late slave, synchrony recovers to a small value
        // on average over the run.
        assert!(r.synchrony_ms < 25.0, "synchrony {}", r.synchrony_ms);
    }

    #[test]
    fn fresh_observer_replays_the_match() {
        let mut cfg = quick(ExperimentConfig::default());
        cfg.observers = 1;
        let r = run_experiment(cfg).unwrap();
        assert!(r.converged, "observer replica must match the players");
    }

    #[test]
    fn three_player_session_works() {
        let mut cfg = quick(ExperimentConfig::default());
        cfg.num_players = 3;
        let r = run_experiment(cfg).unwrap();
        assert!(r.converged);
        assert_eq!(r.sites.len(), 3);
    }

    #[test]
    fn latecomer_joins_via_snapshot_and_converges() {
        let mut cfg = quick(ExperimentConfig::default());
        cfg.frames = 360;
        cfg.latecomer_at = Some(SimDuration::from_secs(2)); // ~frame 120
        let r = run_experiment(cfg).unwrap();
        assert!(
            r.converged,
            "latecomer replica must match from its join point"
        );
    }

    #[test]
    fn rollback_clean_network_never_rolls_back() {
        let r = run_experiment(quick(ExperimentConfig::rollback_with_rtt(
            SimDuration::ZERO,
        )))
        .unwrap();
        assert!(r.converged, "rollback replicas must converge");
        for st in &r.session_stats {
            // Loopback-class delivery inside the local-lag budget: every
            // input is authoritative before its frame, so nothing is
            // predicted and nothing rolls back.
            assert_eq!(st.rollbacks, 0, "clean link must not roll back");
            assert_eq!(st.resimulated_frames, 0);
            assert_eq!(st.stalled_frames, 0);
        }
    }

    #[test]
    fn rollback_absorbs_high_rtt_without_stalls() {
        let cfg = quick(ExperimentConfig::rollback_with_rtt(
            SimDuration::from_millis(200),
        ));
        let r = run_experiment(cfg).unwrap();
        assert!(r.converged, "post-repair hashes must agree");
        let mut total_rollbacks = 0;
        for st in &r.session_stats {
            // RTT (200 ms) exceeds the local-lag budget (~100 ms) but stays
            // far inside the 30-frame speculation window: the frame loop
            // never blocks on input.
            assert_eq!(st.stalled_frames, 0, "speculation must absorb the RTT");
            assert!(st.max_rollback_depth <= 31, "window bounds repair depth");
            total_rollbacks += st.rollbacks;
        }
        assert!(
            total_rollbacks > 0,
            "random pressers must mispredict at some point"
        );
        // Lockstep at this RTT visibly slows the game (see
        // extreme_rtt_slows_the_game_but_stays_consistent); rollback holds
        // the nominal rate.
        assert!(
            (r.master_frame_time_ms() - 16.667).abs() < 1.0,
            "rollback should hold 60 FPS, got {}ms",
            r.master_frame_time_ms()
        );
    }

    #[test]
    fn rollback_survives_loss_and_reordering() {
        let mut cfg = quick(ExperimentConfig::rollback_with_rtt(
            SimDuration::from_millis(120),
        ));
        cfg.loss = 0.1;
        cfg.reorder = 0.1;
        cfg.jitter = SimDuration::from_millis(10);
        let r = run_experiment(cfg).unwrap();
        assert!(r.converged, "repair must mask loss-induced mispredictions");
        let rollbacks: u64 = r.session_stats.iter().map(|s| s.rollbacks).sum();
        let resim: u64 = r.session_stats.iter().map(|s| s.resimulated_frames).sum();
        assert!(rollbacks > 0, "lossy link must force repairs");
        assert!(resim >= rollbacks);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = quick(ExperimentConfig::with_rtt(SimDuration::from_millis(80)));
        let a = run_experiment(cfg.clone()).unwrap();
        let b = run_experiment(cfg).unwrap();
        assert_eq!(a.sites[0].mean_frame_time_ms, b.sites[0].mean_frame_time_ms);
        assert_eq!(a.synchrony_ms, b.synchrony_ms);
        assert_eq!(a.packets_offered, b.packets_offered);
    }
}
