//! Deterministic experiment harness for coplay: the paper's testbed in
//! virtual time.
//!
//! §4 of the reproduced paper measures two series over a Netem-bridged
//! two-PC testbed: per-site frame time and smoothness (Figure 1) and
//! inter-site synchrony via a LAN time server (Figure 2). This crate
//! replaces that hardware with a discrete-event simulation:
//!
//! * [`ExperimentConfig`] / [`Experiment`] — one run: N lockstep sites over
//!   impaired links, a measurement time server, seeded random players,
//!   per-frame replica-convergence checking.
//! * [`run_sweep`] / [`paper_rtt_points`] — the paper's RTT series
//!   (0–200 ms step 10, 200–400 ms step 50).
//! * [`metrics`] — the exact statistics of footnotes 10 and 11.
//!
//! Because everything (inputs, impairments, event order) derives from the
//! config's seed, every experiment is bit-for-bit reproducible.
//!
//! # Examples
//!
//! ```
//! use coplay_clock::SimDuration;
//! use coplay_games::GameId;
//! use coplay_sim::{run_experiment, ExperimentConfig};
//!
//! let mut cfg = ExperimentConfig::with_rtt(SimDuration::from_millis(40));
//! cfg.frames = 120; // quick doc run
//! cfg.game = GameId::Pong;
//! let result = run_experiment(cfg)?;
//! assert!(result.converged);
//! assert!((result.master_frame_time_ms() - 16.667).abs() < 1.0);
//! # Ok::<(), coplay_sim::SimError>(())
//! ```

#![warn(missing_docs)]

mod experiment;
pub mod metrics;
mod sweep;

pub use experiment::{
    run_experiment, Experiment, ExperimentConfig, ExperimentResult, SimError, FIRST_OBSERVER_SITE,
};
pub use metrics::SiteStats;
pub use sweep::{
    format_figure1, format_figure2, paper_rtt_points, run_sweep, run_sweep_parallel, threshold_rtt,
    SweepRow,
};
