//! The paper's evaluation statistics (§4, footnotes 10 and 11).
//!
//! * Footnote 10: for numbers x₁…xₙ, the *average deviation* is
//!   `Σ|xᵢ − x̄| / n` — the smoothness metric of Figure 1.
//! * Footnote 11: the *absolute average* is `Σ|xᵢ| / n` — the synchrony
//!   metric of Figure 2.

use coplay_clock::{SimDelta, SimDuration};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// The paper's footnote-10 "average deviation": mean absolute deviation
/// from the mean.
pub fn mean_abs_deviation(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).abs()).sum::<f64>() / values.len() as f64
}

/// The paper's footnote-11 "absolute average": mean of absolute values.
pub fn abs_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|v| v.abs()).sum::<f64>() / values.len() as f64
}

/// Converts frame durations to fractional milliseconds for the stats above.
pub fn durations_ms(values: &[SimDuration]) -> Vec<f64> {
    values.iter().map(|d| d.as_millis_f64()).collect()
}

/// Converts signed deltas to fractional milliseconds.
pub fn deltas_ms(values: &[SimDelta]) -> Vec<f64> {
    values.iter().map(|d| d.as_millis_f64()).collect()
}

/// Per-site Series-1 statistics: pace and smoothness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SiteStats {
    /// Frames with measured durations.
    pub frames: usize,
    /// Average frame time, ms (Figure 1's first series).
    pub mean_frame_time_ms: f64,
    /// Average deviation of frame time, ms (Figure 1's second series).
    pub frame_time_deviation_ms: f64,
}

impl SiteStats {
    /// Computes Series-1 statistics from measured frame durations.
    pub fn from_frame_times(times: &[SimDuration]) -> SiteStats {
        let ms = durations_ms(times);
        SiteStats {
            frames: times.len(),
            mean_frame_time_ms: mean(&ms),
            frame_time_deviation_ms: mean_abs_deviation(&ms),
        }
    }

    /// The effective frame rate implied by the mean frame time.
    pub fn fps(&self) -> f64 {
        if self.mean_frame_time_ms <= 0.0 {
            return 0.0;
        }
        1_000.0 / self.mean_frame_time_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean_abs_deviation(&[]), 0.0);
        assert_eq!(abs_mean(&[]), 0.0);
    }

    #[test]
    fn mean_matches_hand_computation() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn footnote_10_average_deviation() {
        // x̄ = 2, |1-2|+|2-2|+|3-2| = 2, /3.
        let v = [1.0, 2.0, 3.0];
        assert!((mean_abs_deviation(&v) - 2.0 / 3.0).abs() < 1e-12);
        // Constant series: zero deviation.
        assert_eq!(mean_abs_deviation(&[5.0; 10]), 0.0);
    }

    #[test]
    fn footnote_11_absolute_average() {
        let v = [-3.0, 3.0];
        assert_eq!(abs_mean(&v), 3.0);
        assert_eq!(mean(&v), 0.0, "plain mean would hide the divergence");
    }

    #[test]
    fn site_stats_from_steady_60fps() {
        let times = vec![SimDuration::from_micros(16_667); 100];
        let s = SiteStats::from_frame_times(&times);
        assert_eq!(s.frames, 100);
        assert!((s.mean_frame_time_ms - 16.667).abs() < 1e-9);
        assert!(s.frame_time_deviation_ms.abs() < 1e-9);
        assert!((s.fps() - 60.0).abs() < 0.01);
    }

    #[test]
    fn fps_of_zero_mean_is_zero() {
        assert_eq!(SiteStats::default().fps(), 0.0);
    }

    #[test]
    fn delta_conversion() {
        let d = [SimDelta::from_millis(-2), SimDelta::from_millis(2)];
        assert_eq!(abs_mean(&deltas_ms(&d)), 2.0);
    }
}
