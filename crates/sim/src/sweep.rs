//! The paper's RTT sweep and report formatting.
//!
//! §4.1: "we experiment on round-trip times ranging from 0 to 400
//! milliseconds … the step is set to 10ms from 0 to 200ms and 50ms from
//! 200ms to 400ms." [`paper_rtt_points`] generates exactly that series;
//! [`run_sweep`] executes one experiment per point and returns the rows
//! behind Figures 1 and 2.

use coplay_clock::SimDuration;

use crate::experiment::{run_experiment, ExperimentConfig, ExperimentResult, SimError};

/// The RTT values of the paper's sweeps: 0–200 ms step 10, 200–400 step 50.
pub fn paper_rtt_points() -> Vec<SimDuration> {
    let mut points: Vec<SimDuration> = (0..=20).map(|i| SimDuration::from_millis(i * 10)).collect();
    points.extend((1..=4).map(|i| SimDuration::from_millis(200 + i * 50)));
    points
}

/// One row of the sweep output.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The swept round-trip time.
    pub rtt: SimDuration,
    /// The full per-point result.
    pub result: ExperimentResult,
}

/// Runs `base` at every RTT in `points`.
///
/// # Errors
///
/// Propagates the first [`SimError`] (points far past the playable regime
/// can exhaust the virtual-time budget; the paper stops at 400 ms which
/// stays well inside it).
pub fn run_sweep(
    base: &ExperimentConfig,
    points: &[SimDuration],
    mut progress: impl FnMut(SimDuration, &ExperimentResult),
) -> Result<Vec<SweepRow>, SimError> {
    let mut rows = Vec::with_capacity(points.len());
    for &rtt in points {
        let mut cfg = base.clone();
        cfg.rtt = rtt;
        let result = run_experiment(cfg)?;
        progress(rtt, &result);
        rows.push(SweepRow { rtt, result });
    }
    Ok(rows)
}

/// Formats the sweep as the Figure-1 table (average frame time and average
/// deviation per RTT).
pub fn format_figure1(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "Figure 1 — Frame rates and smoothness\n\
         RTT(ms)  avg frame time(ms)  avg deviation(ms)  FPS   converged\n",
    );
    for row in rows {
        let s = &row.result.sites[0];
        out.push_str(&format!(
            "{:7}  {:18.2}  {:17.2}  {:4.1}  {}\n",
            row.rtt.as_millis(),
            s.mean_frame_time_ms,
            row.result.worst_deviation_ms(),
            s.fps(),
            row.result.converged,
        ));
    }
    out
}

/// Formats the sweep as the Figure-2 table (average absolute inter-site
/// frame-begin difference per RTT).
pub fn format_figure2(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "Figure 2 — Synchrony between two sites\n\
         RTT(ms)  avg |site0-site1| per frame (ms)  converged\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:7}  {:33.2}  {}\n",
            row.rtt.as_millis(),
            row.result.synchrony_ms,
            row.result.converged,
        ));
    }
    out
}

/// Finds the threshold RTT: the last point whose frame rate stays within
/// `tolerance_ms` of the nominal frame time (the paper identifies ≈140 ms).
pub fn threshold_rtt(rows: &[SweepRow], nominal_ms: f64, tolerance_ms: f64) -> Option<SimDuration> {
    rows.iter()
        .take_while(|r| (r.result.master_frame_time_ms() - nominal_ms).abs() <= tolerance_ms)
        .map(|r| r.rtt)
        .last()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_games::GameId;

    #[test]
    fn paper_points_match_section_4() {
        let p = paper_rtt_points();
        assert_eq!(p.len(), 25);
        assert_eq!(p[0], SimDuration::ZERO);
        assert_eq!(p[1], SimDuration::from_millis(10));
        assert_eq!(p[20], SimDuration::from_millis(200));
        assert_eq!(p[21], SimDuration::from_millis(250));
        assert_eq!(p[24], SimDuration::from_millis(400));
    }

    #[test]
    fn small_sweep_produces_monotone_slowdown() {
        let base = ExperimentConfig {
            frames: 180,
            game: GameId::Pong,
            ..ExperimentConfig::default()
        };
        let points = [
            SimDuration::ZERO,
            SimDuration::from_millis(100),
            SimDuration::from_millis(350),
        ];
        let mut seen = 0;
        let rows = run_sweep(&base, &points, |_, _| seen += 1).unwrap();
        assert_eq!(seen, 3);
        assert_eq!(rows.len(), 3);
        let ft: Vec<f64> = rows
            .iter()
            .map(|r| r.result.master_frame_time_ms())
            .collect();
        assert!(ft[0] <= ft[2] + 0.5, "fast link must not be slower: {ft:?}");
        assert!(
            ft[2] > ft[0] + 2.0,
            "350ms RTT must visibly slow the game: {ft:?}"
        );
        // Formatting smoke tests.
        let f1 = format_figure1(&rows);
        assert!(f1.contains("Figure 1"));
        assert_eq!(f1.lines().count(), 2 + rows.len());
        let f2 = format_figure2(&rows);
        assert!(f2.contains("Figure 2"));
    }

    #[test]
    fn threshold_detection() {
        let base = ExperimentConfig {
            frames: 180,
            game: GameId::Pong,
            ..ExperimentConfig::default()
        };
        let points = [
            SimDuration::ZERO,
            SimDuration::from_millis(40),
            SimDuration::from_millis(350),
        ];
        let rows = run_sweep(&base, &points, |_, _| {}).unwrap();
        let th = threshold_rtt(&rows, 16.667, 1.0).expect("low points are at speed");
        assert!(th >= SimDuration::from_millis(40));
        assert!(th < SimDuration::from_millis(350));
    }
}
