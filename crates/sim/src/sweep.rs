//! The paper's RTT sweep and report formatting.
//!
//! §4.1: "we experiment on round-trip times ranging from 0 to 400
//! milliseconds … the step is set to 10ms from 0 to 200ms and 50ms from
//! 200ms to 400ms." [`paper_rtt_points`] generates exactly that series;
//! [`run_sweep`] executes one experiment per point and returns the rows
//! behind Figures 1 and 2. [`run_sweep_parallel`] produces the identical
//! rows using a thread per core: each sweep point is an independent,
//! fully self-contained virtual-time simulation (every seed derives from
//! the point's config, never from shared state), so points can run on any
//! thread in any order without changing a single byte of the output.

use std::sync::atomic::{AtomicUsize, Ordering};

use coplay_clock::SimDuration;

use crate::experiment::{run_experiment, ExperimentConfig, ExperimentResult, SimError};

/// The RTT values of the paper's sweeps: 0–200 ms step 10, 200–400 step 50.
pub fn paper_rtt_points() -> Vec<SimDuration> {
    let mut points: Vec<SimDuration> = (0..=20).map(|i| SimDuration::from_millis(i * 10)).collect();
    points.extend((1..=4).map(|i| SimDuration::from_millis(200 + i * 50)));
    points
}

/// One row of the sweep output.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The swept round-trip time.
    pub rtt: SimDuration,
    /// The full per-point result.
    pub result: ExperimentResult,
}

/// Runs `base` at every RTT in `points`.
///
/// # Errors
///
/// Propagates the first [`SimError`] (points far past the playable regime
/// can exhaust the virtual-time budget; the paper stops at 400 ms which
/// stays well inside it).
pub fn run_sweep(
    base: &ExperimentConfig,
    points: &[SimDuration],
    mut progress: impl FnMut(SimDuration, &ExperimentResult),
) -> Result<Vec<SweepRow>, SimError> {
    let mut rows = Vec::with_capacity(points.len());
    for &rtt in points {
        let mut cfg = base.clone();
        cfg.rtt = rtt;
        let result = run_experiment(cfg)?;
        progress(rtt, &result);
        rows.push(SweepRow { rtt, result });
    }
    Ok(rows)
}

/// Runs `base` at every RTT in `points`, fanning the points out across
/// `threads` worker threads.
///
/// The output is byte-identical to [`run_sweep`]: each point's experiment
/// is deterministic given its config alone, rows come back in point order,
/// and `progress` fires in point order once every point has finished.
/// `threads` is clamped to `1..=points.len()`; one thread falls back to
/// the serial loop.
///
/// # Errors
///
/// Every point runs to completion; the error for the earliest failing
/// point (in point order, matching the serial loop) is returned.
pub fn run_sweep_parallel(
    base: &ExperimentConfig,
    points: &[SimDuration],
    threads: usize,
    mut progress: impl FnMut(SimDuration, &ExperimentResult),
) -> Result<Vec<SweepRow>, SimError> {
    let threads = threads.clamp(1, points.len().max(1));
    if threads == 1 {
        return run_sweep(base, points, progress);
    }
    // Work-stealing over an atomic cursor: threads claim whichever point
    // is next, and results land in per-thread (index, result) lists that
    // are merged by index afterwards — scheduling order never leaks into
    // the output.
    let next = AtomicUsize::new(0);
    let per_thread: Vec<Vec<(usize, Result<ExperimentResult, SimError>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&rtt) = points.get(i) else {
                                return mine;
                            };
                            let mut cfg = base.clone();
                            cfg.rtt = rtt;
                            mine.push((i, run_experiment(cfg)));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
    let mut slots: Vec<Option<Result<ExperimentResult, SimError>>> = Vec::new();
    slots.resize_with(points.len(), || None);
    for (i, r) in per_thread.into_iter().flatten() {
        slots[i] = Some(r);
    }
    let mut rows = Vec::with_capacity(points.len());
    for (slot, &rtt) in slots.into_iter().zip(points) {
        let result = slot.expect("atomic cursor visits every point")?;
        progress(rtt, &result);
        rows.push(SweepRow { rtt, result });
    }
    Ok(rows)
}

/// Formats the sweep as the Figure-1 table (average frame time and average
/// deviation per RTT).
pub fn format_figure1(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "Figure 1 — Frame rates and smoothness\n\
         RTT(ms)  avg frame time(ms)  avg deviation(ms)  FPS   converged\n",
    );
    for row in rows {
        let s = &row.result.sites[0];
        out.push_str(&format!(
            "{:7}  {:18.2}  {:17.2}  {:4.1}  {}\n",
            row.rtt.as_millis(),
            s.mean_frame_time_ms,
            row.result.worst_deviation_ms(),
            s.fps(),
            row.result.converged,
        ));
    }
    out
}

/// Formats the sweep as the Figure-2 table (average absolute inter-site
/// frame-begin difference per RTT).
pub fn format_figure2(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "Figure 2 — Synchrony between two sites\n\
         RTT(ms)  avg |site0-site1| per frame (ms)  converged\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:7}  {:33.2}  {}\n",
            row.rtt.as_millis(),
            row.result.synchrony_ms,
            row.result.converged,
        ));
    }
    out
}

/// Finds the threshold RTT: the last point whose frame rate stays within
/// `tolerance_ms` of the nominal frame time (the paper identifies ≈140 ms).
pub fn threshold_rtt(rows: &[SweepRow], nominal_ms: f64, tolerance_ms: f64) -> Option<SimDuration> {
    rows.iter()
        .take_while(|r| (r.result.master_frame_time_ms() - nominal_ms).abs() <= tolerance_ms)
        .map(|r| r.rtt)
        .last()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_games::GameId;

    #[test]
    fn paper_points_match_section_4() {
        let p = paper_rtt_points();
        assert_eq!(p.len(), 25);
        assert_eq!(p[0], SimDuration::ZERO);
        assert_eq!(p[1], SimDuration::from_millis(10));
        assert_eq!(p[20], SimDuration::from_millis(200));
        assert_eq!(p[21], SimDuration::from_millis(250));
        assert_eq!(p[24], SimDuration::from_millis(400));
    }

    #[test]
    fn small_sweep_produces_monotone_slowdown() {
        let base = ExperimentConfig {
            frames: 180,
            game: GameId::Pong,
            ..ExperimentConfig::default()
        };
        let points = [
            SimDuration::ZERO,
            SimDuration::from_millis(100),
            SimDuration::from_millis(350),
        ];
        let mut seen = 0;
        let rows = run_sweep(&base, &points, |_, _| seen += 1).unwrap();
        assert_eq!(seen, 3);
        assert_eq!(rows.len(), 3);
        let ft: Vec<f64> = rows
            .iter()
            .map(|r| r.result.master_frame_time_ms())
            .collect();
        assert!(ft[0] <= ft[2] + 0.5, "fast link must not be slower: {ft:?}");
        assert!(
            ft[2] > ft[0] + 2.0,
            "350ms RTT must visibly slow the game: {ft:?}"
        );
        // Formatting smoke tests.
        let f1 = format_figure1(&rows);
        assert!(f1.contains("Figure 1"));
        assert_eq!(f1.lines().count(), 2 + rows.len());
        let f2 = format_figure2(&rows);
        assert!(f2.contains("Figure 2"));
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let base = ExperimentConfig {
            frames: 120,
            game: GameId::Pong,
            ..ExperimentConfig::default()
        };
        let points = [
            SimDuration::ZERO,
            SimDuration::from_millis(30),
            SimDuration::from_millis(80),
            SimDuration::from_millis(120),
        ];
        let serial = run_sweep(&base, &points, |_, _| {}).unwrap();
        let mut order = Vec::new();
        let parallel = run_sweep_parallel(&base, &points, 4, |rtt, _| order.push(rtt)).unwrap();
        assert_eq!(order, points, "progress fires in point order");
        // The rendered figures are the output artifact; they must match to
        // the byte, as must the raw counters behind them.
        assert_eq!(format_figure1(&serial), format_figure1(&parallel));
        assert_eq!(format_figure2(&serial), format_figure2(&parallel));
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.rtt, p.rtt);
            assert_eq!(s.result.packets_offered, p.result.packets_offered);
            assert_eq!(s.result.synchrony_ms, p.result.synchrony_ms);
            assert_eq!(s.result.converged, p.result.converged);
        }
    }

    #[test]
    fn threshold_detection() {
        let base = ExperimentConfig {
            frames: 180,
            game: GameId::Pong,
            ..ExperimentConfig::default()
        };
        let points = [
            SimDuration::ZERO,
            SimDuration::from_millis(40),
            SimDuration::from_millis(350),
        ];
        let rows = run_sweep(&base, &points, |_, _| {}).unwrap();
        let th = threshold_rtt(&rows, 16.667, 1.0).expect("low points are at speed");
        assert!(th >= SimDuration::from_millis(40));
        assert!(th < SimDuration::from_millis(350));
    }
}
