//! Configuration of a lockstep session.

use coplay_clock::SimDuration;
use coplay_telemetry::Telemetry;
use coplay_vm::PortMap;

/// How a session maintains logical consistency across sites.
///
/// [`Lockstep`](ConsistencyMode::Lockstep) is the paper's Algorithm 2: a
/// frame executes only once every site's partial input for it has arrived,
/// so RTT spikes become input-wait stalls. `Rollback` speculatively
/// executes frames with *predicted* remote inputs and repairs
/// mispredictions by restoring a state checkpoint and resimulating — the
/// session only blocks once speculation would run more than
/// `max_rollback_frames` ahead of the confirmed input frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyMode {
    /// Block until every remote partial input has arrived (Algorithm 2).
    Lockstep,
    /// Predict missing remote inputs and roll back on misprediction.
    Rollback {
        /// Maximum frames of speculation past the confirmed-input frontier
        /// before the session degrades to lockstep-style blocking.
        max_rollback_frames: u64,
        /// Take a state checkpoint every this many frames (1 = every
        /// frame). Smaller intervals cost more snapshot bytes but shorten
        /// resimulation after a misprediction.
        checkpoint_interval: u64,
    },
}

impl ConsistencyMode {
    /// The default rollback tuning: a 30-frame (500 ms at 60 FPS)
    /// speculation window with a checkpoint every 5 frames.
    pub fn rollback() -> ConsistencyMode {
        ConsistencyMode::Rollback {
            max_rollback_frames: 30,
            checkpoint_interval: 5,
        }
    }

    /// `true` for any `Rollback` variant.
    pub fn is_rollback(&self) -> bool {
        matches!(self, ConsistencyMode::Rollback { .. })
    }
}

/// How a session's datagrams reach the other sites.
///
/// The paper assumes [`PeerToPeer`](Topology::PeerToPeer): every site can
/// address every other site directly, so control traffic (session
/// handshake, orderly leave) loops over the peer list. Behind a relay
/// (`coplay-relay`) clients are outbound-only and the transport's single
/// reachable address is the relay itself; [`Relay`](Topology::Relay) makes
/// the drivers send that control traffic once to the broadcast peer
/// instead, and the relay fans it out to the session's other members.
/// Per-destination input traffic is unchanged in both modes — a relay
/// transport adapter envelopes it with the destination site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Direct peer addressing (the paper's deployment). The default.
    #[default]
    PeerToPeer,
    /// All outbound traffic goes to one relay address; session-wide control
    /// messages are sent once to `PeerId::BROADCAST` rather than per peer.
    Relay,
}

/// Parameters of the synchronization algorithm (§3 of the paper).
///
/// The defaults reproduce the paper's deployment: 60 FPS games, a local lag
/// of 6 frames (≈100 ms — the HCI bound the paper cites), one outbound
/// message per 20 ms, site 0 as the pacing master.
///
/// # Examples
///
/// ```
/// use coplay_sync::SyncConfig;
///
/// let cfg = SyncConfig::two_player(0);
/// assert_eq!(cfg.buf_frames, 6);
/// assert_eq!(cfg.local_lag().as_millis(), 100);
/// assert_eq!(cfg.time_per_frame().as_micros(), 16_667);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyncConfig {
    /// This site's number (`MySiteNo`); `0` is the pacing master.
    pub my_site: u8,
    /// Number of *player* sites in the session (the ICDCS paper fixes this
    /// at 2; the journal extension allows more).
    pub num_sites: u8,
    /// Which input bits each site owns (the paper's `SET[k]`).
    pub port_map: PortMap,
    /// The local lag in frames (`BufFrame`). 6 frames at 60 FPS ≈ 100 ms.
    pub buf_frames: u64,
    /// The game's constant frame rate (`CFPS`).
    pub cfps: u32,
    /// Minimum interval between outbound sync messages. The paper's
    /// implementation buffers outbound messages and sends one per 20 ms
    /// (§4.2's "10ms average, 20ms worst-case" term).
    pub send_interval: SimDuration,
    /// How often a blocked `SyncInput` re-polls the network when no packet
    /// wakes it first.
    pub poll_interval: SimDuration,
    /// Cap on input frames carried per message (oldest first, so
    /// retransmission stays cumulative).
    pub max_payload_frames: usize,
    /// Whether the slave runs Algorithm 4 (master/slave pace smoothing).
    /// Disabling it reproduces the paper's §3.2 "earlier site is penalized"
    /// pathology — kept as a switch for the ablation experiment.
    pub rate_sync: bool,
    /// Dead zone for Algorithm 4: `SyncAdjustTimeDelta` smaller than this
    /// is treated as measurement noise and ignored. The paper's §4.2
    /// decomposition charges ±10 ms to send batching and ±5 ms to thread
    /// slicing; a slave that chased that noise every frame would wobble by
    /// the same amount, so the default matches those terms (15 ms).
    pub sync_dead_zone: SimDuration,
    /// Extension (not in the paper): declare the session dead after this
    /// much silence from a peer while blocked in `SyncInput`. `None`
    /// reproduces the paper's behaviour of freezing forever.
    pub stall_timeout: Option<SimDuration>,
    /// Extra delay between completing the session handshake and executing
    /// the first frame. Models the paper's §3.2 "two sites cannot begin at
    /// exactly the same time" initialization deviation (used by the pacing
    /// ablation; zero in normal sessions).
    pub first_frame_delay: SimDuration,
    /// Observability sink for this session: the driver, input synchronizer,
    /// frame pacer, and RTT estimator all record into it. Defaults to the
    /// disabled no-op handle, which costs nothing on the hot path. Note the
    /// handle compares equal to its clones regardless of recorded contents,
    /// so `SyncConfig` equality stays meaningful.
    pub telemetry: Telemetry,
    /// How the session maintains logical consistency. The driver types are
    /// separate (`LockstepSession` here, `RollbackSession` in the
    /// `coplay-rollback` crate); harnesses read this field to decide which
    /// to build, and `RollbackSession` reads its tuning from it.
    pub consistency: ConsistencyMode,
    /// How datagrams reach the other sites. [`Topology::PeerToPeer`] (the
    /// default) preserves the paper's direct addressing;
    /// [`Topology::Relay`] adapts the drivers' control traffic to a
    /// single-address relay transport.
    pub topology: Topology,
}

impl SyncConfig {
    /// The paper's two-player configuration for the given local site
    /// (0 = master, 1 = slave).
    ///
    /// # Panics
    ///
    /// Panics if `my_site > 1`.
    pub fn two_player(my_site: u8) -> SyncConfig {
        assert!(my_site < 2, "two-player sites are 0 and 1");
        SyncConfig {
            my_site,
            num_sites: 2,
            port_map: PortMap::two_player(),
            buf_frames: 6,
            cfps: 60,
            send_interval: SimDuration::from_millis(20),
            poll_interval: SimDuration::from_millis(1),
            max_payload_frames: 120,
            rate_sync: true,
            sync_dead_zone: SimDuration::from_millis(15),
            stall_timeout: None,
            first_frame_delay: SimDuration::ZERO,
            telemetry: Telemetry::disabled(),
            consistency: ConsistencyMode::Lockstep,
            topology: Topology::default(),
        }
    }

    /// An `n`-player full-mesh configuration (journal extension), one
    /// player slot per site.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0, exceeds 4, or `my_site >= n`.
    pub fn n_player(my_site: u8, n: u8) -> SyncConfig {
        assert!((1..=4).contains(&n), "1-4 player sites supported");
        assert!(my_site < n, "my_site must be < n");
        let mut cfg = SyncConfig::two_player(0);
        cfg.my_site = my_site;
        cfg.num_sites = n;
        cfg.port_map = PortMap::one_per_site(n as usize);
        cfg
    }

    /// The expected duration of one frame (`TimePerFrame`, rounded to
    /// whole microseconds — 16,667 µs at 60 FPS).
    pub fn time_per_frame(&self) -> SimDuration {
        let cfps = self.cfps.max(1) as u64;
        SimDuration::from_micros((1_000_000 + cfps / 2) / cfps)
    }

    /// The local lag as wall time (`buf_frames × time_per_frame`).
    pub fn local_lag(&self) -> SimDuration {
        self.time_per_frame() * self.buf_frames
    }

    /// `true` if this site provides the reference pace (Algorithm 4's
    /// master, fixed to site 0).
    pub fn is_master(&self) -> bool {
        self.my_site == 0
    }

    /// Sites other than this one, ascending.
    pub fn peers(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.num_sites).filter(move |&s| s != self.my_site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_player_defaults_match_paper() {
        let cfg = SyncConfig::two_player(1);
        assert_eq!(cfg.my_site, 1);
        assert_eq!(cfg.num_sites, 2);
        assert_eq!(cfg.buf_frames, 6);
        assert_eq!(cfg.cfps, 60);
        assert_eq!(cfg.send_interval, SimDuration::from_millis(20));
        assert!(!cfg.is_master());
        assert!(SyncConfig::two_player(0).is_master());
    }

    #[test]
    fn local_lag_is_100ms_at_60fps() {
        let cfg = SyncConfig::two_player(0);
        // 6 * 16.667ms = 100.002ms ~ the paper's 100ms.
        assert_eq!(cfg.local_lag().as_millis(), 100);
    }

    #[test]
    fn peers_excludes_self() {
        let cfg = SyncConfig::n_player(1, 3);
        assert_eq!(cfg.peers().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn n_player_port_map_is_disjoint() {
        let cfg = SyncConfig::n_player(0, 4);
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert_eq!(cfg.port_map.site_mask(a) & cfg.port_map.site_mask(b), 0);
            }
        }
    }

    #[test]
    fn default_consistency_is_lockstep() {
        let cfg = SyncConfig::two_player(0);
        assert_eq!(cfg.consistency, ConsistencyMode::Lockstep);
        assert!(!cfg.consistency.is_rollback());
        assert!(ConsistencyMode::rollback().is_rollback());
        match ConsistencyMode::rollback() {
            ConsistencyMode::Rollback {
                max_rollback_frames,
                checkpoint_interval,
            } => {
                assert_eq!(max_rollback_frames, 30);
                assert_eq!(checkpoint_interval, 5);
            }
            ConsistencyMode::Lockstep => unreachable!(),
        }
    }

    #[test]
    fn default_topology_is_peer_to_peer() {
        let cfg = SyncConfig::two_player(0);
        assert_eq!(cfg.topology, Topology::PeerToPeer);
        assert_eq!(Topology::default(), Topology::PeerToPeer);
    }

    #[test]
    #[should_panic(expected = "two-player sites")]
    fn two_player_rejects_site_2() {
        let _ = SyncConfig::two_player(2);
    }

    #[test]
    #[should_panic(expected = "1-4 player")]
    fn n_player_rejects_five() {
        let _ = SyncConfig::n_player(0, 5);
    }
}
