//! The distributed game VM loop (Algorithm 1) plus session control.
//!
//! [`LockstepSession`] owns one site's machine replica and runs the paper's
//! frame loop:
//!
//! ```text
//! repeat
//!     BeginFrameTiming();          // FrameTimer::begin_frame (Algorithm 4)
//!     I  = GetInput();             // InputSource::sample
//!     I' = SyncInput(I, Frame);    // InputSync poll loop (Algorithm 2)
//!     S' = Transition(I', S);      // Machine::step_frame — the black box
//!     translate and present S';    // caller-side, via FrameReport
//!     EndFrameTiming();            // FrameTimer::end_frame (Algorithm 3)
//!     Frame++;
//! until end of game
//! ```
//!
//! The session is sans-io in time: [`LockstepSession::tick`] takes `now`
//! explicitly and returns what to do next ([`Step`]), so the discrete-event
//! simulator and the real-time runner drive identical code.
//!
//! Session control implements the paper's start protocol (two sites start
//! within one RTT) plus the journal extensions: N players, observers, and
//! latecomers joining mid-game via state snapshots.

use std::collections::BTreeMap;

use coplay_clock::{SimDelta, SimDuration, SimTime};
use coplay_net::{PeerId, Transport};
use coplay_telemetry::{EventKind, SpanStage};
use coplay_vm::{InputWord, Machine};

use crate::config::{SyncConfig, Topology};
use crate::error::{StopReason, SyncError};
use crate::input_source::InputSource;
use crate::rtt::RttEstimator;
use crate::stats::SessionStats;
use crate::sync_input::InputSync;
use crate::timing::{FrameEnd, FrameTimer};
use crate::wire::{Message, MAX_CHUNK_BYTES};

/// Retransmission margin applied when a latecomer is registered, covering
/// pointer divergence between players at join time. Must stay below the
/// input-history retention window
/// ([`RETAIN_FRAMES`](crate::sync_input::RETAIN_FRAMES)).
pub const JOIN_MARGIN_FRAMES: u64 = 64;

/// Hello/SnapshotRequest retransmission interval during joins.
const JOIN_RETRY: SimDuration = SimDuration::from_millis(200);

/// What the driver should do after a [`LockstepSession::tick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Nothing to do until this instant (or until a datagram arrives —
    /// whichever is first).
    Wait(SimTime),
    /// A frame was executed; `next_wake` is when the next frame may begin.
    FrameDone {
        /// What happened this frame.
        report: FrameReport,
        /// Earliest instant the next frame can start.
        next_wake: SimTime,
    },
    /// The session ended.
    Stopped(StopReason),
}

/// One executed frame, for presentation and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameReport {
    /// The frame number just executed.
    pub frame: u64,
    /// The merged input word fed to the machine.
    pub input: InputWord,
    /// The machine's state digest after the frame (if hashing is enabled).
    pub state_hash: Option<u64>,
    /// When this frame began (`CurrFrameStart`).
    pub began_at: SimTime,
    /// How long the frame was blocked waiting for remote input (zero for a
    /// frame that executed as soon as its pacing allowed). Lets realtime
    /// callers distinguish an input-wait stall from an ordinary paced wait
    /// without reaching into [`InputSync`](crate::InputSync) internals.
    pub stall: SimDuration,
}

#[derive(Debug)]
enum Phase {
    /// Master: waiting for every player's Hello.
    MasterWait,
    /// Non-master: helloing until every player acknowledged.
    Connecting {
        next_hello: SimTime,
        acks: BTreeMap<u8, u64>,
    },
    /// Latecomer: snapshot transfer in progress.
    AwaitSnapshot {
        next_request: SimTime,
        frame: u64,
        total: usize,
        buf: Vec<u8>,
        received: Vec<bool>, // per chunk
    },
    Run(RunState),
    Done(StopReason),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// Initialization deviation: hold until this instant before frame 0.
    StartAt(SimTime),
    Begin,
    Syncing,
    EndWait(SimTime),
}

/// One site of a distributed game session.
pub struct LockstepSession<M, T, S> {
    cfg: SyncConfig,
    machine: M,
    transport: T,
    source: S,
    sync: InputSync,
    timer: FrameTimer,
    rtt: RttEstimator,
    phase: Phase,
    frame: u64,
    frame_start: SimTime,
    rom_hash: u64,
    joined: Vec<u8>,
    time_server: Option<PeerId>,
    hash_frames: bool,
    stats: SessionStats,
    blocked_at: Option<SimTime>,
    /// Reusable datagram buffer for the per-frame input send path.
    send_buf: Vec<u8>,
}

impl<M: Machine, T: Transport, S: InputSource> LockstepSession<M, T, S> {
    /// Creates a session site. `machine` must be in its initial state — its
    /// state hash doubles as the game-image identity both sites compare.
    pub fn new(cfg: SyncConfig, machine: M, transport: T, source: S) -> Self {
        let rom_hash = machine.state_hash();
        let tpf = cfg.time_per_frame();
        // The dead zone must stay well inside the local-lag budget: a slave
        // allowed to drift by more than the lag window would starve the
        // master of inputs every frame (visible at high CFPS, where 15 ms
        // spans many frames).
        let dead_zone = cfg.sync_dead_zone.min(cfg.local_lag() / 4);
        let timer = FrameTimer::new(tpf, cfg.is_master(), cfg.rate_sync, cfg.buf_frames)
            .with_dead_zone(dead_zone)
            .with_telemetry(cfg.telemetry.clone());
        let rtt = RttEstimator::default().with_telemetry(cfg.telemetry.clone());
        let phase = if cfg.is_master() {
            Phase::MasterWait
        } else {
            Phase::Connecting {
                next_hello: SimTime::ZERO,
                acks: BTreeMap::new(),
            }
        };
        LockstepSession {
            sync: InputSync::new(cfg.clone()),
            timer,
            rtt,
            phase,
            frame: 0,
            frame_start: SimTime::ZERO,
            rom_hash,
            joined: Vec::new(),
            time_server: None,
            hash_frames: true,
            stats: SessionStats::default(),
            blocked_at: None,
            send_buf: Vec::new(),
            cfg,
            machine,
            transport,
            source,
        }
    }

    /// Also stamp every frame begin to the measurement time server at
    /// `peer` (§4's experimental setup).
    pub fn with_time_server(mut self, peer: PeerId) -> Self {
        self.time_server = Some(peer);
        self
    }

    /// Disables per-frame state hashing (saves time in throughput benches).
    pub fn without_frame_hashes(mut self) -> Self {
        self.hash_frames = false;
        self
    }

    /// The local machine replica.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// The site's current frame (Algorithm 1's `Frame`).
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// The site configuration.
    pub fn config(&self) -> &SyncConfig {
        &self.cfg
    }

    /// The current smoothed RTT estimate.
    pub fn rtt(&self) -> SimDuration {
        self.rtt.rtt()
    }

    /// The sync engine (metrics/test hook).
    pub fn sync(&self) -> &InputSync {
        &self.sync
    }

    /// In-band session counters (messages, stalls, late frames).
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Sends an orderly goodbye and stops the session.
    ///
    /// # Errors
    ///
    /// Propagates transport failures while sending the goodbye.
    pub fn stop(&mut self) -> Result<(), SyncError> {
        let bye = Message::Bye.encode();
        if self.cfg.topology == Topology::Relay {
            // One relay address carries the whole session: a single
            // broadcast goodbye reaches every other member.
            self.transport.send(PeerId::BROADCAST, &bye)?;
        } else {
            for p in self.peer_ids() {
                self.transport.send(p, &bye)?;
            }
        }
        self.phase = Phase::Done(StopReason::LocalQuit);
        Ok(())
    }

    fn peer_ids(&self) -> Vec<PeerId> {
        self.cfg.peers().map(PeerId).collect()
    }

    /// Drives the session. Call whenever the previous [`Step::Wait`]
    /// deadline passes **or** a datagram may have arrived.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError`] on transport failure, game-image mismatch, a
    /// failed snapshot join, or a stall exceeding the configured timeout.
    pub fn tick(&mut self, now: SimTime) -> Result<Step, SyncError> {
        self.drain_transport(now)?;
        loop {
            match &mut self.phase {
                Phase::Done(reason) => return Ok(Step::Stopped(reason.clone())),
                Phase::MasterWait => {
                    let players_expected = self.cfg.num_sites as usize - 1;
                    if self.joined.len() >= players_expected {
                        self.phase =
                            Phase::Run(RunState::StartAt(now + self.cfg.first_frame_delay));
                        continue;
                    }
                    return Ok(Step::Wait(now + JOIN_RETRY));
                }
                Phase::Connecting { next_hello, acks } => {
                    let player_peers: Vec<u8> = (0..self.cfg.num_sites)
                        .filter(|&s| s != self.cfg.my_site)
                        .collect();
                    if player_peers.iter().all(|p| acks.contains_key(p)) {
                        let start = acks.values().copied().max().unwrap_or(0);
                        if start == 0 {
                            self.phase =
                                Phase::Run(RunState::StartAt(now + self.cfg.first_frame_delay));
                        } else {
                            // Mid-game join: fetch a snapshot from the master.
                            self.phase = Phase::AwaitSnapshot {
                                next_request: SimTime::ZERO,
                                frame: 0,
                                total: 0,
                                buf: Vec::new(),
                                received: Vec::new(),
                            };
                        }
                        continue;
                    }
                    if now >= *next_hello {
                        *next_hello = now + JOIN_RETRY;
                        let hello = Message::Hello {
                            site: self.cfg.my_site,
                            rom_hash: self.rom_hash,
                            observer: !self.sync.is_player(),
                        }
                        .encode();
                        if self.cfg.topology == Topology::Relay {
                            // Outbound-only client: the relay fans the
                            // hello out to whichever members are present.
                            self.transport.send(PeerId::BROADCAST, &hello)?;
                        } else {
                            for &p in &player_peers {
                                if !acks.contains_key(&p) {
                                    self.transport.send(PeerId(p), &hello)?;
                                }
                            }
                        }
                    }
                    let deadline = match &self.phase {
                        Phase::Connecting { next_hello, .. } => *next_hello,
                        _ => unreachable!(),
                    };
                    return Ok(Step::Wait(deadline));
                }
                Phase::AwaitSnapshot {
                    next_request,
                    frame,
                    total,
                    buf,
                    received,
                } => {
                    let complete = *total > 0 && received.iter().all(|&r| r);
                    if complete {
                        let frame = *frame;
                        let bytes = std::mem::take(buf);
                        self.cfg.telemetry.record(
                            now,
                            EventKind::SnapshotLoaded {
                                frame,
                                bytes: bytes.len() as u64,
                            },
                        );
                        self.machine
                            .load_state(&bytes)
                            .map_err(|e| SyncError::Snapshot(e.to_string()))?;
                        self.frame = frame;
                        self.sync = InputSync::new_at(self.cfg.clone(), frame);
                        self.phase = Phase::Run(RunState::StartAt(now));
                        continue;
                    }
                    if now >= *next_request {
                        *next_request = now + JOIN_RETRY;
                        self.transport
                            .send(PeerId(0), &Message::SnapshotRequest.encode())?;
                    }
                    let deadline = match &self.phase {
                        Phase::AwaitSnapshot { next_request, .. } => *next_request,
                        _ => unreachable!(),
                    };
                    return Ok(Step::Wait(deadline));
                }
                Phase::Run(state) => match *state {
                    RunState::StartAt(t) => {
                        if now >= t {
                            self.phase = Phase::Run(RunState::Begin);
                            continue;
                        }
                        return Ok(Step::Wait(t));
                    }
                    RunState::Begin => {
                        self.frame_start = now;
                        self.cfg
                            .telemetry
                            .record(now, EventKind::FrameBegun { frame: self.frame });
                        let obs = self.sync.master_observation();
                        self.timer
                            .begin_frame(now, self.frame, obs.as_ref(), self.rtt.rtt());
                        if self.timer.last_sync_adjust() != SimDelta::ZERO {
                            self.stats.pace_adjustments += 1;
                        }
                        let local = self.source.sample(self.frame);
                        self.sync.begin_frame(self.frame, local, now);
                        if let Some(server) = self.time_server {
                            let stamp = Message::TimeStamp {
                                site: self.cfg.my_site,
                                frame: self.frame,
                            };
                            self.transport.send(server, &stamp.encode())?;
                        }
                        self.phase = Phase::Run(RunState::Syncing);
                    }
                    RunState::Syncing => {
                        // Non-masters probe the master for RTT (Algorithm 4
                        // needs RTT/2).
                        if !self.cfg.is_master() {
                            if let Some(nonce) = self.rtt.maybe_ping(now) {
                                self.transport
                                    .send(PeerId(0), &Message::Ping { nonce }.encode())?;
                            }
                        }
                        for (dst, msg) in self.sync.outgoing(now) {
                            self.stats.input_messages_sent += 1;
                            self.stats.input_frames_sent += msg.inputs.len() as u64;
                            Message::Input(msg).encode_into(&mut self.send_buf);
                            self.transport.send(PeerId(dst), &self.send_buf)?;
                        }
                        if self.sync.ready() {
                            let mut stall = SimDuration::ZERO;
                            if let Some(began) = self.blocked_at.take() {
                                stall = now.saturating_since(began);
                                self.stats.note_stall(began, now);
                                self.cfg.telemetry.record(
                                    now,
                                    EventKind::StallEnd {
                                        frame: self.frame,
                                        duration: stall,
                                    },
                                );
                            }
                            let input = self.sync.take();
                            self.machine.step_frame(input);
                            // Span chain: on a lockstep site a frame's input
                            // vector is merged, confirmed authoritative, and
                            // presented in one motion.
                            let site = self.cfg.my_site;
                            self.cfg
                                .telemetry
                                .span(now, SpanStage::Merged, self.frame, site);
                            self.cfg
                                .telemetry
                                .span(now, SpanStage::Confirmed, self.frame, site);
                            self.cfg
                                .telemetry
                                .span(now, SpanStage::Presented, self.frame, site);
                            self.cfg.telemetry.record(
                                now,
                                EventKind::FrameExecuted {
                                    frame: self.frame,
                                    frame_time: now.saturating_since(self.frame_start),
                                },
                            );
                            let report = FrameReport {
                                frame: self.frame,
                                input,
                                state_hash: self.hash_frames.then(|| self.machine.state_hash()),
                                began_at: self.frame_start,
                                stall,
                            };
                            self.stats.frames += 1;
                            let next_wake = match self.timer.end_frame(now) {
                                FrameEnd::WaitUntil(t) => t,
                                FrameEnd::Behind => {
                                    self.stats.late_frames += 1;
                                    now
                                }
                            };
                            self.phase = Phase::Run(RunState::EndWait(next_wake));
                            return Ok(Step::FrameDone { report, next_wake });
                        }
                        if self.blocked_at.is_none() {
                            self.blocked_at = Some(now);
                            self.cfg
                                .telemetry
                                .record(now, EventKind::StallBegin { frame: self.frame });
                        }
                        if let (Some(limit), Some(stalled)) =
                            (self.cfg.stall_timeout, self.sync.stalled_for(now))
                        {
                            if stalled >= limit {
                                return Err(SyncError::Stalled(stalled));
                            }
                        }
                        return Ok(Step::Wait(now + self.cfg.poll_interval));
                    }
                    RunState::EndWait(until) => {
                        if now >= until {
                            self.frame += 1;
                            self.phase = Phase::Run(RunState::Begin);
                            continue;
                        }
                        return Ok(Step::Wait(until));
                    }
                },
            }
        }
    }

    /// Services the network without advancing the game: drains incoming
    /// datagrams (acks, pings, duplicate hellos, snapshot requests) and
    /// flushes any input frames still owed to peers — paced sends and
    /// retransmissions alike.
    ///
    /// [`run_realtime`](crate::run_realtime) calls this while lingering
    /// after its frame budget: the final local inputs must still reach
    /// peers that are a few frames behind, but executing frames past the
    /// budget would let replicas end at different frames (and therefore
    /// different state hashes).
    ///
    /// # Errors
    ///
    /// Propagates transport failures, like [`tick`](Self::tick).
    pub fn pump(&mut self, now: SimTime) -> Result<(), SyncError> {
        self.drain_transport(now)?;
        if matches!(self.phase, Phase::Run(_)) {
            for (dst, msg) in self.sync.outgoing(now) {
                self.stats.input_messages_sent += 1;
                self.stats.input_frames_sent += msg.inputs.len() as u64;
                Message::Input(msg).encode_into(&mut self.send_buf);
                self.transport.send(PeerId(dst), &self.send_buf)?;
            }
        }
        Ok(())
    }

    fn drain_transport(&mut self, now: SimTime) -> Result<(), SyncError> {
        while let Some((from, data)) = self.transport.try_recv()? {
            let Ok(msg) = Message::decode(&data) else {
                continue; // UDP noise
            };
            self.handle_message(from, msg, now)?;
        }
        Ok(())
    }

    fn handle_message(
        &mut self,
        from: PeerId,
        msg: Message,
        now: SimTime,
    ) -> Result<(), SyncError> {
        match msg {
            Message::Input(m) => {
                self.stats.input_messages_received += 1;
                let outcome = self.sync.on_message(&m, now);
                if outcome.duplicate {
                    self.stats.duplicate_messages_received += 1;
                }
                // Frames the message carried that we already had buffered.
                self.stats.retransmitted_frames_received +=
                    (outcome.carried - outcome.fresh) as u64;
            }
            Message::Ping { nonce } => {
                self.transport
                    .send(from, &Message::Pong { nonce }.encode())?;
            }
            Message::Pong { nonce } => self.rtt.on_pong(nonce, now),
            Message::Hello {
                site,
                rom_hash,
                observer,
            } => {
                if rom_hash != self.rom_hash {
                    return Err(SyncError::RomMismatch {
                        ours: self.rom_hash,
                        theirs: rom_hash,
                    });
                }
                // Register the joiner for (re)transmission. Late joiners get
                // a margin of history to cover pointer divergence.
                let joined_at = self.sync.pointer().saturating_sub(JOIN_MARGIN_FRAMES);
                self.sync.add_peer(site, joined_at);
                self.cfg
                    .telemetry
                    .record(now, EventKind::PeerJoined { site });
                if !observer && !self.joined.contains(&site) {
                    self.joined.push(site);
                }
                let ack = Message::HelloAck {
                    rom_hash: self.rom_hash,
                    start_frame: self.sync.pointer(),
                };
                self.transport.send(from, &ack.encode())?;
            }
            Message::HelloAck {
                rom_hash,
                start_frame,
            } => {
                if rom_hash != self.rom_hash {
                    return Err(SyncError::RomMismatch {
                        ours: self.rom_hash,
                        theirs: rom_hash,
                    });
                }
                if let Phase::Connecting { acks, .. } = &mut self.phase {
                    acks.insert(from.0, start_frame);
                }
            }
            Message::SnapshotRequest => {
                // Serve the current state in chunks (master only, but any
                // player can technically serve). The snapshot frame is the
                // next frame the machine will execute — `machine.frame()`,
                // not the session counter, which lags by one between a
                // frame's execution and its end-of-frame wait.
                let state = self.machine.save_state();
                let frame = self.machine.frame();
                let total = state.len();
                self.cfg.telemetry.record(
                    now,
                    EventKind::SnapshotServed {
                        frame,
                        bytes: total as u64,
                    },
                );
                for (i, chunk) in state.chunks(MAX_CHUNK_BYTES).enumerate() {
                    let m = Message::SnapshotChunk {
                        frame,
                        offset: (i * MAX_CHUNK_BYTES) as u32,
                        total: total as u32,
                        bytes: coplay_net::bytes::Bytes::copy_from_slice(chunk),
                    };
                    self.transport.send(from, &m.encode())?;
                }
            }
            Message::SnapshotChunk {
                frame,
                offset,
                total,
                bytes,
            } => {
                if let Phase::AwaitSnapshot {
                    frame: cur_frame,
                    total: cur_total,
                    buf,
                    received,
                    ..
                } = &mut self.phase
                {
                    let total = total as usize;
                    if *cur_total != total || *cur_frame != frame {
                        // New (or first) snapshot generation: restart assembly.
                        *cur_frame = frame;
                        *cur_total = total;
                        *buf = vec![0; total];
                        *received = vec![false; total.div_ceil(MAX_CHUNK_BYTES)];
                    }
                    let offset = offset as usize;
                    if offset + bytes.len() <= total {
                        buf[offset..offset + bytes.len()].copy_from_slice(&bytes);
                        let idx = offset / MAX_CHUNK_BYTES;
                        if let Some(slot) = received.get_mut(idx) {
                            *slot = true;
                        }
                    }
                }
            }
            Message::Bye => {
                self.phase = Phase::Done(StopReason::PeerLeft);
            }
            Message::TimeStamp { .. } => {} // only the time server consumes these
        }
        Ok(())
    }
}

impl<M: Machine, T: Transport, S> std::fmt::Debug for LockstepSession<M, T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockstepSession")
            .field("site", &self.cfg.my_site)
            .field("frame", &self.frame)
            .field("phase", &self.phase)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_source::{Idle, RandomPresser};
    use coplay_clock::SimDuration;
    use coplay_net::{loopback, LoopbackTransport};
    use coplay_vm::{NullMachine, Player};

    type Sess<S> = LockstepSession<NullMachine, LoopbackTransport, S>;

    fn sessions() -> (Sess<RandomPresser>, Sess<RandomPresser>) {
        let (ta, tb) = loopback(PeerId(0), PeerId(1));
        let a = LockstepSession::new(
            SyncConfig::two_player(0),
            NullMachine::new(),
            ta,
            RandomPresser::new(Player::ONE, 1),
        );
        let b = LockstepSession::new(
            SyncConfig::two_player(1),
            NullMachine::new(),
            tb,
            RandomPresser::new(Player::TWO, 2),
        );
        (a, b)
    }

    /// Runs both sessions in lockstep over perfect loopback until each has
    /// executed `frames` frames; returns the per-frame hashes of each site.
    fn run_pair<S: InputSource>(
        a: &mut Sess<S>,
        b: &mut Sess<S>,
        frames: u64,
    ) -> (Vec<u64>, Vec<u64>) {
        let mut now = SimTime::ZERO;
        let mut ha = Vec::new();
        let mut hb = Vec::new();
        let mut guard = 0;
        while (ha.len() as u64) < frames || (hb.len() as u64) < frames {
            guard += 1;
            assert!(guard < 1_000_000, "no progress after 1M ticks");
            let mut next = now + SimDuration::from_millis(1);
            for (sess, out) in [(&mut *a, &mut ha), (&mut *b, &mut hb)] {
                match sess.tick(now).unwrap() {
                    Step::Wait(t) => next = next.min(t),
                    Step::FrameDone { report, next_wake } => {
                        out.push(report.state_hash.unwrap());
                        next = next.min(next_wake);
                    }
                    Step::Stopped(r) => panic!("unexpected stop: {r}"),
                }
            }
            now = next.max(now + SimDuration::from_micros(100));
        }
        ha.truncate(frames as usize);
        hb.truncate(frames as usize);
        (ha, hb)
    }

    #[test]
    fn two_sites_converge_over_loopback() {
        let (mut a, mut b) = sessions();
        let (ha, hb) = run_pair(&mut a, &mut b, 120);
        assert_eq!(ha, hb, "replicas must produce identical state sequences");
        // The 120th report executes frame index 119.
        assert!(a.frame() >= 119 && b.frame() >= 119);
    }

    #[test]
    fn frames_are_paced_at_cfps() {
        let (mut a, mut b) = sessions();
        let (ha, _) = run_pair(&mut a, &mut b, 60);
        assert_eq!(ha.len(), 60);
        assert!(a.frame() >= 59);
    }

    #[test]
    fn rom_mismatch_is_detected_by_the_master() {
        let (ta, tb) = loopback(PeerId(0), PeerId(1));
        let mut modified = NullMachine::new();
        modified.step_frame(InputWord(1)); // different "image"
        let mut a = LockstepSession::new(SyncConfig::two_player(0), NullMachine::new(), ta, Idle);
        let mut b = LockstepSession::new(SyncConfig::two_player(1), modified, tb, Idle);
        let now = SimTime::ZERO;
        let _ = b.tick(now).unwrap(); // b sends Hello with the wrong hash
        let err = a.tick(now).unwrap_err();
        assert!(matches!(err, SyncError::RomMismatch { .. }));
    }

    #[test]
    fn bye_stops_the_peer() {
        let (mut a, mut b) = sessions();
        let _ = run_pair(&mut a, &mut b, 10);
        a.stop().unwrap();
        let now = SimTime::from_secs(10);
        match b.tick(now).unwrap() {
            Step::Stopped(StopReason::PeerLeft) => {}
            other => panic!("expected PeerLeft, got {other:?}"),
        }
    }

    #[test]
    fn silent_peer_freezes_the_game_by_default() {
        let (a, b) = sessions();
        let mut a = a;
        let mut b_held = b;
        let _ = run_pair(&mut a, &mut b_held, 10);
        // b stops ticking (stays alive so the link stays up): the paper's
        // behaviour is that a freezes in SyncInput, waiting forever.
        let mut waits = 0;
        let mut now = SimTime::from_secs(2);
        for i in 0..50u64 {
            now += SimDuration::from_millis(10 + i);
            match a.tick(now) {
                Ok(Step::Wait(_)) => waits += 1,
                Ok(Step::FrameDone { .. }) => {} // drains in-flight frames
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(waits > 10, "paper behaviour: freeze, waiting forever");
    }

    #[test]
    fn stall_timeout_errors_when_configured() {
        let (ta, tb) = loopback(PeerId(0), PeerId(1));
        let mut cfg0 = SyncConfig::two_player(0);
        cfg0.stall_timeout = Some(SimDuration::from_millis(500));
        let mut a = LockstepSession::new(cfg0, NullMachine::new(), ta, Idle);
        let mut b = LockstepSession::new(SyncConfig::two_player(1), NullMachine::new(), tb, Idle);
        let _ = run_pair(&mut a, &mut b, 10);
        let _b_alive_but_silent = b;
        // Keep ticking: a blocks in SyncInput, then errors out.
        let mut now = SimTime::from_secs(5);
        let err = loop {
            match a.tick(now) {
                Ok(_) => now += SimDuration::from_millis(50),
                Err(e) => break e,
            }
            assert!(now < SimTime::from_secs(30), "never stalled out");
        };
        assert!(matches!(err, SyncError::Stalled(_)));
    }
}
