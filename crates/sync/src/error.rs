//! Error and stop-reason types for lockstep sessions.

use std::error::Error;
use std::fmt;

use coplay_clock::SimDuration;
use coplay_net::TransportError;

/// Why a session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// A peer sent an orderly goodbye.
    PeerLeft,
    /// The local side asked the session to stop.
    LocalQuit,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::PeerLeft => write!(f, "peer left the session"),
            StopReason::LocalQuit => write!(f, "local quit"),
        }
    }
}

/// Errors raised by a lockstep session.
#[derive(Debug)]
pub enum SyncError {
    /// The underlying datagram transport failed.
    Transport(TransportError),
    /// The two sites loaded different game images — lockstep would diverge
    /// instantly, so the session refuses to start (§3.1's same-image
    /// precondition).
    RomMismatch {
        /// Our game image hash.
        ours: u64,
        /// The peer's game image hash.
        theirs: u64,
    },
    /// `SyncInput` was blocked longer than the configured stall timeout
    /// (extension; the paper's system freezes forever instead).
    Stalled(SimDuration),
    /// A latecomer snapshot could not be applied.
    Snapshot(String),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::Transport(e) => write!(f, "transport failure: {e}"),
            SyncError::RomMismatch { ours, theirs } => write!(
                f,
                "game image mismatch: local {ours:#018x}, remote {theirs:#018x}"
            ),
            SyncError::Stalled(d) => write!(f, "peer silent for {d} while blocked in SyncInput"),
            SyncError::Snapshot(msg) => write!(f, "latecomer snapshot failed: {msg}"),
        }
    }
}

impl Error for SyncError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SyncError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for SyncError {
    fn from(e: TransportError) -> Self {
        SyncError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SyncError::RomMismatch { ours: 1, theirs: 2 };
        assert!(e.to_string().contains("mismatch"));
        assert!(SyncError::Stalled(SimDuration::from_millis(1500))
            .to_string()
            .contains("1500"));
        assert_eq!(StopReason::PeerLeft.to_string(), "peer left the session");
    }

    #[test]
    fn transport_errors_chain() {
        let e = SyncError::from(TransportError::Closed);
        assert!(e.source().is_some());
    }
}
