//! The paper's `IBuf`: per-frame partial inputs from every site.
//!
//! Algorithm 2 assumes "a buffer of unlimited size … for simplicity in
//! presentation"; this implementation is a growable ring with an explicit
//! base so delivered-and-acknowledged frames can be pruned, giving bounded
//! memory on long sessions without changing the algorithm's semantics.

use std::collections::VecDeque;

use coplay_vm::{InputWord, PortMap};

const MAX_SITES: usize = 4;

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    partial: [InputWord; MAX_SITES],
    received: u8, // bit k set = site k's partial present
}

/// Frame-indexed storage of partial inputs (`IBuf[f](SET[k])`).
///
/// # Examples
///
/// ```
/// use coplay_sync::InputBuffer;
/// use coplay_vm::{InputWord, PortMap};
///
/// let mut buf = InputBuffer::new(2);
/// buf.set_partial(6, 0, InputWord(0x01));
/// buf.set_partial(6, 1, InputWord(0x0200));
/// assert!(buf.has(6, 0) && buf.has(6, 1));
/// assert_eq!(buf.merged(6, &PortMap::two_player()), InputWord(0x0201));
/// ```
#[derive(Debug, Clone)]
pub struct InputBuffer {
    base: u64,
    slots: VecDeque<Slot>,
    num_sites: u8,
}

impl InputBuffer {
    /// Creates an empty buffer for `num_sites` player sites.
    ///
    /// # Panics
    ///
    /// Panics if `num_sites` is 0 or exceeds 4.
    pub fn new(num_sites: u8) -> InputBuffer {
        assert!(
            (1..=MAX_SITES as u8).contains(&num_sites),
            "1-{MAX_SITES} sites supported"
        );
        InputBuffer {
            base: 0,
            slots: VecDeque::new(),
            num_sites,
        }
    }

    /// Lowest frame still stored.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of frames currently stored.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if no frames are stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn slot_mut(&mut self, frame: u64) -> Option<&mut Slot> {
        if frame < self.base {
            return None; // pruned: a stale duplicate — ignore
        }
        let idx = (frame - self.base) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, Slot::default());
        }
        Some(&mut self.slots[idx])
    }

    fn slot(&self, frame: u64) -> Option<&Slot> {
        if frame < self.base {
            return None;
        }
        self.slots.get((frame - self.base) as usize)
    }

    /// Stores `site`'s partial input for `frame`. Duplicates are ignored
    /// (Algorithm 2 line 13: "only one copy of them will be kept").
    ///
    /// Returns `true` if the partial was newly recorded.
    pub fn set_partial(&mut self, frame: u64, site: u8, word: InputWord) -> bool {
        debug_assert!(site < self.num_sites);
        let Some(slot) = self.slot_mut(frame) else {
            return false;
        };
        let bit = 1u8 << site;
        if slot.received & bit != 0 {
            return false;
        }
        slot.partial[site as usize] = word;
        slot.received |= bit;
        true
    }

    /// `true` once `site`'s partial for `frame` has been received.
    /// Pruned frames count as received (they were delivered already).
    pub fn has(&self, frame: u64, site: u8) -> bool {
        if frame < self.base {
            return true;
        }
        self.slot(frame)
            .is_some_and(|s| s.received & (1 << site) != 0)
    }

    /// `true` once every player site's partial for `frame` is present.
    pub fn complete(&self, frame: u64) -> bool {
        (0..self.num_sites).all(|s| self.has(frame, s))
    }

    /// `site`'s stored partial for `frame` (zero if absent or pruned).
    pub fn partial(&self, frame: u64, site: u8) -> InputWord {
        self.slot(frame)
            .map(|s| s.partial[site as usize])
            .unwrap_or(InputWord::NONE)
    }

    /// The combined input for `frame`: every site's partial masked by its
    /// `SET[k]` and merged; unowned bits (`SET[-1]`) are dropped.
    pub fn merged(&self, frame: u64, map: &PortMap) -> InputWord {
        map.merge((0..self.num_sites).map(|s| (s, self.partial(frame, s))))
    }

    /// Copies `site`'s partials for `frames` (used to build retransmission
    /// payloads). Absent frames yield zero words.
    pub fn partial_range(&self, site: u8, frames: std::ops::RangeInclusive<u64>) -> Vec<InputWord> {
        frames.map(|f| self.partial(f, site)).collect()
    }

    /// Drops storage for all frames strictly below `frame`.
    ///
    /// Call only with frames that are both delivered locally and
    /// acknowledged by every peer; [`InputBuffer::has`] treats pruned
    /// frames as received.
    pub fn prune_below(&mut self, frame: u64) {
        while self.base < frame && !self.slots.is_empty() {
            self.slots.pop_front();
            self.base += 1;
        }
        if self.slots.is_empty() && self.base < frame {
            self.base = frame;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_and_merges_partials() {
        let map = PortMap::two_player();
        let mut buf = InputBuffer::new(2);
        assert!(!buf.complete(0));
        buf.set_partial(0, 0, InputWord(0x0000_0011));
        assert!(!buf.complete(0));
        buf.set_partial(0, 1, InputWord(0x0000_2200));
        assert!(buf.complete(0));
        assert_eq!(buf.merged(0, &map), InputWord(0x0000_2211));
    }

    #[test]
    fn merge_strips_bits_outside_each_sites_set() {
        let map = PortMap::two_player();
        let mut buf = InputBuffer::new(2);
        // Site 0 illegally claims site 1's byte; merge must strip it.
        buf.set_partial(0, 0, InputWord(0x0000_FF11));
        buf.set_partial(0, 1, InputWord(0x0000_2200));
        assert_eq!(buf.merged(0, &map), InputWord(0x0000_2211));
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut buf = InputBuffer::new(2);
        assert!(buf.set_partial(3, 0, InputWord(1)));
        assert!(!buf.set_partial(3, 0, InputWord(2)), "duplicate rejected");
        assert_eq!(buf.partial(3, 0), InputWord(1), "first copy kept");
    }

    #[test]
    fn grows_on_demand_and_reads_zero_for_absent() {
        let mut buf = InputBuffer::new(2);
        buf.set_partial(100, 1, InputWord(5));
        assert_eq!(buf.len(), 101);
        assert_eq!(buf.partial(50, 0), InputWord::NONE);
        assert!(!buf.has(50, 0));
        assert!(buf.has(100, 1));
    }

    #[test]
    fn prune_drops_old_frames_and_treats_them_received() {
        let mut buf = InputBuffer::new(2);
        for f in 0..10 {
            buf.set_partial(f, 0, InputWord(f as u32));
            buf.set_partial(f, 1, InputWord(f as u32));
        }
        buf.prune_below(5);
        assert_eq!(buf.base(), 5);
        assert_eq!(buf.len(), 5);
        assert!(buf.has(2, 0), "pruned counts as received");
        assert_eq!(buf.partial(2, 0), InputWord::NONE);
        assert_eq!(buf.partial(7, 0), InputWord(7));
        // Stale duplicate for a pruned frame is ignored, not stored.
        assert!(!buf.set_partial(2, 0, InputWord(9)));
    }

    #[test]
    fn prune_past_everything_moves_base() {
        let mut buf = InputBuffer::new(2);
        buf.set_partial(0, 0, InputWord(1));
        buf.prune_below(100);
        assert_eq!(buf.base(), 100);
        assert!(buf.is_empty());
        buf.set_partial(100, 0, InputWord(2));
        assert_eq!(buf.partial(100, 0), InputWord(2));
    }

    #[test]
    fn partial_range_builds_payloads() {
        let mut buf = InputBuffer::new(2);
        buf.set_partial(5, 0, InputWord(50));
        buf.set_partial(7, 0, InputWord(70));
        assert_eq!(
            buf.partial_range(0, 5..=7),
            vec![InputWord(50), InputWord::NONE, InputWord(70)]
        );
    }

    #[test]
    fn four_site_completeness() {
        let mut buf = InputBuffer::new(4);
        for s in 0..4 {
            assert!(!buf.complete(0));
            buf.set_partial(0, s, InputWord(1 << (8 * s)));
        }
        assert!(buf.complete(0));
    }

    #[test]
    #[should_panic(expected = "sites supported")]
    fn rejects_zero_sites() {
        let _ = InputBuffer::new(0);
    }
}
