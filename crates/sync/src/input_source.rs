//! Sources of local player input (`GetInput()` in Algorithm 1).

use coplay_vm::{InputWord, Player};

/// Supplies the local input for each frame.
///
/// Implemented by closures (`FnMut(u64) -> InputWord`), by [`Scripted`]
/// traces, and by [`RandomPresser`] (the seeded stand-in for a human player
/// used in the experiments).
pub trait InputSource {
    /// The local input sampled at the beginning of `frame`.
    fn sample(&mut self, frame: u64) -> InputWord;
}

impl<F: FnMut(u64) -> InputWord> InputSource for F {
    fn sample(&mut self, frame: u64) -> InputWord {
        self(frame)
    }
}

/// A source that never presses anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct Idle;

impl InputSource for Idle {
    fn sample(&mut self, _frame: u64) -> InputWord {
        InputWord::NONE
    }
}

/// Replays a recorded input trace; frames beyond the trace are idle.
#[derive(Debug, Clone, Default)]
pub struct Scripted {
    trace: Vec<InputWord>,
}

impl Scripted {
    /// Wraps a recorded trace.
    pub fn new(trace: Vec<InputWord>) -> Scripted {
        Scripted { trace }
    }
}

impl InputSource for Scripted {
    fn sample(&mut self, frame: u64) -> InputWord {
        self.trace
            .get(frame as usize)
            .copied()
            .unwrap_or(InputWord::NONE)
    }
}

/// A deterministic random button-masher: holds a random button combination
/// for a few frames, then picks another — statistically similar to a human
/// hammering a joystick, and exactly reproducible from its seed.
#[derive(Debug, Clone)]
pub struct RandomPresser {
    player: Player,
    state: u64,
    held: u8,
    frames_left: u8,
}

impl RandomPresser {
    /// Creates a masher for `player`'s buttons, seeded with `seed`.
    pub fn new(player: Player, seed: u64) -> RandomPresser {
        // splitmix64 scrambles the seed so nearby seeds give unrelated
        // streams (and the xorshift state is never zero).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        RandomPresser {
            player,
            state: z | 1,
            held: 0,
            frames_left: 0,
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*: deterministic, platform-independent.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl InputSource for RandomPresser {
    fn sample(&mut self, _frame: u64) -> InputWord {
        if self.frames_left == 0 {
            let r = self.next();
            self.held = (r & 0x3F) as u8; // direction + A/B bits only
            self.frames_left = 2 + ((r >> 8) % 10) as u8; // hold 2-11 frames
        }
        self.frames_left -= 1;
        InputWord::for_player(self.player, self.held)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_never_presses() {
        let mut s = Idle;
        assert_eq!(s.sample(0), InputWord::NONE);
        assert_eq!(s.sample(999), InputWord::NONE);
    }

    #[test]
    fn scripted_replays_then_idles() {
        let mut s = Scripted::new(vec![InputWord(1), InputWord(2)]);
        assert_eq!(s.sample(0), InputWord(1));
        assert_eq!(s.sample(1), InputWord(2));
        assert_eq!(s.sample(2), InputWord::NONE);
    }

    #[test]
    fn closures_are_sources() {
        let mut s = |f: u64| InputWord(f as u32);
        assert_eq!(InputSource::sample(&mut s, 7), InputWord(7));
    }

    #[test]
    fn random_presser_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = RandomPresser::new(Player::TWO, seed);
            (0..200).map(|f| s.sample(f)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn random_presser_stays_on_its_player() {
        let mut s = RandomPresser::new(Player::TWO, 7);
        for f in 0..500 {
            let w = s.sample(f);
            assert_eq!(w.0 & !0x0000_FF00, 0, "frame {f}: foreign bits in {w}");
        }
    }

    #[test]
    fn random_presser_actually_presses() {
        let mut s = RandomPresser::new(Player::ONE, 7);
        assert!((0..100).any(|f| s.sample(f) != InputWord::NONE));
    }
}
