//! **coplay-sync** — real-time collaboration transparency for emulated
//! legacy TV/arcade games.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*An Approach to Sharing Legacy TV/Arcade Games for Real-Time
//! Collaboration*, ICDCS 2009): a synchronization layer that turns a
//! single-computer deterministic game VM into a distributed multi-computer
//! game **without modifying or understanding the game** ("game
//! transparency"). It maintains:
//!
//! * **Logical consistency** — every replica executes the identical input
//!   sequence. [`InputSync`] implements the paper's Algorithm 2: local
//!   inputs are delayed by a fixed *local lag* (`BufFrame` ≈ 100 ms),
//!   partial inputs are exchanged over unreliable datagrams with
//!   cumulative acks and retransmission, and a frame executes only when
//!   every site's bits for it have arrived.
//! * **Real-time consistency** — every replica paces frames at the game's
//!   constant FPS and the sites stay aligned. [`FrameTimer`] implements
//!   Algorithms 3 and 4: overrun debt carry-over (`AdjustTimeDelta`) and
//!   master/slave pace smoothing (`SyncAdjustTimeDelta` from the master's
//!   observed frame and `RTT/2`).
//!
//! [`LockstepSession`] assembles both into the paper's Algorithm 1 frame
//! loop, together with the session-control handshake, RTT estimation, and
//! the journal-version extensions (N players, observers, latecomer joins
//! via state snapshots). Everything is *sans-io*: the discrete-event
//! simulator in `coplay-sim` and the wall-clock runner in [`run_realtime`]
//! drive the identical protocol code.
//!
//! # Examples
//!
//! Two sites playing a deterministic machine over an in-process link:
//!
//! ```
//! use coplay_net::{loopback, PeerId};
//! use coplay_sync::{run_realtime, LockstepSession, RandomPresser, SyncConfig};
//! use coplay_vm::{NullMachine, Player};
//!
//! let (ta, tb) = loopback(PeerId(0), PeerId(1));
//! let mut cfg0 = SyncConfig::two_player(0);
//! let mut cfg1 = SyncConfig::two_player(1);
//! cfg0.cfps = 240; // quick doc test
//! cfg1.cfps = 240;
//! let a = LockstepSession::new(cfg0, NullMachine::new(), ta,
//!                              RandomPresser::new(Player::ONE, 1));
//! let b = LockstepSession::new(cfg1, NullMachine::new(), tb,
//!                              RandomPresser::new(Player::TWO, 2));
//!
//! let ha = std::thread::spawn(move || {
//!     let mut h = Vec::new();
//!     run_realtime(a, 30, |r, _| h.push(r.state_hash.unwrap())).map(|_| h)
//! });
//! let hb = std::thread::spawn(move || {
//!     let mut h = Vec::new();
//!     run_realtime(b, 30, |r, _| h.push(r.state_hash.unwrap())).map(|_| h)
//! });
//! assert_eq!(ha.join().unwrap()?, hb.join().unwrap()?);
//! # Ok::<(), coplay_sync::SyncError>(())
//! ```

#![warn(missing_docs)]

mod config;
mod driver;
mod error;
mod input_buffer;
mod input_source;
mod realtime;
mod replay;
mod rtt;
mod session;
mod stats;
mod sync_input;
mod timing;
mod wire;

pub use config::{ConsistencyMode, SyncConfig, Topology};
pub use driver::{FrameReport, LockstepSession, Step, JOIN_MARGIN_FRAMES};
pub use error::{StopReason, SyncError};
pub use input_buffer::InputBuffer;
pub use input_source::{Idle, InputSource, RandomPresser, Scripted};
pub use realtime::{run_realtime, RunOutcome};
pub use replay::{Recording, ReplayError, CHECKPOINT_INTERVAL};
pub use rtt::{RttEstimator, DEFAULT_PING_INTERVAL};
pub use session::SessionDriver;
pub use stats::SessionStats;
pub use sync_input::{InputSync, MasterObservation, RecvOutcome, OBSERVER_SITE, RETAIN_FRAMES};
pub use timing::{FrameEnd, FrameTimer};
pub use wire::{InputMsg, Message, WireError, MAX_CHUNK_BYTES, MAX_INPUTS_PER_MSG};
