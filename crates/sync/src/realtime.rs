//! A wall-clock runner for live play.
//!
//! Drives any [`SessionDriver`] — a [`LockstepSession`](crate::LockstepSession)
//! or the rollback session from `coplay-rollback` — against real time and a
//! real transport (UDP or loopback). This is the deployment shape of the
//! paper's system: the same sans-io session code the simulator benchmarks,
//! attached to the operating system's clock and sockets.

use std::time::Duration;

use coplay_clock::{Clock, SimDuration, SimTime, SystemClock};

use crate::driver::{FrameReport, Step};
use crate::error::{StopReason, SyncError};
use crate::session::SessionDriver;

/// Result of [`run_realtime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The frame budget was reached.
    FrameLimit,
    /// The session stopped (peer left or local quit).
    Stopped(StopReason),
}

/// Runs `session` against the OS clock until `max_frames` frames have
/// executed, invoking `on_frame` after each frame (for rendering).
///
/// The loop sleeps in sub-millisecond slices while waiting so arriving
/// datagrams are noticed promptly — the spirit of Algorithm 2's poll loop.
///
/// After the frame budget is reached the session **lingers** briefly
/// (several send intervals) before returning: the local inputs for the
/// final frames may still be queued behind the outbound send pacing, and a
/// peer that is a few frames behind needs them — and possibly
/// retransmissions — to reach its own budget. Returning immediately would
/// drop the session mid-protocol and leave that peer blocked forever
/// (observable as an endless run of `input_sent` retransmission events in
/// its flight recorder).
///
/// # Errors
///
/// Propagates any [`SyncError`] from the session (transport failure, game
/// image mismatch, stall timeout).
///
/// # Examples
///
/// See `examples/lan_duel.rs`, which runs two sessions over real UDP.
pub fn run_realtime<D, F>(
    mut session: D,
    max_frames: u64,
    mut on_frame: F,
) -> Result<(RunOutcome, D), SyncError>
where
    D: SessionDriver,
    F: FnMut(&FrameReport, &D::Machine),
{
    let clock = SystemClock::new();
    let mut frames = 0u64;
    loop {
        let now = clock.now();
        match session.tick(now)? {
            Step::FrameDone { report, .. } => {
                on_frame(&report, session.machine());
                frames += 1;
                if frames >= max_frames {
                    linger(&mut session, &clock);
                    flush_telemetry(&session);
                    return Ok((RunOutcome::FrameLimit, session));
                }
            }
            Step::Wait(until) => {
                sleep_until(&clock, until);
            }
            Step::Stopped(reason) => {
                // The early-stop path skips the linger but must not skip
                // the flush: a peer-quit or local-quit session still owns
                // buffered telemetry/trace records worth keeping.
                flush_telemetry(&session);
                return Ok((RunOutcome::Stopped(reason), session));
            }
        }
    }
}

/// Persists any buffered telemetry/trace records (no-op unless the
/// session's [`Telemetry`](coplay_telemetry::Telemetry) handle has a trace
/// path set). Every exit of [`run_realtime`] calls this — the frame-limit
/// path after its linger *and* the immediate stop path — so a finished
/// session never drops its trace on the floor.
fn flush_telemetry<D: SessionDriver>(session: &D) {
    if let Err(e) = session.config().telemetry.flush() {
        eprintln!("warning: session trace flush failed: {e}");
    }
}

/// Keeps a finished session's *network* alive for a bounded grace period so
/// its final input frames clear the send pacing and lagging peers can catch
/// up. Uses [`SessionDriver::pump`], never `tick`: executing frames past
/// the budget would leave replicas at different frames with different final
/// state hashes.
fn linger<D: SessionDriver>(session: &mut D, clock: &SystemClock) {
    let grace = (session.config().send_interval * 8).max(SimDuration::from_millis(150));
    let until = clock.now() + grace;
    loop {
        let now = clock.now();
        if now >= until || session.pump(now).is_err() {
            return;
        }
        sleep_until(clock, (now + SimDuration::from_millis(2)).min(until));
    }
}

/// Sleeps toward `until` in short slices (capped at 1 ms) so socket traffic
/// is polled frequently.
fn sleep_until(clock: &SystemClock, until: SimTime) {
    let now = clock.now();
    if until <= now {
        return;
    }
    let remaining = (until - now).min(SimDuration::from_millis(1));
    std::thread::sleep(Duration::from_micros(remaining.as_micros().max(50)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SyncConfig;
    use crate::driver::LockstepSession;
    use crate::input_source::RandomPresser;
    use coplay_net::{loopback, PeerId};
    use coplay_vm::{NullMachine, Player};

    #[test]
    fn realtime_pair_converges_over_threads() {
        let (ta, tb) = loopback(PeerId(0), PeerId(1));
        let mut cfg0 = SyncConfig::two_player(0);
        let mut cfg1 = SyncConfig::two_player(1);
        // Speed the test up: 240fps equivalent pacing.
        cfg0.cfps = 240;
        cfg1.cfps = 240;
        let a = LockstepSession::new(
            cfg0,
            NullMachine::new(),
            ta,
            RandomPresser::new(Player::ONE, 11),
        );
        let b = LockstepSession::new(
            cfg1,
            NullMachine::new(),
            tb,
            RandomPresser::new(Player::TWO, 22),
        );

        let ja = std::thread::spawn(move || {
            let mut hashes = Vec::new();
            let r = run_realtime(a, 60, |rep, _| hashes.push(rep.state_hash.unwrap()));
            (r.map(|(o, _)| o), hashes)
        });
        let jb = std::thread::spawn(move || {
            let mut hashes = Vec::new();
            let r = run_realtime(b, 60, |rep, _| hashes.push(rep.state_hash.unwrap()));
            (r.map(|(o, _)| o), hashes)
        });
        let (ra, ha) = ja.join().unwrap();
        let (rb, hb) = jb.join().unwrap();
        assert_eq!(ra.unwrap(), RunOutcome::FrameLimit);
        assert_eq!(rb.unwrap(), RunOutcome::FrameLimit);
        assert_eq!(ha, hb, "real-time replicas diverged");
    }
}
