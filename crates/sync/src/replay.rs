//! Match recording and deterministic replay.
//!
//! A lockstep session is completely described by the game image and the
//! merged input sequence — the same determinism the paper's algorithm
//! relies on makes free "demo files". [`Recording`] captures a session's
//! merged inputs (plus periodic state-hash checkpoints for integrity) and
//! replays them into any fresh replica of the same machine.

use std::error::Error;
use std::fmt;

use coplay_vm::{InputWord, Machine};

use crate::driver::FrameReport;

const MAGIC: &[u8; 6] = b"CPREC1";

/// Interval (in frames) between state-hash checkpoints in a recording.
pub const CHECKPOINT_INTERVAL: u64 = 60;

/// A recorded match: the machine identity, every frame's merged input, and
/// periodic state-hash checkpoints.
///
/// # Examples
///
/// ```
/// use coplay_sync::Recording;
/// use coplay_vm::{InputWord, Machine, NullMachine};
///
/// // Record a local run…
/// let mut game = NullMachine::new();
/// let mut rec = Recording::new(game.state_hash());
/// for f in 0..100u32 {
///     let input = InputWord(f % 5);
///     game.step_frame(input);
///     rec.push(input, game.state_hash());
/// }
/// // …and replay it into a fresh replica.
/// let mut replica = NullMachine::new();
/// rec.replay(&mut replica)?;
/// assert_eq!(replica.state_hash(), game.state_hash());
/// # Ok::<(), coplay_sync::ReplayError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recording {
    rom_hash: u64,
    inputs: Vec<InputWord>,
    checkpoints: Vec<(u64, u64)>, // (frame, state hash after that frame)
}

/// Errors loading or replaying a [`Recording`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The bytes are not a coplay recording.
    BadMagic,
    /// The recording data ended early.
    Truncated,
    /// The machine is not the one that was recorded (initial state hash
    /// differs).
    WrongMachine {
        /// Hash the recording expects.
        expected: u64,
        /// Hash of the supplied machine.
        actual: u64,
    },
    /// A checkpoint mismatched during replay — the recording is corrupt or
    /// the machine is non-deterministic.
    CheckpointMismatch {
        /// Frame at which the divergence surfaced.
        frame: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::BadMagic => write!(f, "not a coplay recording"),
            ReplayError::Truncated => write!(f, "recording truncated"),
            ReplayError::WrongMachine { expected, actual } => write!(
                f,
                "recording is for a different machine (expected {expected:#x}, got {actual:#x})"
            ),
            ReplayError::CheckpointMismatch { frame } => {
                write!(f, "replay diverged from checkpoint at frame {frame}")
            }
        }
    }
}

impl Error for ReplayError {}

impl Recording {
    /// Starts a recording of a machine whose *initial* state hash is
    /// `rom_hash` (the same identity the session handshake compares).
    pub fn new(rom_hash: u64) -> Recording {
        Recording {
            rom_hash,
            inputs: Vec::new(),
            checkpoints: Vec::new(),
        }
    }

    /// Appends one frame's merged input, checkpointing every
    /// [`CHECKPOINT_INTERVAL`] frames.
    pub fn push(&mut self, input: InputWord, state_hash: u64) {
        self.inputs.push(input);
        let frame = self.inputs.len() as u64 - 1;
        if frame.is_multiple_of(CHECKPOINT_INTERVAL) {
            self.checkpoints.push((frame, state_hash));
        }
    }

    /// Appends straight from a session's [`FrameReport`] (a convenient
    /// `on_frame` hook for [`run_realtime`](crate::run_realtime)).
    pub fn push_report(&mut self, report: &FrameReport) {
        self.push(report.input, report.state_hash.unwrap_or(0));
    }

    /// Frames recorded.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The recorded machine identity.
    pub fn rom_hash(&self) -> u64 {
        self.rom_hash
    }

    /// Replays every recorded frame into `machine`, verifying checkpoints.
    ///
    /// # Errors
    ///
    /// [`ReplayError::WrongMachine`] if `machine` is not a fresh replica of
    /// the recorded game; [`ReplayError::CheckpointMismatch`] if the replay
    /// diverges (corrupt file or determinism violation).
    pub fn replay<M: Machine>(&self, machine: &mut M) -> Result<(), ReplayError> {
        let actual = machine.state_hash();
        if actual != self.rom_hash {
            return Err(ReplayError::WrongMachine {
                expected: self.rom_hash,
                actual,
            });
        }
        let mut next_cp = self.checkpoints.iter().peekable();
        for (frame, &input) in self.inputs.iter().enumerate() {
            machine.step_frame(input);
            if let Some(&&(cp_frame, cp_hash)) = next_cp.peek() {
                if cp_frame == frame as u64 {
                    next_cp.next();
                    if cp_hash != 0 && machine.state_hash() != cp_hash {
                        return Err(ReplayError::CheckpointMismatch {
                            frame: frame as u64,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes the recording.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            MAGIC.len() + 8 + 8 + self.inputs.len() * 4 + 8 + self.checkpoints.len() * 16,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.rom_hash.to_le_bytes());
        out.extend_from_slice(&(self.inputs.len() as u64).to_le_bytes());
        for i in &self.inputs {
            out.extend_from_slice(&i.0.to_le_bytes());
        }
        out.extend_from_slice(&(self.checkpoints.len() as u64).to_le_bytes());
        for (f, h) in &self.checkpoints {
            out.extend_from_slice(&f.to_le_bytes());
            out.extend_from_slice(&h.to_le_bytes());
        }
        out
    }

    /// Parses a recording serialized with [`Recording::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`ReplayError::BadMagic`] or [`ReplayError::Truncated`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Recording, ReplayError> {
        let mut p = 0usize;
        let take = |p: &mut usize, n: usize| -> Result<&[u8], ReplayError> {
            if *p + n > bytes.len() {
                return Err(ReplayError::Truncated);
            }
            let s = &bytes[*p..*p + n];
            *p += n;
            Ok(s)
        };
        if take(&mut p, MAGIC.len())? != MAGIC {
            return Err(ReplayError::BadMagic);
        }
        let rom_hash = u64::from_le_bytes(take(&mut p, 8)?.try_into().expect("len 8"));
        let n = u64::from_le_bytes(take(&mut p, 8)?.try_into().expect("len 8")) as usize;
        if n > bytes.len() {
            return Err(ReplayError::Truncated); // length sanity before alloc
        }
        let mut inputs = Vec::with_capacity(n);
        for _ in 0..n {
            inputs.push(InputWord(u32::from_le_bytes(
                take(&mut p, 4)?.try_into().expect("len 4"),
            )));
        }
        let nc = u64::from_le_bytes(take(&mut p, 8)?.try_into().expect("len 8")) as usize;
        if nc > bytes.len() {
            return Err(ReplayError::Truncated);
        }
        let mut checkpoints = Vec::with_capacity(nc);
        for _ in 0..nc {
            let f = u64::from_le_bytes(take(&mut p, 8)?.try_into().expect("len 8"));
            let h = u64::from_le_bytes(take(&mut p, 8)?.try_into().expect("len 8"));
            checkpoints.push((f, h));
        }
        Ok(Recording {
            rom_hash,
            inputs,
            checkpoints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_vm::NullMachine;

    fn record_run(frames: u32) -> (Recording, u64) {
        let mut game = NullMachine::new();
        let mut rec = Recording::new(game.state_hash());
        for f in 0..frames {
            let input = InputWord(f.wrapping_mul(7) & 0xFF);
            game.step_frame(input);
            rec.push(input, game.state_hash());
        }
        (rec, game.state_hash())
    }

    #[test]
    fn replay_reproduces_final_state() {
        let (rec, final_hash) = record_run(200);
        let mut replica = NullMachine::new();
        rec.replay(&mut replica).unwrap();
        assert_eq!(replica.state_hash(), final_hash);
    }

    #[test]
    fn serialization_roundtrip() {
        let (rec, _) = record_run(150);
        let bytes = rec.to_bytes();
        assert_eq!(Recording::from_bytes(&bytes).unwrap(), rec);
    }

    #[test]
    fn wrong_machine_rejected() {
        let (rec, _) = record_run(10);
        let mut not_fresh = NullMachine::new();
        not_fresh.step_frame(InputWord(1));
        assert!(matches!(
            rec.replay(&mut not_fresh),
            Err(ReplayError::WrongMachine { .. })
        ));
    }

    #[test]
    fn corrupt_checkpoint_detected() {
        let (rec, _) = record_run(120);
        let mut bytes = rec.to_bytes();
        // Flip a bit in an input word so the replay diverges.
        let input_region = MAGIC.len() + 16;
        bytes[input_region + 10] ^= 0x01;
        let corrupt = Recording::from_bytes(&bytes).unwrap();
        let mut replica = NullMachine::new();
        assert!(matches!(
            corrupt.replay(&mut replica),
            Err(ReplayError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn garbage_bytes_rejected() {
        assert_eq!(Recording::from_bytes(b"nope"), Err(ReplayError::Truncated));
        assert_eq!(
            Recording::from_bytes(b"XXXXXX\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0"),
            Err(ReplayError::BadMagic)
        );
        // Absurd length field must not cause a huge allocation or panic.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(Recording::from_bytes(&bytes), Err(ReplayError::Truncated));
    }

    #[test]
    fn empty_recording_replays_trivially() {
        let game = NullMachine::new();
        let rec = Recording::new(game.state_hash());
        assert!(rec.is_empty());
        let mut replica = NullMachine::new();
        rec.replay(&mut replica).unwrap();
        assert_eq!(replica.state_hash(), game.state_hash());
    }

    #[test]
    fn errors_display() {
        assert!(ReplayError::CheckpointMismatch { frame: 60 }
            .to_string()
            .contains("60"));
        assert!(ReplayError::WrongMachine {
            expected: 1,
            actual: 2
        }
        .to_string()
        .contains("different machine"));
    }
}
