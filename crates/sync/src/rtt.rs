//! Round-trip time estimation.
//!
//! Algorithm 4 needs `RTT/2` to turn `MasterRcvTime` into an estimate of
//! when the master actually sent its message. The estimator runs a periodic
//! ping/pong exchange and keeps a TCP-style exponentially weighted moving
//! average (gain 1/8).

use std::collections::BTreeMap;

use coplay_clock::{SimDuration, SimTime};
use coplay_telemetry::{EventKind, Telemetry};

/// Default interval between probes.
pub const DEFAULT_PING_INTERVAL: SimDuration = SimDuration::from_millis(500);

/// Cap on outstanding (unanswered) probes kept for matching.
const MAX_OUTSTANDING: usize = 32;

/// A ping/pong RTT estimator with an EWMA filter.
///
/// # Examples
///
/// ```
/// use coplay_clock::{SimDuration, SimTime};
/// use coplay_sync::RttEstimator;
///
/// let mut est = RttEstimator::new(SimDuration::from_millis(500));
/// let t0 = SimTime::from_secs(1);
/// let nonce = est.maybe_ping(t0).expect("first probe fires immediately");
/// est.on_pong(nonce, t0 + SimDuration::from_millis(80));
/// assert_eq!(est.rtt(), SimDuration::from_millis(80));
/// ```
#[derive(Debug, Clone)]
pub struct RttEstimator {
    interval: SimDuration,
    srtt: Option<SimDuration>,
    outstanding: BTreeMap<u32, SimTime>,
    next_nonce: u32,
    next_ping: SimTime,
    /// Observability sink; records one event per matched (raw) RTT sample.
    telemetry: Telemetry,
}

impl RttEstimator {
    /// Creates an estimator probing every `interval`.
    pub fn new(interval: SimDuration) -> RttEstimator {
        RttEstimator {
            interval,
            srtt: None,
            outstanding: BTreeMap::new(),
            next_nonce: 1,
            next_ping: SimTime::ZERO,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches an observability sink: every matched pong records its *raw*
    /// sample (not the smoothed estimate) as a [`EventKind::RttSample`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> RttEstimator {
        self.telemetry = telemetry;
        self
    }

    /// The smoothed round-trip estimate; zero until the first pong.
    pub fn rtt(&self) -> SimDuration {
        self.srtt.unwrap_or(SimDuration::ZERO)
    }

    /// `true` once at least one pong has been matched.
    pub fn has_sample(&self) -> bool {
        self.srtt.is_some()
    }

    /// If a probe is due, registers it and returns its nonce for the caller
    /// to put in a `Ping` message.
    pub fn maybe_ping(&mut self, now: SimTime) -> Option<u32> {
        if now < self.next_ping {
            return None;
        }
        if self.outstanding.len() >= MAX_OUTSTANDING {
            // Forget the backlog (peer unreachable); keep probing afresh.
            self.outstanding.clear();
        }
        let nonce = self.next_nonce;
        self.next_nonce = self.next_nonce.wrapping_add(1).max(1);
        self.outstanding.insert(nonce, now);
        self.next_ping = now + self.interval;
        Some(nonce)
    }

    /// Matches a pong and folds the sample into the EWMA. Unknown nonces
    /// (forged or duplicated pongs) are ignored.
    pub fn on_pong(&mut self, nonce: u32, now: SimTime) {
        let Some(sent) = self.outstanding.remove(&nonce) else {
            return;
        };
        let sample = now.saturating_since(sent);
        self.telemetry
            .record(now, EventKind::RttSample { rtt: sample });
        self.srtt = Some(match self.srtt {
            None => sample,
            // srtt += (sample - srtt) / 8, in integer microseconds.
            Some(srtt) => {
                let s = srtt.as_micros() as i64;
                let m = sample.as_micros() as i64;
                SimDuration::from_micros((s + (m - s) / 8).max(0) as u64)
            }
        });
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new(DEFAULT_PING_INTERVAL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn first_sample_sets_estimate() {
        let mut e = RttEstimator::default();
        assert!(!e.has_sample());
        assert_eq!(e.rtt(), SimDuration::ZERO);
        let n = e.maybe_ping(SimTime::ZERO).unwrap();
        e.on_pong(n, SimTime::from_millis(140));
        assert_eq!(e.rtt(), ms(140));
    }

    #[test]
    fn probes_are_paced() {
        let mut e = RttEstimator::new(ms(500));
        assert!(e.maybe_ping(SimTime::ZERO).is_some());
        assert!(e.maybe_ping(SimTime::from_millis(499)).is_none());
        assert!(e.maybe_ping(SimTime::from_millis(500)).is_some());
    }

    #[test]
    fn ewma_converges_toward_new_conditions() {
        let mut e = RttEstimator::new(ms(1));
        let mut t = SimTime::ZERO;
        // Stable 100ms link.
        for _ in 0..20 {
            let n = e.maybe_ping(t).unwrap();
            e.on_pong(n, t + ms(100));
            t += ms(1000);
        }
        assert_eq!(e.rtt(), ms(100));
        // Link degrades to 200ms; estimate moves toward it.
        for _ in 0..40 {
            let n = e.maybe_ping(t).unwrap();
            e.on_pong(n, t + ms(200));
            t += ms(1000);
        }
        let rtt = e.rtt();
        assert!(rtt > ms(190) && rtt <= ms(200), "rtt={rtt}");
    }

    #[test]
    fn unknown_and_duplicate_pongs_ignored() {
        let mut e = RttEstimator::default();
        e.on_pong(999, SimTime::from_secs(1));
        assert!(!e.has_sample());
        let n = e.maybe_ping(SimTime::ZERO).unwrap();
        e.on_pong(n, SimTime::from_millis(50));
        e.on_pong(n, SimTime::from_millis(900)); // duplicate: ignored
        assert_eq!(e.rtt(), ms(50));
    }

    #[test]
    fn outstanding_backlog_is_bounded() {
        let mut e = RttEstimator::new(SimDuration::from_micros(1));
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            let _ = e.maybe_ping(t);
            t += ms(1);
        }
        assert!(e.outstanding.len() <= MAX_OUTSTANDING);
    }
}
