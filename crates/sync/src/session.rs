//! The driver-facing session abstraction.
//!
//! Khan & Chabridon's reusable-synchronization argument (see PAPERS.md):
//! the consistency policy should be a pluggable module, not baked into the
//! frame loop. [`SessionDriver`] is that seam — `LockstepSession` here and
//! `RollbackSession` in `coplay-rollback` both implement it, so the
//! wall-clock runner ([`run_realtime`](crate::run_realtime)) and any other
//! harness drive either policy through one interface.

use coplay_clock::SimTime;
use coplay_vm::Machine;

use crate::config::SyncConfig;
use crate::driver::{LockstepSession, Step};
use crate::error::SyncError;
use crate::input_source::InputSource;
use crate::stats::SessionStats;
use coplay_net::Transport;

/// One site of a distributed game session, whatever its consistency mode.
///
/// Implementations are sans-io in time: [`SessionDriver::tick`] takes `now`
/// explicitly and returns a [`Step`], so the discrete-event simulator and
/// the wall-clock runner drive identical protocol code.
pub trait SessionDriver {
    /// The machine replica type this session advances.
    type Machine: Machine;

    /// Drives the session one step. Call whenever the previous
    /// [`Step::Wait`] deadline passes or a datagram may have arrived.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError`] on transport failure, handshake mismatch, or a
    /// stall exceeding the configured timeout.
    fn tick(&mut self, now: SimTime) -> Result<Step, SyncError>;

    /// Services the network without advancing the game (used while
    /// lingering after a frame budget).
    ///
    /// # Errors
    ///
    /// Propagates transport failures, like [`SessionDriver::tick`].
    fn pump(&mut self, now: SimTime) -> Result<(), SyncError>;

    /// The local machine replica.
    fn machine(&self) -> &Self::Machine;

    /// The site configuration.
    fn config(&self) -> &SyncConfig;

    /// In-band session counters.
    fn stats(&self) -> SessionStats;

    /// The site's current frame.
    fn frame(&self) -> u64;
}

impl<M: Machine, T: Transport, S: InputSource> SessionDriver for LockstepSession<M, T, S> {
    type Machine = M;

    fn tick(&mut self, now: SimTime) -> Result<Step, SyncError> {
        LockstepSession::tick(self, now)
    }

    fn pump(&mut self, now: SimTime) -> Result<(), SyncError> {
        LockstepSession::pump(self, now)
    }

    fn machine(&self) -> &M {
        LockstepSession::machine(self)
    }

    fn config(&self) -> &SyncConfig {
        LockstepSession::config(self)
    }

    fn stats(&self) -> SessionStats {
        LockstepSession::stats(self)
    }

    fn frame(&self) -> u64 {
        LockstepSession::frame(self)
    }
}
