//! Session observability: the counters an operator of a netplay service
//! would watch.
//!
//! The paper reports its metrics from an external time server; a production
//! deployment also needs *in-band* numbers. [`SessionStats`] accumulates
//! them inside the driver with no protocol impact.

use coplay_clock::{SimDuration, SimTime};

/// Running counters for one site of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Frames executed.
    pub frames: u64,
    /// Input messages sent (including retransmissions).
    pub input_messages_sent: u64,
    /// Input messages received (including duplicates).
    pub input_messages_received: u64,
    /// Received input messages that carried payload but not a single new
    /// frame — pure duplicates from retransmission overlap or network
    /// duplication.
    pub duplicate_messages_received: u64,
    /// Received payload frames this site had already buffered (the inbound
    /// half of the retransmission picture; `input_frames_sent` only shows
    /// the outbound half).
    pub retransmitted_frames_received: u64,
    /// Input-frame payload words sent (≥ frames when retransmitting).
    pub input_frames_sent: u64,
    /// Frames on which `SyncInput` blocked at least one poll interval.
    pub stalled_frames: u64,
    /// Total time spent blocked in `SyncInput`.
    pub stall_total: SimDuration,
    /// Longest single `SyncInput` blockage.
    pub stall_max: SimDuration,
    /// Frames that finished late (Algorithm 3 took the `Behind` branch).
    pub late_frames: u64,
    /// Frames on which Algorithm 4 applied a non-zero pace adjustment
    /// (outside the dead zone). Always zero on the master.
    pub pace_adjustments: u64,
    /// Rollbacks executed (checkpoint restore + resimulation). Always zero
    /// in lockstep mode, which never speculates.
    pub rollbacks: u64,
    /// Frames re-executed during rollbacks (each frame counted once per
    /// resimulation it participated in).
    pub resimulated_frames: u64,
    /// Deepest single rollback, in frames (pointer minus the restored
    /// mispredicted frame).
    pub max_rollback_depth: u64,
}

impl SessionStats {
    /// Retransmission overhead: payload frames sent beyond one per executed
    /// frame, as a fraction of executed frames. Zero on a perfect link.
    pub fn retransmission_ratio(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        let extra = self.input_frames_sent.saturating_sub(self.frames);
        extra as f64 / self.frames as f64
    }

    /// Fraction of frames that stalled waiting for remote input.
    pub fn stall_ratio(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        self.stalled_frames as f64 / self.frames as f64
    }

    /// Folds one executed rollback into the counters. Public so drivers in
    /// other crates (the rollback session) can share this stats type.
    pub fn note_rollback(&mut self, depth: u64, resimulated: u64) {
        self.rollbacks += 1;
        self.resimulated_frames += resimulated;
        self.max_rollback_depth = self.max_rollback_depth.max(depth);
    }

    /// Folds one resolved input-wait blockage into the counters
    /// (zero-length blockages are not stalls).
    pub fn note_stall(&mut self, began: SimTime, ended: SimTime) {
        let d = ended.saturating_since(began);
        if d > SimDuration::ZERO {
            self.stalled_frames += 1;
            self.stall_total += d;
            self.stall_max = self.stall_max.max(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_on_empty_stats_are_zero() {
        let s = SessionStats::default();
        assert_eq!(s.retransmission_ratio(), 0.0);
        assert_eq!(s.stall_ratio(), 0.0);
    }

    #[test]
    fn retransmission_ratio_counts_extra_payload() {
        let s = SessionStats {
            frames: 100,
            input_frames_sent: 150,
            ..SessionStats::default()
        };
        assert!((s.retransmission_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn note_stall_tracks_total_and_max() {
        let mut s = SessionStats::default();
        s.note_stall(SimTime::from_millis(10), SimTime::from_millis(30));
        s.note_stall(SimTime::from_millis(50), SimTime::from_millis(55));
        assert_eq!(s.stalled_frames, 2);
        assert_eq!(s.stall_total, SimDuration::from_millis(25));
        assert_eq!(s.stall_max, SimDuration::from_millis(20));
        // Zero-length stalls are not stalls.
        s.note_stall(SimTime::from_millis(60), SimTime::from_millis(60));
        assert_eq!(s.stalled_frames, 2);
    }

    #[test]
    fn note_rollback_tracks_counts_and_depth() {
        let mut s = SessionStats::default();
        s.note_rollback(3, 7);
        s.note_rollback(1, 2);
        assert_eq!(s.rollbacks, 2);
        assert_eq!(s.resimulated_frames, 9);
        assert_eq!(s.max_rollback_depth, 3);
    }

    #[test]
    fn stall_ratio() {
        let mut s = SessionStats {
            frames: 10,
            ..SessionStats::default()
        };
        s.note_stall(SimTime::ZERO, SimTime::from_millis(5));
        assert!((s.stall_ratio() - 0.1).abs() < 1e-12);
    }
}
