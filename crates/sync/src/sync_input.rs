//! Algorithm 2 of the paper: `SyncInput`, the logical-consistency engine.
//!
//! The engine is *sans-io*: it never touches a socket or a clock. The
//! driver feeds it timestamps, local inputs, and received messages; it hands
//! back messages to transmit and, once the exit condition holds, the merged
//! input for the next frame. The same code therefore runs under the
//! deterministic simulator and the real-time UDP runner.
//!
//! Correspondence to the paper's pseudocode:
//!
//! * lines 1–5 (buffer the local partial input with `BufFrame` lag) →
//!   [`InputSync::begin_frame`],
//! * lines 7–11 (send `sd` if new info exists) → [`InputSync::outgoing`],
//! * lines 12–20 (receive `rc`, update `IBuf`, `LastRcvFrame`,
//!   `LastAckFrame`) → [`InputSync::on_message`],
//! * line 21's exit condition → [`InputSync::ready`],
//! * lines 22–23 (deliver `IBuf[IBufPointer++]`) → [`InputSync::take`].
//!
//! Extensions beyond the two-site ICDCS algorithm (flagged in DESIGN.md):
//! full-mesh N-site sessions and input-less observer sites, both from the
//! journal version's feature list.

use std::collections::BTreeMap;

use coplay_clock::{SimDuration, SimTime};
use coplay_telemetry::{EventKind, SpanStage};
use coplay_vm::InputWord;

use crate::config::SyncConfig;
use crate::input_buffer::InputBuffer;
use crate::wire::InputMsg;

/// Site number used by observers (they own no input bits and nobody waits
/// for them).
pub const OBSERVER_SITE: u8 = 0xFE;

/// Frames of input history every site retains past full acknowledgement,
/// so latecomers can be served without unbounded memory (extension; the
/// ICDCS algorithm assumes an unlimited buffer).
pub const RETAIN_FRAMES: u64 = 128;

/// What the slave knows about the master's progress, for Algorithm 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterObservation {
    /// The master's `LastRcvFrame[0]` as seen by this site (this counts the
    /// local lag: the master buffered its input for this lagged frame).
    pub master_lagged_frame: u64,
    /// When the message that last advanced it arrived (`MasterRcvTime`).
    pub rcv_time: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct PeerState {
    /// `LastRcvFrame[p]`: partial inputs from `p` received contiguously up
    /// to this frame. Only meaningful for player peers.
    last_rcv: u64,
    /// `LastAckFrame[p]`: the last of *our* partials `p` has acknowledged.
    last_ack: u64,
    /// Highest local frame ever transmitted to `p` (telemetry only: frames
    /// at or below this in a later message are retransmissions).
    last_sent: u64,
    /// We owe `p` a fresh ack (we received something since our last send).
    need_ack: bool,
}

/// What [`InputSync::on_message`] learned from one incoming message
/// (telemetry/statistics; callers that only care about protocol state can
/// ignore it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecvOutcome {
    /// Payload frames the message carried.
    pub carried: u32,
    /// How many of those frames were new to this site.
    pub fresh: u32,
    /// `true` if the message carried payload but not a single new frame —
    /// a pure duplicate (retransmission overlap or network duplication).
    pub duplicate: bool,
}

/// The logical-consistency engine (Algorithm 2), generalized to N sites
/// plus observers.
///
/// # Examples
///
/// Two engines wired back-to-back converge on every frame's input:
///
/// ```
/// use coplay_clock::SimTime;
/// use coplay_sync::{InputSync, SyncConfig};
/// use coplay_vm::InputWord;
///
/// let mut a = InputSync::new(SyncConfig::two_player(0));
/// let mut b = InputSync::new(SyncConfig::two_player(1));
///
/// for frame in 0..10 {
///     let now = SimTime::from_millis(frame * 25); // one frame per call
///     a.begin_frame(frame, InputWord(0x01), now);
///     b.begin_frame(frame, InputWord(0x0200), now);
///     for (_, m) in a.outgoing(now) { b.on_message(&m, now); }
///     for (_, m) in b.outgoing(now) { a.on_message(&m, now); }
///     assert!(a.ready() && b.ready());
///     assert_eq!(a.take(), b.take());
/// }
/// ```
#[derive(Debug)]
pub struct InputSync {
    cfg: SyncConfig,
    buf: InputBuffer,
    /// The paper's `IBufPointer`.
    pointer: u64,
    /// `LastRcvFrame[MySiteNo]`: highest local frame buffered.
    my_last_buffered: u64,
    peers: BTreeMap<u8, PeerState>,
    next_send: SimTime,
    master_rcv_time: Option<SimTime>,
    /// Time at which the current `SyncInput` blockage began.
    stalled_since: Option<SimTime>,
}

impl InputSync {
    /// Creates the engine for one site of a session starting at frame 0.
    pub fn new(cfg: SyncConfig) -> InputSync {
        InputSync::new_at(cfg, 0)
    }

    /// Creates the engine positioned at `start_frame` (latecomer join: the
    /// machine state was obtained from a snapshot taken at that frame).
    pub fn new_at(cfg: SyncConfig, start_frame: u64) -> InputSync {
        let init = if start_frame == 0 {
            cfg.buf_frames.saturating_sub(1)
        } else {
            start_frame - 1
        };
        let peers = cfg
            .peers()
            .map(|p| {
                (
                    p,
                    PeerState {
                        last_rcv: init,
                        last_ack: init,
                        last_sent: init,
                        need_ack: false,
                    },
                )
            })
            .collect();
        let mut buf = InputBuffer::new(cfg.num_sites);
        buf.prune_below(start_frame);
        InputSync {
            buf,
            pointer: start_frame,
            my_last_buffered: init,
            peers,
            next_send: SimTime::ZERO,
            master_rcv_time: None,
            stalled_since: None,
            cfg,
        }
    }

    /// Registers an additional destination (an observer, or a late-joining
    /// player already counted in `num_sites`) whose retransmission state
    /// starts at `joined_frame`.
    pub fn add_peer(&mut self, site: u8, joined_frame: u64) {
        let init = joined_frame.max(1) - 1;
        self.peers.entry(site).or_insert(PeerState {
            last_rcv: init,
            last_ack: init,
            last_sent: init,
            need_ack: false,
        });
    }

    /// Removes a destination (an observer that left).
    pub fn remove_peer(&mut self, site: u8) {
        self.peers.remove(&site);
    }

    /// `true` if this site contributes input bits.
    pub fn is_player(&self) -> bool {
        self.cfg.my_site < self.cfg.num_sites
    }

    /// The paper's `IBufPointer`: the next frame to be delivered.
    pub fn pointer(&self) -> u64 {
        self.pointer
    }

    /// `LastRcvFrame[site]` for a player peer (test/metrics hook).
    pub fn last_rcv(&self, site: u8) -> Option<u64> {
        self.peers.get(&site).map(|p| p.last_rcv)
    }

    /// `LastAckFrame[site]` (test/metrics hook).
    pub fn last_ack(&self, site: u8) -> Option<u64> {
        self.peers.get(&site).map(|p| p.last_ack)
    }

    /// Lines 1–5: buffer the local partial input for `frame + BufFrame`.
    ///
    /// Call exactly once per frame, before polling. `now` is used only for
    /// stall accounting.
    pub fn begin_frame(&mut self, frame: u64, local: InputWord, now: SimTime) {
        debug_assert_eq!(frame, self.pointer, "one begin_frame per frame");
        if self.is_player() {
            let lag_f = frame + self.cfg.buf_frames;
            if self.my_last_buffered < lag_f {
                let partial = self.cfg.port_map.partial_input(self.cfg.my_site, local);
                self.buf.set_partial(lag_f, self.cfg.my_site, partial);
                self.my_last_buffered = lag_f;
                self.cfg
                    .telemetry
                    .span(now, SpanStage::Sampled, lag_f, self.cfg.my_site);
            }
        }
        self.stalled_since = Some(now);
    }

    /// Line 21's exit condition: every player peer's partial input for the
    /// current frame has arrived.
    pub fn ready(&self) -> bool {
        self.peers
            .iter()
            .filter(|(&site, _)| site < self.cfg.num_sites)
            .all(|(_, p)| p.last_rcv >= self.pointer)
    }

    /// Lines 22–23: deliver `IBuf[IBufPointer]` and advance the pointer.
    ///
    /// # Panics
    ///
    /// Panics if called while [`InputSync::ready`] is false — delivering an
    /// incomplete frame would violate logical consistency.
    pub fn take(&mut self) -> InputWord {
        assert!(self.ready(), "SyncInput exit condition not met");
        let word = self.buf.merged(self.pointer, &self.cfg.port_map);
        self.advance();
        word
    }

    /// Advances the pointer past the current frame *without* requiring the
    /// exit condition — the speculative half of `take`, used by the
    /// rollback driver, which merges predicted inputs itself. Prunes the
    /// buffer exactly as `take` does (the prune floor already accounts for
    /// unacked and unreceived frames, so speculation never drops state a
    /// later rollback needs).
    pub fn advance(&mut self) {
        self.pointer += 1;
        self.stalled_since = None;
        // Frames both delivered and universally acked can be dropped —
        // except for a bounded retention window kept for latecomer joins.
        let min_needed = self
            .peers
            .values()
            .map(|p| p.last_ack + 1)
            .min()
            .unwrap_or(self.pointer)
            .min(self.pointer);
        let retain_floor = self.pointer.saturating_sub(RETAIN_FRAMES);
        self.buf.prune_below(min_needed.min(retain_floor));
    }

    /// The confirmed-input frontier: the highest frame for which *every*
    /// player peer's partial input has arrived. Frames at or below it are
    /// authoritative; frames above it need prediction to execute.
    pub fn authoritative_frontier(&self) -> u64 {
        self.peers
            .iter()
            .filter(|(&site, _)| site < self.cfg.num_sites)
            .map(|(_, p)| p.last_rcv)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// `true` if `site`'s partial input for `frame` has arrived (or was
    /// buffered locally).
    pub fn has_authoritative(&self, frame: u64, site: u8) -> bool {
        self.buf.has(frame, site)
    }

    /// `site`'s buffered partial input for `frame` (empty when absent —
    /// check [`InputSync::has_authoritative`] to distinguish).
    pub fn authoritative_partial(&self, frame: u64, site: u8) -> InputWord {
        self.buf.partial(frame, site)
    }

    /// Merges the buffered partials for `frame` under the port map,
    /// treating absent sites as no input (the rollback driver substitutes
    /// predictions for those before calling).
    pub fn merged_input(&self, frame: u64) -> InputWord {
        self.buf.merged(frame, &self.cfg.port_map)
    }

    /// Lines 7–11: the messages to transmit now, if the send pacing allows
    /// and new information exists. Returns `(destination, message)` pairs.
    pub fn outgoing(&mut self, now: SimTime) -> Vec<(u8, InputMsg)> {
        if now < self.next_send {
            // detlint: allow(hot_alloc) -- empty Vec::new() does not touch the heap
            return Vec::new();
        }
        // detlint: allow(hot_alloc) -- non-empty only on paced sends, a few times per second
        let mut out = Vec::new();
        let my_site = self.cfg.my_site;
        let my_last = self.my_last_buffered;
        let max_frames = self.cfg.max_payload_frames;
        // Collect (site, ack, first..=last) first; building payloads needs &self.buf.
        let plans: Vec<(u8, u64, u64, u64)> = self
            .peers
            .iter()
            .filter_map(|(&site, p)| {
                let first = p.last_ack + 1;
                let has_inputs = self.is_player() && my_last >= first;
                if !has_inputs && !p.need_ack {
                    return None;
                }
                let ack = if site < self.cfg.num_sites {
                    p.last_rcv
                } else {
                    // Observers send nothing; ack what we've delivered.
                    self.pointer.max(1) - 1
                };
                let last = if has_inputs {
                    my_last.min(first + max_frames as u64 - 1)
                } else {
                    first - 1 // empty payload (pure ack)
                };
                Some((site, ack, first, last))
            })
            .collect();
        for (site, ack, first, last) in plans {
            let inputs = if last >= first {
                self.buf.partial_range(my_site, first..=last)
            } else {
                // detlint: allow(hot_alloc) -- empty Vec::new() does not touch the heap
                Vec::new()
            };
            let count = inputs.len() as u32;
            out.push((
                site,
                InputMsg {
                    from: my_site,
                    ack,
                    first,
                    inputs,
                },
            ));
            let mut retransmitted = 0u32;
            if let Some(p) = self.peers.get_mut(&site) {
                p.need_ack = false;
                if last >= first {
                    if p.last_sent >= first {
                        retransmitted = (p.last_sent.min(last) - first + 1) as u32;
                    }
                    // Span chain: frames past the previous send high-water
                    // mark leave this site for the first time. Retransmits
                    // get no span — the chain tracks first transmission.
                    if self.cfg.telemetry.is_tracing() {
                        for f in p.last_sent.max(first - 1) + 1..=last {
                            self.cfg.telemetry.span(now, SpanStage::Encoded, f, site);
                            self.cfg.telemetry.span(now, SpanStage::Sent, f, site);
                        }
                    }
                    p.last_sent = p.last_sent.max(last);
                }
            }
            self.cfg.telemetry.record(
                now,
                EventKind::InputSent {
                    to: site,
                    first,
                    count,
                    retransmitted,
                },
            );
        }
        if !out.is_empty() {
            self.next_send = now + self.cfg.send_interval;
        }
        out
    }

    /// Lines 12–20: integrate a received message.
    ///
    /// The returned [`RecvOutcome`] summarizes what the message contributed
    /// (for telemetry/statistics); it is all-zero for messages from unknown
    /// senders or from this site itself.
    pub fn on_message(&mut self, msg: &InputMsg, now: SimTime) -> RecvOutcome {
        let from = msg.from;
        if from == self.cfg.my_site {
            return RecvOutcome::default();
        }
        let Some(peer) = self.peers.get_mut(&from) else {
            return RecvOutcome::default(); // unknown sender: drop, as with any open UDP port
        };
        let carried = msg.inputs.len() as u32;
        // Owe an ack only for messages that carried inputs: duplicates still
        // refresh the ack (the previous one may have been lost), while pure
        // acks never trigger responses (no ack ping-pong).
        if !msg.inputs.is_empty() {
            peer.need_ack = true;
        }

        // Line 13: fill IBuf with the received remote partials (duplicates
        // are ignored inside the buffer).
        let mut fresh = 0u32;
        if from < self.cfg.num_sites {
            for (i, &w) in msg.inputs.iter().enumerate() {
                self.buf.set_partial(msg.first + i as u64, from, w);
            }
            // Lines 14–16: advance LastRcvFrame[from]. Contiguity holds
            // because msg.first = (our ack they saw) + 1 <= last_rcv + 1.
            if !msg.inputs.is_empty() && msg.last() > peer.last_rcv {
                fresh = (msg.last() - peer.last_rcv).min(carried as u64) as u32;
                // Span chain: only the frames this message is the first to
                // deliver count as received (contiguity guarantees the
                // range starts within the message).
                if self.cfg.telemetry.is_tracing() {
                    for f in peer.last_rcv + 1..=msg.last() {
                        self.cfg.telemetry.span(now, SpanStage::Received, f, from);
                    }
                }
                peer.last_rcv = msg.last();
                if from == 0 && self.cfg.my_site != 0 {
                    self.master_rcv_time = Some(now);
                }
            }
        }

        // Lines 17–19: advance LastAckFrame[from].
        if msg.ack > peer.last_ack {
            peer.last_ack = msg.ack;
        }

        let duplicate = carried > 0 && fresh == 0;
        self.cfg.telemetry.record(
            now,
            EventKind::InputReceived {
                from,
                first: msg.first,
                count: carried,
                fresh,
                duplicate,
            },
        );
        RecvOutcome {
            carried,
            fresh,
            duplicate,
        }
    }

    /// What Algorithm 4 needs from the protocol state: the master's latest
    /// known lagged frame and when we learned it. `None` on the master or
    /// before any master message arrived.
    pub fn master_observation(&self) -> Option<MasterObservation> {
        if self.cfg.my_site == 0 {
            return None;
        }
        let rcv_time = self.master_rcv_time?;
        Some(MasterObservation {
            master_lagged_frame: self.peers.get(&0)?.last_rcv,
            rcv_time,
        })
    }

    /// How long the engine has been blocked waiting for remote input, if it
    /// currently is (extension: drives the optional stall timeout).
    pub fn stalled_for(&self, now: SimTime) -> Option<SimDuration> {
        if self.ready() {
            return None;
        }
        self.stalled_since.map(|t| now.saturating_since(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_vm::{Button, Player};

    fn now() -> SimTime {
        SimTime::ZERO
    }

    fn pair() -> (InputSync, InputSync) {
        (
            InputSync::new(SyncConfig::two_player(0)),
            InputSync::new(SyncConfig::two_player(1)),
        )
    }

    /// Drives both engines one frame with instant, lossless delivery.
    fn lockstep_frame(
        a: &mut InputSync,
        b: &mut InputSync,
        f: u64,
        ia: InputWord,
        ib: InputWord,
    ) -> (InputWord, InputWord) {
        let t = SimTime::from_millis(f * 25); // > send_interval so pacing never blocks
        a.begin_frame(f, ia, t);
        b.begin_frame(f, ib, t);
        for (_, m) in a.outgoing(t) {
            b.on_message(&m, t);
        }
        for (_, m) in b.outgoing(t) {
            a.on_message(&m, t);
        }
        assert!(a.ready() && b.ready(), "frame {f} not ready");
        (a.take(), b.take())
    }

    #[test]
    fn first_buf_frames_deliver_empty_inputs() {
        let (mut a, mut b) = pair();
        for f in 0..6 {
            let (wa, wb) = lockstep_frame(&mut a, &mut b, f, InputWord(0xFF), InputWord(0xFF00));
            assert_eq!(wa, InputWord::NONE, "frame {f} must be empty (local lag)");
            assert_eq!(wb, InputWord::NONE);
        }
    }

    #[test]
    fn inputs_appear_after_local_lag() {
        let (mut a, mut b) = pair();
        let mut ia = InputWord::NONE;
        ia.press(Player::ONE, Button::A);
        // Frame 0's inputs must surface exactly at frame 6.
        for f in 0..6 {
            let (wa, _) = lockstep_frame(&mut a, &mut b, f, ia, InputWord::NONE);
            assert_eq!(wa, InputWord::NONE);
        }
        let (wa, wb) = lockstep_frame(&mut a, &mut b, 6, ia, InputWord::NONE);
        assert!(wa.is_pressed(Player::ONE, Button::A));
        assert_eq!(wa, wb, "both sites deliver the identical merged word");
    }

    #[test]
    fn sites_see_identical_input_sequences() {
        let (mut a, mut b) = pair();
        let mut seq_a = Vec::new();
        let mut seq_b = Vec::new();
        for f in 0..100 {
            let ia = InputWord((f as u32).wrapping_mul(0x9E37_79B9) & 0xFF);
            let ib = InputWord(((f as u32).wrapping_mul(0x85EB_CA6B) & 0xFF) << 8);
            let (wa, wb) = lockstep_frame(&mut a, &mut b, f, ia, ib);
            seq_a.push(wa);
            seq_b.push(wb);
        }
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn foreign_bits_in_local_input_are_stripped() {
        let (mut a, mut b) = pair();
        // Site 0 claims P2 buttons: they must not survive the merge.
        let mut dirty = InputWord::NONE;
        dirty.press(Player::TWO, Button::A);
        for f in 0..10 {
            let (wa, _) = lockstep_frame(&mut a, &mut b, f, dirty, InputWord::NONE);
            assert_eq!(wa, InputWord::NONE, "frame {f}");
        }
    }

    /// Advances both engines through the trivially-ready lag window
    /// *without any message exchange*, so tests control delivery precisely.
    fn warmup_isolated(a: &mut InputSync, b: &mut InputSync) {
        for f in 0..6 {
            let t = SimTime::from_millis(f * 25);
            a.begin_frame(f, InputWord::NONE, t);
            b.begin_frame(f, InputWord::NONE, t);
            let _ = a.take();
            let _ = b.take();
        }
    }

    #[test]
    fn not_ready_until_remote_arrives() {
        let (mut a, mut b) = pair();
        warmup_isolated(&mut a, &mut b);
        let t = SimTime::from_secs(10);
        a.begin_frame(6, InputWord(1), t);
        assert!(!a.ready(), "remote partial for frame 6 not yet received");
        b.begin_frame(6, InputWord(0x0100), t);
        for (_, m) in b.outgoing(t) {
            a.on_message(&m, t);
        }
        assert!(a.ready());
    }

    #[test]
    #[should_panic(expected = "exit condition")]
    fn take_before_ready_panics() {
        let (mut a, mut b) = pair();
        warmup_isolated(&mut a, &mut b);
        a.begin_frame(6, InputWord(1), now());
        let _ = a.take();
    }

    #[test]
    fn lost_messages_are_retransmitted() {
        let (mut a, mut b) = pair();
        warmup_isolated(&mut a, &mut b);
        // Frame 6: b's message to a is "lost" (never delivered).
        let t1 = SimTime::from_secs(1);
        a.begin_frame(6, InputWord(1), t1);
        b.begin_frame(6, InputWord(0x0100), t1);
        let _lost = b.outgoing(t1);
        for (_, m) in a.outgoing(t1) {
            b.on_message(&m, t1);
        }
        assert!(!a.ready());
        assert!(b.ready());

        // After the send interval, b retransmits everything unacked.
        let t2 = t1 + SimDuration::from_millis(25);
        let again = b.outgoing(t2);
        assert!(!again.is_empty(), "unacked inputs must be retransmitted");
        for (_, m) in again {
            a.on_message(&m, t2);
        }
        assert!(a.ready());
        assert_eq!(a.last_rcv(1), Some(12), "b's buffered range arrived");
        // Frame 6's merged word is empty: the inputs pressed *at* frame 6
        // surface at frame 12 (local lag).
        assert_eq!(a.take(), InputWord::NONE);
    }

    #[test]
    fn duplicate_messages_are_harmless() {
        let (mut a, mut b) = pair();
        warmup_isolated(&mut a, &mut b);
        let t = SimTime::from_secs(2);
        a.begin_frame(6, InputWord(1), t);
        b.begin_frame(6, InputWord(0x0100), t);
        let msgs = b.outgoing(t);
        for (_, m) in &msgs {
            a.on_message(m, t);
            a.on_message(m, t); // duplicate
            a.on_message(m, t); // triplicate
        }
        assert!(a.ready());
        assert_eq!(a.last_rcv(1), Some(12));
        // b's frame-6 press lives at lagged frame 12: frames 6..=11 merge
        // empty, then 12 carries exactly one copy of each side's press.
        for f in 6..12 {
            assert_eq!(a.take(), InputWord::NONE, "frame {f}");
        }
        assert_eq!(a.take(), InputWord(0x0101));
    }

    #[test]
    fn reordered_messages_preserve_contiguity() {
        let (mut a, mut b) = pair();
        warmup_isolated(&mut a, &mut b);
        // a transmits once so b can execute ahead; b's replies are stashed
        // and delivered to a in reverse order later.
        let t0 = SimTime::from_secs(1);
        a.begin_frame(6, InputWord(1), t0);
        for (_, m) in a.outgoing(t0) {
            b.on_message(&m, t0); // b now holds a's partials 6..=12
        }
        let mut stash = Vec::new();
        for f in 6..9u64 {
            let t = t0 + SimDuration::from_millis((f - 5) * 25);
            b.begin_frame(f, InputWord(((f as u32) & 0xFF) << 8), t);
            stash.extend(b.outgoing(t).into_iter().map(|(_, m)| m));
            let _ = b.take();
        }
        // Deliver b's messages to a newest-first.
        let t = SimTime::from_secs(60);
        for m in stash.iter().rev() {
            a.on_message(m, t);
        }
        // b buffered lag frames up to 8 + 6 = 14; all arrived contiguously.
        assert_eq!(a.last_rcv(1), Some(14));
        for f in 6..=14u64 {
            assert!(a.buf.has(f, 1), "frame {f} present despite reordering");
        }
        assert!(a.ready());
    }

    #[test]
    fn send_pacing_limits_message_rate() {
        let (mut a, _) = pair();
        let t0 = SimTime::from_secs(5);
        a.begin_frame(0, InputWord(1), t0);
        assert!(!a.outgoing(t0).is_empty());
        let _ = a.take(); // frame 0 is trivially ready
                          // Within the 20ms window: silence, even with new frames buffered.
        let t1 = t0 + SimDuration::from_millis(10);
        a.begin_frame(1, InputWord(1), t1);
        assert!(a.outgoing(t1).is_empty(), "paced out");
        let t2 = t0 + SimDuration::from_millis(20);
        assert!(!a.outgoing(t2).is_empty());
    }

    #[test]
    fn quiescence_reaches_silence_without_ack_ping_pong() {
        let (mut a, mut b) = pair();
        for f in 0..6 {
            lockstep_frame(&mut a, &mut b, f, InputWord::NONE, InputWord::NONE);
        }
        // Let any pending ack flushes drain, delivering everything.
        let mut t = SimTime::from_secs(30);
        let mut total = 0;
        for _ in 0..10 {
            let msgs_a = a.outgoing(t);
            let msgs_b = b.outgoing(t);
            total += msgs_a.len() + msgs_b.len();
            for (_, m) in msgs_a {
                b.on_message(&m, t);
            }
            for (_, m) in msgs_b {
                a.on_message(&m, t);
            }
            t += SimDuration::from_millis(25);
        }
        assert!(total <= 4, "ack traffic must die out, saw {total} messages");
        assert!(a.outgoing(t).is_empty());
        assert!(b.outgoing(t + SimDuration::from_millis(25)).is_empty());
    }

    #[test]
    fn master_observation_tracks_latest_master_frame() {
        let (mut a, mut b) = pair();
        assert_eq!(a.master_observation(), None, "master observes nobody");
        assert_eq!(b.master_observation(), None, "nothing heard yet");
        let t = SimTime::from_millis(123);
        a.begin_frame(0, InputWord(1), t);
        for (_, m) in a.outgoing(t) {
            b.on_message(&m, t);
        }
        let obs = b.master_observation().expect("heard the master");
        assert_eq!(obs.master_lagged_frame, 6); // frame 0 + BufFrame
        assert_eq!(obs.rcv_time, t);
    }

    #[test]
    fn stall_detection_reports_blockage() {
        let (mut a, mut b) = pair();
        warmup_isolated(&mut a, &mut b);
        let t = SimTime::from_secs(3);
        a.begin_frame(6, InputWord(1), t);
        assert!(!a.ready());
        let later = t + SimDuration::from_millis(500);
        assert_eq!(a.stalled_for(later), Some(SimDuration::from_millis(500)));
        // Once the remote input arrives, the stall clears.
        b.begin_frame(6, InputWord::NONE, t);
        for (_, m) in b.outgoing(t) {
            a.on_message(&m, t);
        }
        assert_eq!(a.stalled_for(later), None);
    }

    #[test]
    fn three_site_session_requires_all_inputs() {
        let mut sites: Vec<InputSync> = (0..3)
            .map(|s| InputSync::new(SyncConfig::n_player(s, 3)))
            .collect();
        for f in 0..20u64 {
            let t = SimTime::from_millis(f * 25);
            for (s, sync) in sites.iter_mut().enumerate() {
                sync.begin_frame(f, InputWord((s as u32 + 1) << (8 * s)), t);
            }
            // Exchange full mesh.
            let mut msgs: Vec<(u8, u8, InputMsg)> = Vec::new();
            for sync in sites.iter_mut() {
                for (dst, m) in sync.outgoing(t) {
                    msgs.push((m.from, dst, m));
                }
            }
            for (_, dst, m) in &msgs {
                sites[*dst as usize].on_message(m, t);
            }
            let words: Vec<InputWord> = sites.iter_mut().map(|s| s.take()).collect();
            assert_eq!(words[0], words[1]);
            assert_eq!(words[1], words[2]);
            if f >= 6 {
                assert_eq!(words[0], InputWord(0x0003_0201));
            }
        }
    }

    #[test]
    fn observer_follows_without_contributing() {
        let mut a = InputSync::new(SyncConfig::two_player(0));
        let mut b = InputSync::new(SyncConfig::two_player(1));
        let mut cfg_o = SyncConfig::two_player(0);
        cfg_o.my_site = OBSERVER_SITE;
        let mut o = InputSync::new(cfg_o);
        assert!(!o.is_player());
        // Players must learn the observer exists to retransmit to it.
        a.add_peer(OBSERVER_SITE, 0);
        b.add_peer(OBSERVER_SITE, 0);

        for f in 0..20u64 {
            let t = SimTime::from_millis(f * 25);
            a.begin_frame(f, InputWord(0x11), t);
            b.begin_frame(f, InputWord(0x2200), t);
            o.begin_frame(f, InputWord(0xFFFF_FFFF), t); // ignored
            let deliver = |msgs: Vec<(u8, InputMsg)>,
                           t: SimTime,
                           a: &mut InputSync,
                           b: &mut InputSync,
                           o: &mut InputSync| {
                for (dst, m) in msgs {
                    match dst {
                        0 => a.on_message(&m, t),
                        1 => b.on_message(&m, t),
                        OBSERVER_SITE => o.on_message(&m, t),
                        _ => unreachable!(),
                    };
                }
            };
            let ma = a.outgoing(t);
            let mb = b.outgoing(t);
            let mo = o.outgoing(t);
            deliver(ma, t, &mut a, &mut b, &mut o);
            deliver(mb, t, &mut a, &mut b, &mut o);
            deliver(mo, t, &mut a, &mut b, &mut o);
            let wa = a.take();
            let wb = b.take();
            assert!(o.ready(), "observer has both players' inputs");
            let wo = o.take();
            assert_eq!(wa, wb);
            assert_eq!(wb, wo, "observer replays the identical sequence");
            if f >= 6 {
                assert_eq!(wo, InputWord(0x2211));
            }
        }
    }

    #[test]
    fn buffer_is_pruned_to_the_retention_window() {
        let (mut a, mut b) = pair();
        for f in 0..600 {
            lockstep_frame(&mut a, &mut b, f, InputWord(1), InputWord(0x0100));
        }
        // Without pruning the buffer would hold 606 frames; with it, the
        // retention window (for latecomers) plus the in-flight tail.
        assert!(
            a.buf.len() as u64 <= RETAIN_FRAMES + 16,
            "buffer should stay bounded, holds {}",
            a.buf.len()
        );
        assert!(a.buf.len() as u64 >= RETAIN_FRAMES, "retention kept");
    }

    #[test]
    fn frontier_and_advance_support_speculation() {
        let (mut a, mut b) = pair();
        warmup_isolated(&mut a, &mut b);
        // Nothing has arrived from b: the frontier sits at the init value.
        assert_eq!(a.authoritative_frontier(), 5);
        let t = SimTime::from_secs(1);
        a.begin_frame(6, InputWord(1), t);
        assert!(!a.ready());
        // A speculative driver advances anyway.
        a.advance();
        assert_eq!(a.pointer(), 7);
        // b's inputs arrive late and land behind the pointer.
        b.begin_frame(6, InputWord(0x0100), t);
        for (_, m) in b.outgoing(t) {
            a.on_message(&m, t);
        }
        assert_eq!(a.authoritative_frontier(), 12, "b buffered 6..=12");
        assert!(a.has_authoritative(6, 1));
        assert!(!a.has_authoritative(13, 1));
        assert_eq!(a.authoritative_partial(12, 1), InputWord(0x0100));
        // Frame 12 now has both sites' partials: the authoritative merge.
        assert_eq!(a.merged_input(12), InputWord(0x0101));
    }

    #[test]
    fn frontier_is_min_over_player_peers() {
        let mut sites: Vec<InputSync> = (0..3)
            .map(|s| InputSync::new(SyncConfig::n_player(s, 3)))
            .collect();
        let t = SimTime::ZERO;
        for (s, sync) in sites.iter_mut().enumerate() {
            sync.begin_frame(0, InputWord(1 << (8 * s)), t);
        }
        // Deliver only site 1's message to site 0; site 2 stays silent.
        let msgs = sites[1].outgoing(t);
        for (dst, m) in msgs {
            if dst == 0 {
                sites[0].on_message(&m, t);
            }
        }
        assert_eq!(sites[0].last_rcv(1), Some(6));
        assert_eq!(sites[0].last_rcv(2), Some(5));
        assert_eq!(sites[0].authoritative_frontier(), 5);
    }

    #[test]
    fn recv_outcome_reports_fresh_and_duplicate_frames() {
        let (mut a, mut b) = pair();
        warmup_isolated(&mut a, &mut b);
        let t = SimTime::from_secs(2);
        a.begin_frame(6, InputWord(1), t);
        b.begin_frame(6, InputWord(0x0100), t);
        for (_, m) in b.outgoing(t) {
            // b buffered lag frames 6..=12: seven frames, all new to a.
            let first = a.on_message(&m, t);
            assert_eq!(first.carried, 7);
            assert_eq!(first.fresh, 7);
            assert!(!first.duplicate);
            // The identical message again contributes nothing.
            let dup = a.on_message(&m, t);
            assert_eq!(dup.carried, 7);
            assert_eq!(dup.fresh, 0);
            assert!(dup.duplicate);
        }
        // A pure ack is neither fresh nor a duplicate.
        let outcome = a.on_message(
            &InputMsg {
                from: 1,
                ack: 6,
                first: 13,
                inputs: Vec::new(),
            },
            t,
        );
        assert_eq!(outcome, RecvOutcome::default());
    }

    #[test]
    fn telemetry_counts_retransmitted_frames_on_resend() {
        let mut cfg = SyncConfig::two_player(0);
        cfg.telemetry = coplay_telemetry::Telemetry::recording();
        let tel = cfg.telemetry.clone();
        let mut a = InputSync::new(cfg);
        let t1 = SimTime::from_secs(1);
        a.begin_frame(0, InputWord(1), t1);
        let _lost = a.outgoing(t1); // frame 6 (= 0 + lag) sent, never acked
        let t2 = t1 + SimDuration::from_millis(25);
        assert!(!a.outgoing(t2).is_empty(), "unacked frame retransmitted");
        let sent: Vec<(u32, u32)> = tel
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::InputSent {
                    count,
                    retransmitted,
                    ..
                } => Some((count, retransmitted)),
                _ => None,
            })
            .collect();
        assert_eq!(sent, vec![(1, 0), (1, 1)]);
        assert_eq!(tel.counter("input_messages_sent_total"), 2);
        assert_eq!(tel.counter("retransmitted_frames_sent_total"), 1);
    }

    #[test]
    fn payload_cap_is_respected_and_cumulative() {
        // a's outbound messages are all lost; b's arrive. a accumulates
        // unacked local inputs and must cap each (re)transmission at the
        // configured limit, always starting from the oldest unacked frame.
        let mut cfg = SyncConfig::two_player(0);
        cfg.max_payload_frames = 4;
        let mut a = InputSync::new(cfg);
        let mut b = InputSync::new(SyncConfig::two_player(1));
        for f in 0..=6u64 {
            let t = SimTime::from_millis(f * 25);
            a.begin_frame(f, InputWord(1), t);
            b.begin_frame(f, InputWord(0x0100), t);
            for (_, m) in a.outgoing(t) {
                assert!(m.inputs.len() <= 4, "cap violated: {}", m.inputs.len());
                assert_eq!(m.first, 6, "oldest unacked first (init ack = 5)");
                // lost: never delivered to b
            }
            for (_, m) in b.outgoing(t) {
                a.on_message(&m, t);
            }
            assert!(a.ready());
            let _ = a.take();
            if b.ready() {
                let _ = b.take();
            }
        }
        // b is now blocked at frame 6; a keeps retransmitting capped,
        // cumulative batches from frame 6.
        let t = SimTime::from_secs(9);
        let msgs = a.outgoing(t);
        assert!(!msgs.is_empty());
        for (_, m) in msgs {
            assert_eq!(m.first, 6);
            assert_eq!(m.inputs.len(), 4, "window 6..=9 under the cap");
        }
    }
}
