//! Algorithms 3 and 4 of the paper: real-time consistency.
//!
//! [`FrameTimer::end_frame`] is Algorithm 3 (`EndFrameTiming`): it computes
//! when the current frame *should* end; if that moment already passed, the
//! overshoot is carried into the next frame as a negative
//! `AdjustTimeDelta`, otherwise the caller waits out the remainder.
//!
//! [`FrameTimer::begin_frame`] is Algorithm 4 (`BeginFrameTiming`): the
//! slave site estimates the master's current frame from the last received
//! input message (`MasterFrame`, `MasterRcvTime`) and one-way latency
//! (`RTT/2`), and folds the frame difference into `AdjustTimeDelta` as
//! `SyncAdjustTimeDelta`. On the master the term is always zero — the
//! master *is* the reference pace.

use coplay_clock::{SimDelta, SimDuration, SimTime};
use coplay_telemetry::{EventKind, Telemetry};

use crate::sync_input::MasterObservation;

/// What the frame loop should do after `EndFrameTiming`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameEnd {
    /// The frame finished early: sleep until the given instant
    /// (Algorithm 3, line 7).
    WaitUntil(SimTime),
    /// The frame overran; continue immediately — the debt was carried into
    /// `AdjustTimeDelta` (Algorithm 3, line 4).
    Behind,
}

/// The pacing engine of one site.
///
/// # Examples
///
/// An unhindered master runs at exactly one frame per `TimePerFrame`:
///
/// ```
/// use coplay_clock::{SimDuration, SimTime};
/// use coplay_sync::{FrameEnd, FrameTimer};
///
/// let tpf = SimDuration::from_micros(16_666);
/// let mut timer = FrameTimer::master(tpf);
/// let t0 = SimTime::from_secs(1);
/// timer.begin_frame(t0, 0, None, SimDuration::ZERO);
/// assert_eq!(timer.end_frame(t0), FrameEnd::WaitUntil(t0 + tpf));
/// ```
#[derive(Debug, Clone)]
pub struct FrameTimer {
    time_per_frame: SimDuration,
    /// The paper's `AdjustTimeDelta`.
    adjust: SimDelta,
    /// The paper's `CurrFrameStart`.
    frame_start: SimTime,
    is_master: bool,
    rate_sync: bool,
    /// Optional bound on each frame's `SyncAdjustTimeDelta` contribution
    /// (not in the paper; used by the pacing ablation).
    sync_clamp: Option<SimDuration>,
    /// Corrections smaller than this are treated as measurement noise
    /// (send-batching and thread-slice terms the paper's §4.2 enumerates).
    dead_zone: SimDuration,
    /// Number of frames the local lag spans (to convert the master's lagged
    /// buffer frame into its actual execution frame).
    buf_frames: u64,
    /// Most recent `SyncAdjustTimeDelta`, exposed for experiments.
    last_sync_adjust: SimDelta,
    /// Observability sink; records one event per applied pace adjustment.
    telemetry: Telemetry,
}

impl FrameTimer {
    /// Creates the master-site timer: provides the reference pace.
    pub fn master(time_per_frame: SimDuration) -> FrameTimer {
        FrameTimer::new(time_per_frame, true, true, 0)
    }

    /// Creates the slave-site timer, which chases the master's pace.
    /// `buf_frames` must match the session's local lag.
    pub fn slave(time_per_frame: SimDuration, buf_frames: u64) -> FrameTimer {
        FrameTimer::new(time_per_frame, false, true, buf_frames)
    }

    /// Full-control constructor: `rate_sync = false` disables Algorithm 4
    /// (the ablation reproducing §3.2's speed-fluctuation pathology).
    pub fn new(
        time_per_frame: SimDuration,
        is_master: bool,
        rate_sync: bool,
        buf_frames: u64,
    ) -> FrameTimer {
        FrameTimer {
            time_per_frame,
            adjust: SimDelta::ZERO,
            frame_start: SimTime::ZERO,
            is_master,
            rate_sync,
            sync_clamp: None,
            dead_zone: SimDuration::ZERO,
            buf_frames,
            last_sync_adjust: SimDelta::ZERO,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches an observability sink: every applied (non-dead-zone) pace
    /// adjustment is recorded as a [`EventKind::PaceAdjustment`] event.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> FrameTimer {
        self.telemetry = telemetry;
        self
    }

    /// Ignores corrections smaller than `dead_zone` (noise filtering; see
    /// [`SyncConfig::sync_dead_zone`](crate::SyncConfig::sync_dead_zone)).
    pub fn with_dead_zone(mut self, dead_zone: SimDuration) -> FrameTimer {
        self.dead_zone = dead_zone;
        self
    }

    /// Bounds each frame's Algorithm-4 contribution to ±`limit`
    /// (experimental knob; the paper applies no clamp).
    pub fn with_sync_clamp(mut self, limit: SimDuration) -> FrameTimer {
        self.sync_clamp = Some(limit);
        self
    }

    /// The current `AdjustTimeDelta` (test/metrics hook).
    pub fn adjust_delta(&self) -> SimDelta {
        self.adjust
    }

    /// The most recent `SyncAdjustTimeDelta` (test/metrics hook).
    pub fn last_sync_adjust(&self) -> SimDelta {
        self.last_sync_adjust
    }

    /// Algorithm 4, `BeginFrameTiming()`.
    ///
    /// `frame` is the site's current frame (`SlaveFrame`); `obs` is the
    /// latest master observation from the sync engine (slave only); `rtt`
    /// is the current round-trip estimate.
    pub fn begin_frame(
        &mut self,
        now: SimTime,
        frame: u64,
        obs: Option<&MasterObservation>,
        rtt: SimDuration,
    ) {
        self.frame_start = now;
        self.last_sync_adjust = SimDelta::ZERO;
        if self.is_master || !self.rate_sync {
            return; // line 4: SyncAdjustTimeDelta = 0
        }
        let Some(obs) = obs else {
            return; // nothing heard from the master yet
        };
        // Line 6: MasterFrame = LastRcvFrame[0] - BufFrame.
        if obs.master_lagged_frame < self.buf_frames {
            return; // master hasn't really executed a frame yet
        }
        let master_frame = obs.master_lagged_frame - self.buf_frames;
        // Line 7:
        //   SyncAdjustTimeDelta = (Frame - MasterFrame) * TimePerFrame
        //                       - (CurrTime - (MasterRcvTime - RTT/2))
        let frame_diff = frame as i64 - master_frame as i64;
        let sent_time = obs.rcv_time.offset(-SimDelta::from(rtt / 2));
        let elapsed = now.delta_since(sent_time);
        let mut sync = SimDelta::from(self.time_per_frame) * frame_diff - elapsed;
        if sync.abs() <= self.dead_zone {
            return; // within measurement noise: hold the current pace
        }
        if let Some(limit) = self.sync_clamp {
            sync = sync.clamp_abs(limit);
        }
        self.last_sync_adjust = sync;
        self.telemetry
            .record(now, EventKind::PaceAdjustment { delta: sync });
        // Line 9: AdjustTimeDelta += SyncAdjustTimeDelta.
        self.adjust += sync;
    }

    /// Algorithm 3, `EndFrameTiming()`.
    pub fn end_frame(&mut self, now: SimTime) -> FrameEnd {
        // Line 1: CurrFrameEnd = CurrFrameStart + TimePerFrame + AdjustTimeDelta.
        let frame_end = (self.frame_start + self.time_per_frame).offset(self.adjust);
        if frame_end < now {
            // Lines 3–4: we are late; carry the (negative) debt forward.
            self.adjust = frame_end.delta_since(now);
            FrameEnd::Behind
        } else {
            // Lines 6–7: on time; wait out the remainder.
            self.adjust = SimDelta::ZERO;
            FrameEnd::WaitUntil(frame_end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TPF: SimDuration = SimDuration::from_micros(16_666);

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn on_time_frame_waits_out_remainder() {
        let mut t = FrameTimer::master(TPF);
        let start = SimTime::from_secs(1);
        t.begin_frame(start, 0, None, SimDuration::ZERO);
        let end = t.end_frame(start + SimDuration::from_millis(5));
        assert_eq!(end, FrameEnd::WaitUntil(start + TPF));
        assert_eq!(t.adjust_delta(), SimDelta::ZERO);
    }

    #[test]
    fn overrun_carries_negative_debt() {
        let mut t = FrameTimer::master(TPF);
        let start = SimTime::from_secs(1);
        t.begin_frame(start, 0, None, SimDuration::ZERO);
        // The frame took 30ms — 13.334ms too long.
        let end = t.end_frame(start + ms(30));
        assert_eq!(end, FrameEnd::Behind);
        assert_eq!(t.adjust_delta(), SimDelta::from_micros(16_666 - 30_000));
    }

    #[test]
    fn debt_shortens_the_next_frame() {
        let mut t = FrameTimer::master(TPF);
        let s0 = SimTime::from_secs(1);
        t.begin_frame(s0, 0, None, SimDuration::ZERO);
        assert_eq!(t.end_frame(s0 + ms(30)), FrameEnd::Behind);
        // Next frame starts immediately and executes instantly: its end is
        // start + tpf + (negative debt) = the original schedule.
        let s1 = s0 + ms(30);
        t.begin_frame(s1, 1, None, SimDuration::ZERO);
        match t.end_frame(s1) {
            FrameEnd::WaitUntil(end) => {
                assert_eq!(end, s0 + TPF * 2, "compensates to the original cadence");
            }
            FrameEnd::Behind => panic!("should be able to catch up"),
        }
    }

    #[test]
    fn master_ignores_observations() {
        let mut t = FrameTimer::master(TPF);
        let obs = MasterObservation {
            master_lagged_frame: 100,
            rcv_time: SimTime::from_secs(1),
        };
        t.begin_frame(SimTime::from_secs(2), 5, Some(&obs), ms(100));
        assert_eq!(t.last_sync_adjust(), SimDelta::ZERO);
        assert_eq!(t.adjust_delta(), SimDelta::ZERO);
    }

    #[test]
    fn slave_ahead_of_master_slows_down() {
        let mut t = FrameTimer::slave(TPF, 6);
        // Master executed frame 94 (lagged 100) when the message was sent;
        // with zero RTT and zero elapsed time, a slave at frame 100 is 6
        // frames ahead -> positive adjustment (wait longer).
        let now = SimTime::from_secs(5);
        let obs = MasterObservation {
            master_lagged_frame: 100,
            rcv_time: now,
        };
        t.begin_frame(now, 100, Some(&obs), SimDuration::ZERO);
        let expected = SimDelta::from(TPF) * 6;
        assert_eq!(t.last_sync_adjust(), expected);
        match t.end_frame(now) {
            FrameEnd::WaitUntil(end) => assert_eq!(end, now + TPF + TPF * 6),
            FrameEnd::Behind => panic!("ahead slave must wait, not rush"),
        }
    }

    #[test]
    fn slave_behind_master_speeds_up() {
        let mut t = FrameTimer::slave(TPF, 6);
        let now = SimTime::from_secs(5);
        // Master at frame 100; slave only at frame 97: negative adjustment.
        let obs = MasterObservation {
            master_lagged_frame: 106,
            rcv_time: now,
        };
        t.begin_frame(now, 97, Some(&obs), SimDuration::ZERO);
        assert!(t.last_sync_adjust().is_negative());
        assert_eq!(t.last_sync_adjust(), SimDelta::from(TPF) * -3);
    }

    #[test]
    fn rtt_shifts_the_master_estimate() {
        let mut zero_rtt = FrameTimer::slave(TPF, 6);
        let mut high_rtt = FrameTimer::slave(TPF, 6);
        let now = SimTime::from_secs(5);
        let obs = MasterObservation {
            master_lagged_frame: 106,
            rcv_time: now,
        };
        zero_rtt.begin_frame(now, 100, Some(&obs), SimDuration::ZERO);
        high_rtt.begin_frame(now, 100, Some(&obs), ms(100));
        // With RTT/2 = 50ms the master sent 50ms ago, so it has progressed
        // further; the slave must consider itself *more* behind.
        assert!(
            high_rtt.last_sync_adjust() < zero_rtt.last_sync_adjust(),
            "higher RTT => master estimated further ahead"
        );
        let diff = zero_rtt.last_sync_adjust() - high_rtt.last_sync_adjust();
        assert_eq!(diff, SimDelta::from_millis(50));
    }

    #[test]
    fn stale_observation_extrapolates_master_progress() {
        let mut t = FrameTimer::slave(TPF, 6);
        let rcv = SimTime::from_secs(5);
        let obs = MasterObservation {
            master_lagged_frame: 106, // master frame 100 at ~rcv
            rcv_time: rcv,
        };
        // 100 frames of wall time later, a slave at frame 200 is level.
        let now = rcv + TPF * 100;
        t.begin_frame(now, 200, Some(&obs), SimDuration::ZERO);
        assert_eq!(t.last_sync_adjust(), SimDelta::ZERO);
    }

    #[test]
    fn disabled_rate_sync_zeroes_the_term() {
        let mut t = FrameTimer::new(TPF, false, false, 6);
        let now = SimTime::from_secs(5);
        let obs = MasterObservation {
            master_lagged_frame: 200,
            rcv_time: now,
        };
        t.begin_frame(now, 0, Some(&obs), ms(40));
        assert_eq!(t.last_sync_adjust(), SimDelta::ZERO);
    }

    #[test]
    fn clamp_bounds_each_contribution() {
        let mut t = FrameTimer::slave(TPF, 6).with_sync_clamp(ms(5));
        let now = SimTime::from_secs(5);
        let obs = MasterObservation {
            master_lagged_frame: 6, // master at frame 0
            rcv_time: now,
        };
        // Slave wildly ahead at frame 1000.
        t.begin_frame(now, 1000, Some(&obs), SimDuration::ZERO);
        assert_eq!(t.last_sync_adjust(), SimDelta::from_millis(5));
    }

    #[test]
    fn pre_start_master_observation_is_ignored() {
        let mut t = FrameTimer::slave(TPF, 6);
        let now = SimTime::from_secs(5);
        // Lagged frame below BufFrame: master hasn't executed frame 0 yet.
        let obs = MasterObservation {
            master_lagged_frame: 5,
            rcv_time: now,
        };
        t.begin_frame(now, 0, Some(&obs), SimDuration::ZERO);
        assert_eq!(t.last_sync_adjust(), SimDelta::ZERO);
    }
}
