//! The UDP wire protocol.
//!
//! §3.1: "like in many other realtime applications, we resort to UDP and
//! implement some of the reliability mechanisms in TCP." Every datagram
//! carries one [`Message`]. The input message is the paper's `sd` vector:
//!
//! * `sd[0]` → [`InputMsg::ack`] — cumulative ack of the *receiver's*
//!   partial inputs (`LastRcvFrame[RmSiteNo]`),
//! * `sd[1]` → [`InputMsg::first`] — first frame carried
//!   (`LastAckFrame[RmSiteNo] + 1`),
//! * `sd[2]` → `first + inputs.len() - 1` — last frame carried
//!   (`LastRcvFrame[MySiteNo]`),
//! * `sd[3…]` → [`InputMsg::inputs`] — the sender's partial input words.
//!
//! The format is hand-rolled, versioned, and length-checked: exactly what a
//! production netplay protocol needs, with no serialization framework to
//! obscure it.

use std::error::Error;
use std::fmt;

use coplay_net::bytes::{Buf, BufMut, Bytes};
use coplay_vm::InputWord;

/// Protocol magic (1 byte) and version (1 byte).
const MAGIC: u8 = 0xC5;
const VERSION: u8 = 1;

/// Hard cap on input words per message; bounds allocation on receive.
pub const MAX_INPUTS_PER_MSG: usize = 1024;

/// Hard cap on snapshot chunk payload (fits one UDP datagram comfortably).
pub const MAX_CHUNK_BYTES: usize = 1024;

/// A lockstep input batch (the paper's `sd` message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputMsg {
    /// Sender's site number.
    pub from: u8,
    /// `sd[0]`: the sender has received all of *the destination's* partial
    /// inputs up to and including this frame.
    pub ack: u64,
    /// `sd[1]`: frame number of `inputs[0]`.
    pub first: u64,
    /// `sd[3…]`: the sender's partial input words for frames
    /// `first .. first + inputs.len()`.
    pub inputs: Vec<InputWord>,
}

impl InputMsg {
    /// `sd[2]`: the last frame carried, or `first - 1` when empty (pure ack).
    pub fn last(&self) -> u64 {
        (self.first + self.inputs.len() as u64).saturating_sub(1)
    }
}

/// Session-control and measurement messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Input batch (the protocol's workhorse).
    Input(InputMsg),
    /// Join request: "I am site `site`, my game image hashes to `rom_hash`".
    Hello {
        /// Sender's site number.
        site: u8,
        /// Hash of the sender's game image.
        rom_hash: u64,
        /// `true` if the sender wants to watch, not play.
        observer: bool,
    },
    /// Host's accept; the receiver may start its frame loop on receipt.
    HelloAck {
        /// Hash of the host's game image (receiver re-verifies).
        rom_hash: u64,
        /// Frame at which the newcomer joins (0 for a fresh session).
        start_frame: u64,
    },
    /// RTT probe.
    Ping {
        /// Echoed verbatim in the matching [`Message::Pong`].
        nonce: u32,
    },
    /// RTT probe response.
    Pong {
        /// Copied from the probe.
        nonce: u32,
    },
    /// Latecomer support: ask the host for a state snapshot.
    SnapshotRequest,
    /// One chunk of a machine snapshot (latecomer join).
    SnapshotChunk {
        /// Frame the snapshot was taken at.
        frame: u64,
        /// Byte offset of this chunk.
        offset: u32,
        /// Total snapshot size in bytes.
        total: u32,
        /// The chunk payload.
        bytes: Bytes,
    },
    /// Orderly goodbye (peer quit; the paper's system would freeze instead).
    Bye,
    /// A frame-begin stamp for the measurement time server (§4).
    TimeStamp {
        /// Stamping site.
        site: u8,
        /// The frame that just began.
        frame: u64,
    },
}

/// Errors decoding a datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Datagram shorter than its advertised contents.
    Truncated,
    /// Wrong magic byte (not a coplay datagram).
    BadMagic,
    /// Protocol version mismatch.
    BadVersion(u8),
    /// Unknown message type byte.
    UnknownType(u8),
    /// A length field exceeds its hard cap.
    TooLarge,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "datagram truncated"),
            WireError::BadMagic => write!(f, "bad magic byte"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownType(t) => write!(f, "unknown message type {t}"),
            WireError::TooLarge => write!(f, "length field exceeds protocol cap"),
        }
    }
}

impl Error for WireError {}

mod ty {
    pub const INPUT: u8 = 1;
    pub const HELLO: u8 = 2;
    pub const HELLO_ACK: u8 = 3;
    pub const PING: u8 = 4;
    pub const PONG: u8 = 5;
    pub const SNAPSHOT_REQUEST: u8 = 6;
    pub const SNAPSHOT_CHUNK: u8 = 7;
    pub const BYE: u8 = 8;
    pub const TIME_STAMP: u8 = 9;
}

impl Message {
    /// Encodes the message into a fresh datagram payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Encodes the message into `out` (cleared first).
    ///
    /// The send paths call this once per datagram with a per-session
    /// buffer, so steady-state input traffic allocates nothing.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        let b = out;
        b.put_u8(MAGIC);
        b.put_u8(VERSION);
        match self {
            Message::Input(m) => {
                b.put_u8(ty::INPUT);
                b.put_u8(m.from);
                b.put_u64_le(m.ack);
                b.put_u64_le(m.first);
                b.put_u16_le(m.inputs.len() as u16);
                for w in &m.inputs {
                    b.put_u32_le(w.0);
                }
            }
            Message::Hello {
                site,
                rom_hash,
                observer,
            } => {
                b.put_u8(ty::HELLO);
                b.put_u8(*site);
                b.put_u64_le(*rom_hash);
                b.put_u8(*observer as u8);
            }
            Message::HelloAck {
                rom_hash,
                start_frame,
            } => {
                b.put_u8(ty::HELLO_ACK);
                b.put_u64_le(*rom_hash);
                b.put_u64_le(*start_frame);
            }
            Message::Ping { nonce } => {
                b.put_u8(ty::PING);
                b.put_u32_le(*nonce);
            }
            Message::Pong { nonce } => {
                b.put_u8(ty::PONG);
                b.put_u32_le(*nonce);
            }
            Message::SnapshotRequest => b.put_u8(ty::SNAPSHOT_REQUEST),
            Message::SnapshotChunk {
                frame,
                offset,
                total,
                bytes,
            } => {
                b.put_u8(ty::SNAPSHOT_CHUNK);
                b.put_u64_le(*frame);
                b.put_u32_le(*offset);
                b.put_u32_le(*total);
                b.put_u16_le(bytes.len() as u16);
                b.put_slice(bytes);
            }
            Message::Bye => b.put_u8(ty::BYE),
            Message::TimeStamp { site, frame } => {
                b.put_u8(ty::TIME_STAMP);
                b.put_u8(*site);
                b.put_u64_le(*frame);
            }
        }
    }

    /// Decodes one datagram.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for short, foreign, or oversized datagrams —
    /// a UDP port receives arbitrary bytes, so decoding must never panic.
    pub fn decode(data: &[u8]) -> Result<Message, WireError> {
        let mut b = data;
        if b.remaining() < 3 {
            return Err(WireError::Truncated);
        }
        if b.get_u8() != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = b.get_u8();
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let t = b.get_u8();
        macro_rules! need {
            ($n:expr) => {
                if b.remaining() < $n {
                    return Err(WireError::Truncated);
                }
            };
        }
        Ok(match t {
            ty::INPUT => {
                need!(1 + 8 + 8 + 2);
                let from = b.get_u8();
                let ack = b.get_u64_le();
                let first = b.get_u64_le();
                let n = b.get_u16_le() as usize;
                if n > MAX_INPUTS_PER_MSG {
                    return Err(WireError::TooLarge);
                }
                need!(n * 4);
                let mut inputs = Vec::with_capacity(n);
                for _ in 0..n {
                    inputs.push(InputWord(b.get_u32_le()));
                }
                Message::Input(InputMsg {
                    from,
                    ack,
                    first,
                    inputs,
                })
            }
            ty::HELLO => {
                need!(1 + 8 + 1);
                let site = b.get_u8();
                let rom_hash = b.get_u64_le();
                let observer = b.get_u8() != 0;
                Message::Hello {
                    site,
                    rom_hash,
                    observer,
                }
            }
            ty::HELLO_ACK => {
                need!(8 + 8);
                Message::HelloAck {
                    rom_hash: b.get_u64_le(),
                    start_frame: b.get_u64_le(),
                }
            }
            ty::PING => {
                need!(4);
                Message::Ping {
                    nonce: b.get_u32_le(),
                }
            }
            ty::PONG => {
                need!(4);
                Message::Pong {
                    nonce: b.get_u32_le(),
                }
            }
            ty::SNAPSHOT_REQUEST => Message::SnapshotRequest,
            ty::SNAPSHOT_CHUNK => {
                need!(8 + 4 + 4 + 2);
                let frame = b.get_u64_le();
                let offset = b.get_u32_le();
                let total = b.get_u32_le();
                let n = b.get_u16_le() as usize;
                if n > MAX_CHUNK_BYTES {
                    return Err(WireError::TooLarge);
                }
                let Some(raw) = b.try_take(n) else {
                    return Err(WireError::Truncated);
                };
                let bytes = Bytes::copy_from_slice(raw);
                Message::SnapshotChunk {
                    frame,
                    offset,
                    total,
                    bytes,
                }
            }
            ty::BYE => Message::Bye,
            ty::TIME_STAMP => {
                need!(1 + 8);
                Message::TimeStamp {
                    site: b.get_u8(),
                    frame: b.get_u64_le(),
                }
            }
            other => return Err(WireError::UnknownType(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Message> {
        vec![
            Message::Input(InputMsg {
                from: 1,
                ack: 41,
                first: 42,
                inputs: vec![InputWord(0xAB), InputWord(0), InputWord(0xFFFF_FFFF)],
            }),
            Message::Input(InputMsg {
                from: 0,
                ack: 7,
                first: 8,
                inputs: vec![], // pure ack
            }),
            Message::Hello {
                site: 1,
                rom_hash: 0xDEAD_BEEF_CAFE_F00D,
                observer: false,
            },
            Message::Hello {
                site: 2,
                rom_hash: 1,
                observer: true,
            },
            Message::HelloAck {
                rom_hash: 99,
                start_frame: 1234,
            },
            Message::Ping { nonce: 0x01020304 },
            Message::Pong { nonce: 0x01020304 },
            Message::SnapshotRequest,
            Message::SnapshotChunk {
                frame: 600,
                offset: 2048,
                total: 70_000,
                bytes: Bytes::from_static(b"state-bytes"),
            },
            Message::Bye,
            Message::TimeStamp { site: 1, frame: 77 },
        ]
    }

    #[test]
    fn roundtrip_every_message() {
        for m in samples() {
            let encoded = m.encode();
            assert_eq!(Message::decode(&encoded).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_the_buffer() {
        let mut buf = Vec::new();
        for m in samples() {
            m.encode_into(&mut buf);
            assert_eq!(buf, m.encode(), "{m:?}");
            assert_eq!(Message::decode(&buf).unwrap(), m, "{m:?}");
        }
        // A large message grows the buffer once; smaller ones after it
        // must reuse the allocation.
        Message::Input(InputMsg {
            from: 0,
            ack: 0,
            first: 0,
            inputs: vec![InputWord(7); 64],
        })
        .encode_into(&mut buf);
        let cap = buf.capacity();
        Message::Bye.encode_into(&mut buf);
        assert_eq!(buf.capacity(), cap, "encode_into must not reallocate");
    }

    #[test]
    fn input_last_frame_math() {
        let m = InputMsg {
            from: 0,
            ack: 0,
            first: 10,
            inputs: vec![InputWord(1); 5],
        };
        assert_eq!(m.last(), 14);
        let empty = InputMsg {
            from: 0,
            ack: 0,
            first: 10,
            inputs: vec![],
        };
        assert_eq!(empty.last(), 9);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Message::decode(&[]), Err(WireError::Truncated));
        assert_eq!(Message::decode(&[1, 2]), Err(WireError::Truncated));
        assert_eq!(
            Message::decode(&[0x00, VERSION, 1]),
            Err(WireError::BadMagic)
        );
        assert_eq!(
            Message::decode(&[MAGIC, 99, 1]),
            Err(WireError::BadVersion(99))
        );
        assert_eq!(
            Message::decode(&[MAGIC, VERSION, 200]),
            Err(WireError::UnknownType(200))
        );
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let mut bytes = samples()[0].encode();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(Message::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn decode_rejects_oversized_counts() {
        // Hand-craft an input message claiming 2000 words.
        let mut b = vec![MAGIC, VERSION, 1, 0];
        b.extend_from_slice(&0u64.to_le_bytes());
        b.extend_from_slice(&0u64.to_le_bytes());
        b.extend_from_slice(&2000u16.to_le_bytes());
        assert_eq!(Message::decode(&b), Err(WireError::TooLarge));
    }

    #[test]
    fn encoding_is_compact() {
        // A 3-frame input message fits well inside a minimal MTU.
        let bytes = samples()[0].encode();
        assert!(bytes.len() < 64, "len {}", bytes.len());
    }

    #[test]
    fn errors_display() {
        assert!(WireError::BadVersion(3).to_string().contains('3'));
        assert!(WireError::Truncated.to_string().contains("truncated"));
    }
}
