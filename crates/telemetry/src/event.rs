//! Compact, timestamped events for the flight recorder.

use crate::span::SpanStage;
use coplay_clock::{SimDelta, SimDuration, SimTime};
use std::fmt::Write as _;

/// What happened at one instant of a session.
///
/// Events are deliberately compact (a tag plus a few integers) so that a
/// ring buffer of tens of thousands of them costs little memory, and every
/// field is numeric so the JSONL dump needs no string escaping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A simulation frame entered its pacing/input pipeline.
    FrameBegun {
        /// Frame number.
        frame: u64,
    },
    /// A frame's inputs were complete and the machine stepped.
    FrameExecuted {
        /// Frame number.
        frame: u64,
        /// Time from frame begin to execution.
        frame_time: SimDuration,
    },
    /// The session started blocking on missing remote input.
    StallBegin {
        /// Frame the session is blocked at.
        frame: u64,
    },
    /// The session unblocked after a stall.
    StallEnd {
        /// Frame the session was blocked at.
        frame: u64,
        /// How long the stall lasted.
        duration: SimDuration,
    },
    /// An input message left this site.
    InputSent {
        /// Destination site.
        to: u8,
        /// First frame carried (meaningless for pure acks, `count == 0`).
        first: u64,
        /// Number of input frames carried.
        count: u32,
        /// How many of those frames had already been sent before
        /// (retransmissions for loss recovery).
        retransmitted: u32,
    },
    /// An input message arrived at this site.
    InputReceived {
        /// Origin site.
        from: u8,
        /// First frame carried (meaningless for pure acks, `count == 0`).
        first: u64,
        /// Number of input frames carried.
        count: u32,
        /// How many of those frames were new to this site.
        fresh: u32,
        /// `true` if the message carried inputs but not a single new frame.
        duplicate: bool,
    },
    /// The frame pacer applied a rate-synchronization adjustment
    /// (Algorithm 4 of the paper).
    PaceAdjustment {
        /// Signed adjustment added to the pace debt.
        delta: SimDelta,
    },
    /// A ping/pong round-trip completed.
    RttSample {
        /// The raw (unsmoothed) round-trip sample.
        rtt: SimDuration,
    },
    /// A peer completed the hello handshake.
    PeerJoined {
        /// The peer's site number.
        site: u8,
    },
    /// This site served a state snapshot to a late joiner.
    SnapshotServed {
        /// Frame the snapshot captures.
        frame: u64,
        /// Serialized size in bytes.
        bytes: u64,
    },
    /// This site installed a state snapshot received from a peer.
    SnapshotLoaded {
        /// Frame the snapshot captures.
        frame: u64,
        /// Serialized size in bytes.
        bytes: u64,
    },
    /// The impaired network dropped a packet.
    PacketDropped {
        /// Sending peer.
        from: u8,
        /// Receiving peer.
        to: u8,
        /// `true` if the drop was a queue overflow rather than random loss.
        overflow: bool,
    },
    /// The impaired network duplicated a packet.
    PacketDuplicated {
        /// Sending peer.
        from: u8,
        /// Receiving peer.
        to: u8,
    },
    /// Replica state hashes diverged at this frame.
    DesyncDetected {
        /// First frame at which the divergence was observed.
        frame: u64,
    },
    /// A rollback session saved a state checkpoint.
    CheckpointSaved {
        /// Frame the checkpoint captures (taken before executing it).
        frame: u64,
        /// Serialized size in bytes.
        bytes: u64,
    },
    /// A prediction for a remote site's input turned out wrong.
    InputMispredicted {
        /// The mispredicted frame.
        frame: u64,
        /// The remote site whose input was mispredicted.
        site: u8,
    },
    /// A rollback session restored a checkpoint and resimulated.
    RollbackExecuted {
        /// First mispredicted frame (the rollback target).
        to_frame: u64,
        /// Frames the pointer was rolled back (pointer − to_frame).
        depth: u64,
        /// Frames re-executed to return to the present.
        resimulated: u64,
    },
    /// One stage of an input word's frame-lifecycle span chain (tracing).
    ///
    /// The `(session, site)` half of the correlation key is constant per
    /// handle and lives in the trace-dump header (see
    /// [`Telemetry::trace_jsonl`](crate::Telemetry::trace_jsonl)); the
    /// record itself carries the frame plus the peer the stage involves.
    Span {
        /// Lifecycle stage reached.
        stage: SpanStage,
        /// The input-word frame the span belongs to.
        frame: u64,
        /// Stage-dependent peer site: the destination for `Sent`/`Encoded`,
        /// the origin for `Received`, the remote site whose word was
        /// predicted or mispredicted, and the local site for purely local
        /// stages.
        peer: u8,
    },
    /// A relay accepted a member registration for a session.
    RelayRegistered {
        /// The session joined.
        session: u32,
        /// The member's site number.
        site: u8,
        /// `true` for a read-only spectator.
        spectator: bool,
    },
    /// A relay evicted a member for heartbeat silence.
    RelayEvicted {
        /// The session the member was evicted from.
        session: u32,
        /// The evicted member's site number.
        site: u8,
    },
    /// Periodic report of the machine's interpreter decode-cache activity.
    /// All fields are deltas since the previous report, so summing events
    /// reconstructs the session totals (and flushes spiking alongside
    /// misses is the signature of self-modifying code defeating the cache).
    DecodeCacheReport {
        /// Instructions dispatched from a warm cache slot since last report.
        hits: u64,
        /// Instructions that needed a fresh decode since last report.
        misses: u64,
        /// Whole-cache flushes (image loads / state restores) since last
        /// report.
        flushes: u64,
        /// Fused-pair dispatches (each retired two instructions) since last
        /// report — fusion coverage per session at a glance.
        fused: u64,
    },
}

impl EventKind {
    /// Stable machine-readable name, used as the `"event"` field in JSONL
    /// dumps and convenient for filtering in tests.
    pub const fn name(&self) -> &'static str {
        match self {
            EventKind::FrameBegun { .. } => "frame_begun",
            EventKind::FrameExecuted { .. } => "frame_executed",
            EventKind::StallBegin { .. } => "stall_begin",
            EventKind::StallEnd { .. } => "stall_end",
            EventKind::InputSent { .. } => "input_sent",
            EventKind::InputReceived { .. } => "input_received",
            EventKind::PaceAdjustment { .. } => "pace_adjustment",
            EventKind::RttSample { .. } => "rtt_sample",
            EventKind::PeerJoined { .. } => "peer_joined",
            EventKind::SnapshotServed { .. } => "snapshot_served",
            EventKind::SnapshotLoaded { .. } => "snapshot_loaded",
            EventKind::PacketDropped { .. } => "packet_dropped",
            EventKind::PacketDuplicated { .. } => "packet_duplicated",
            EventKind::DesyncDetected { .. } => "desync_detected",
            EventKind::CheckpointSaved { .. } => "checkpoint_saved",
            EventKind::InputMispredicted { .. } => "input_mispredicted",
            EventKind::RollbackExecuted { .. } => "rollback_executed",
            EventKind::Span { .. } => "span",
            EventKind::RelayRegistered { .. } => "relay_registered",
            EventKind::RelayEvicted { .. } => "relay_evicted",
            EventKind::DecodeCacheReport { .. } => "decode_cache_report",
        }
    }
}

/// One flight-recorder entry: an [`EventKind`] stamped with the
/// (virtual or wall-clock) time it happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Appends this event as one JSON object (no trailing newline) to `out`.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t_us\":{},\"event\":\"{}\"",
            self.at.as_micros(),
            self.kind.name()
        );
        match self.kind {
            EventKind::FrameBegun { frame } => {
                let _ = write!(out, ",\"frame\":{frame}");
            }
            EventKind::FrameExecuted { frame, frame_time } => {
                let _ = write!(
                    out,
                    ",\"frame\":{frame},\"frame_time_us\":{}",
                    frame_time.as_micros()
                );
            }
            EventKind::StallBegin { frame } => {
                let _ = write!(out, ",\"frame\":{frame}");
            }
            EventKind::StallEnd { frame, duration } => {
                let _ = write!(
                    out,
                    ",\"frame\":{frame},\"duration_us\":{}",
                    duration.as_micros()
                );
            }
            EventKind::InputSent {
                to,
                first,
                count,
                retransmitted,
            } => {
                let _ = write!(
                    out,
                    ",\"to\":{to},\"first\":{first},\"count\":{count},\"retransmitted\":{retransmitted}"
                );
            }
            EventKind::InputReceived {
                from,
                first,
                count,
                fresh,
                duplicate,
            } => {
                let _ = write!(
                    out,
                    ",\"from\":{from},\"first\":{first},\"count\":{count},\"fresh\":{fresh},\"duplicate\":{duplicate}"
                );
            }
            EventKind::PaceAdjustment { delta } => {
                let _ = write!(out, ",\"delta_us\":{}", delta.as_micros());
            }
            EventKind::RttSample { rtt } => {
                let _ = write!(out, ",\"rtt_us\":{}", rtt.as_micros());
            }
            EventKind::PeerJoined { site } => {
                let _ = write!(out, ",\"site\":{site}");
            }
            EventKind::SnapshotServed { frame, bytes }
            | EventKind::SnapshotLoaded { frame, bytes } => {
                let _ = write!(out, ",\"frame\":{frame},\"bytes\":{bytes}");
            }
            EventKind::PacketDropped { from, to, overflow } => {
                let _ = write!(out, ",\"from\":{from},\"to\":{to},\"overflow\":{overflow}");
            }
            EventKind::PacketDuplicated { from, to } => {
                let _ = write!(out, ",\"from\":{from},\"to\":{to}");
            }
            EventKind::DesyncDetected { frame } => {
                let _ = write!(out, ",\"frame\":{frame}");
            }
            EventKind::CheckpointSaved { frame, bytes } => {
                let _ = write!(out, ",\"frame\":{frame},\"bytes\":{bytes}");
            }
            EventKind::InputMispredicted { frame, site } => {
                let _ = write!(out, ",\"frame\":{frame},\"site\":{site}");
            }
            EventKind::RollbackExecuted {
                to_frame,
                depth,
                resimulated,
            } => {
                let _ = write!(
                    out,
                    ",\"to_frame\":{to_frame},\"depth\":{depth},\"resimulated\":{resimulated}"
                );
            }
            EventKind::Span { stage, frame, peer } => {
                let _ = write!(
                    out,
                    ",\"stage\":\"{}\",\"frame\":{frame},\"peer\":{peer}",
                    stage.name()
                );
            }
            EventKind::RelayRegistered {
                session,
                site,
                spectator,
            } => {
                let _ = write!(
                    out,
                    ",\"session\":{session},\"site\":{site},\"spectator\":{spectator}"
                );
            }
            EventKind::RelayEvicted { session, site } => {
                let _ = write!(out, ",\"session\":{session},\"site\":{site}");
            }
            EventKind::DecodeCacheReport {
                hits,
                misses,
                flushes,
                fused,
            } => {
                let _ = write!(
                    out,
                    ",\"hits\":{hits},\"misses\":{misses},\"flushes\":{flushes},\"fused\":{fused}"
                );
            }
        }
        out.push('}');
    }

    /// This event as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        self.write_json(&mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_timestamp_name_and_payload() {
        let e = Event {
            at: SimTime::from_millis(42),
            kind: EventKind::StallEnd {
                frame: 7,
                duration: SimDuration::from_micros(1500),
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"t_us\":42000,\"event\":\"stall_end\",\"frame\":7,\"duration_us\":1500}"
        );
    }

    #[test]
    fn every_kind_serializes_with_its_name() {
        let kinds = [
            EventKind::FrameBegun { frame: 1 },
            EventKind::FrameExecuted {
                frame: 1,
                frame_time: SimDuration::from_micros(2),
            },
            EventKind::StallBegin { frame: 1 },
            EventKind::StallEnd {
                frame: 1,
                duration: SimDuration::from_micros(2),
            },
            EventKind::InputSent {
                to: 1,
                first: 2,
                count: 3,
                retransmitted: 1,
            },
            EventKind::InputReceived {
                from: 1,
                first: 2,
                count: 3,
                fresh: 2,
                duplicate: false,
            },
            EventKind::PaceAdjustment {
                delta: SimDelta::from_micros(-5),
            },
            EventKind::RttSample {
                rtt: SimDuration::from_micros(9),
            },
            EventKind::PeerJoined { site: 1 },
            EventKind::SnapshotServed {
                frame: 4,
                bytes: 100,
            },
            EventKind::SnapshotLoaded {
                frame: 4,
                bytes: 100,
            },
            EventKind::PacketDropped {
                from: 0,
                to: 1,
                overflow: false,
            },
            EventKind::PacketDuplicated { from: 0, to: 1 },
            EventKind::DesyncDetected { frame: 9 },
            EventKind::CheckpointSaved {
                frame: 30,
                bytes: 256,
            },
            EventKind::InputMispredicted { frame: 31, site: 1 },
            EventKind::RollbackExecuted {
                to_frame: 31,
                depth: 4,
                resimulated: 6,
            },
            EventKind::Span {
                stage: SpanStage::Received,
                frame: 31,
                peer: 1,
            },
            EventKind::RelayRegistered {
                session: 7,
                site: 1,
                spectator: true,
            },
            EventKind::RelayEvicted {
                session: 7,
                site: 1,
            },
            EventKind::DecodeCacheReport {
                hits: 100_000,
                misses: 12,
                flushes: 1,
                fused: 40_000,
            },
        ];
        for kind in kinds {
            let e = Event {
                at: SimTime::ZERO,
                kind,
            };
            let json = e.to_json();
            assert!(json.starts_with("{\"t_us\":0,\"event\":\""), "{json}");
            assert!(json.contains(kind.name()), "{json}");
            assert!(json.ends_with('}'), "{json}");
        }
    }
}
