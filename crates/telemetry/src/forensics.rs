//! Black-box forensics bundles.
//!
//! When a session hits an anomaly — a stall past threshold, a
//! rollback-depth spike, or a replica divergence — the surrounding
//! evidence is worth more than the aggregate counters: *which* frame,
//! what the flight recorder saw leading up to it, what the inputs were,
//! what state the machine held. This module turns a [`Telemetry`] handle
//! plus any caller-supplied artifacts into a self-contained postmortem
//! directory under `results/forensics/` (or wherever the caller points
//! it):
//!
//! ```text
//! results/forensics/desync-s3405775265-site1-t1234567/
//! ├── MANIFEST.txt            # trigger, identity, anomaly event, file list
//! ├── flight_recorder.jsonl   # trace dump incl. trace_meta header
//! ├── metrics.json            # metrics registry snapshot
//! └── <extras>                # recent input log, last keyframe, config...
//! ```
//!
//! Anomaly *detection* lives in [`Telemetry::record`] (which latches the
//! first anomalous event, see [`Telemetry::take_anomaly`]); the *dump* is
//! driven by harness code that owns filesystem access, keeping the
//! deterministic session crates free of I/O.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::event::{Event, EventKind};
use crate::handle::Telemetry;

/// A short, filename-safe trigger tag for an anomalous event.
pub fn trigger_tag(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::StallBegin { .. } | EventKind::StallEnd { .. } => "stall",
        EventKind::RollbackExecuted { .. } => "rollback_depth",
        EventKind::DesyncDetected { .. } => "desync",
        _ => "anomaly",
    }
}

/// Writes a black-box bundle for `anomaly` into a fresh directory under
/// `root`, returning the bundle directory.
///
/// The directory name is derived from the trigger, the handle's
/// `(session, site)` identity, and the anomaly timestamp, so repeated runs
/// of a deterministic harness overwrite their own bundle instead of
/// accumulating. `sections` are extra named artifacts (recent input log,
/// last keyframe, config dump, ...) written verbatim.
///
/// # Errors
///
/// Any filesystem error from creating the directory or writing a file.
pub fn write_bundle(
    root: &Path,
    telemetry: &Telemetry,
    anomaly: &Event,
    sections: &[(&str, Vec<u8>)],
) -> io::Result<PathBuf> {
    let (session, site) = telemetry.identity().unwrap_or((0, 0));
    let dir = root.join(format!(
        "{}-s{}-site{}-t{}",
        trigger_tag(&anomaly.kind),
        session,
        site,
        anomaly.at.as_micros()
    ));
    fs::create_dir_all(&dir)?;

    let trace = telemetry.trace_jsonl();
    fs::write(dir.join("flight_recorder.jsonl"), &trace)?;
    fs::write(dir.join("metrics.json"), telemetry.metrics_json())?;
    for (name, contents) in sections {
        fs::write(dir.join(name), contents)?;
    }

    let mut manifest = String::new();
    manifest.push_str("coplay black-box forensics bundle\n");
    manifest.push_str(&format!("trigger: {}\n", trigger_tag(&anomaly.kind)));
    manifest.push_str(&format!("session: {session}\nsite: {site}\n"));
    manifest.push_str(&format!("anomaly: {}\n", anomaly.to_json()));
    manifest.push_str(&format!(
        "flight_recorder: {} events, {} dropped ({} spans)\n",
        telemetry.event_count(),
        telemetry.dropped_events(),
        telemetry.dropped_spans()
    ));
    manifest.push_str("files: MANIFEST.txt flight_recorder.jsonl metrics.json");
    for (name, _) in sections {
        manifest.push(' ');
        manifest.push_str(name);
    }
    manifest.push('\n');
    fs::write(dir.join("MANIFEST.txt"), manifest)?;
    Ok(dir)
}

/// Takes the handle's latched anomaly, if any, and writes a bundle for it.
///
/// Returns `Ok(None)` when nothing anomalous happened (or the handle is
/// disabled) — the cheap common case harnesses call after every run.
///
/// # Errors
///
/// Any filesystem error from [`write_bundle`].
pub fn dump_if_anomalous(
    root: &Path,
    telemetry: &Telemetry,
    sections: &[(&str, Vec<u8>)],
) -> io::Result<Option<PathBuf>> {
    match telemetry.take_anomaly() {
        Some(anomaly) => write_bundle(root, telemetry, &anomaly, sections).map(Some),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_clock::{SimDuration, SimTime};

    #[test]
    fn bundle_contains_trace_metrics_and_sections() {
        let t = Telemetry::tracing(99, 2);
        t.record(
            SimTime::from_millis(5),
            EventKind::FrameExecuted {
                frame: 1,
                frame_time: SimDuration::from_micros(16_667),
            },
        );
        t.record(
            SimTime::from_millis(6),
            EventKind::DesyncDetected { frame: 2 },
        );

        let root = std::env::temp_dir().join("coplay-test-forensics");
        let dir = dump_if_anomalous(&root, &t, &[("config.txt", b"cfps=60".to_vec())])
            .unwrap()
            .expect("desync latches an anomaly");
        assert!(dir
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("desync-s99-site2"));

        let manifest = fs::read_to_string(dir.join("MANIFEST.txt")).unwrap();
        assert!(manifest.contains("trigger: desync"), "{manifest}");
        assert!(manifest.contains("config.txt"), "{manifest}");
        let trace = fs::read_to_string(dir.join("flight_recorder.jsonl")).unwrap();
        assert!(trace.contains("\"event\":\"trace_meta\""));
        assert!(trace.contains("\"event\":\"desync_detected\""));
        assert!(!fs::read_to_string(dir.join("metrics.json"))
            .unwrap()
            .is_empty());
        assert_eq!(fs::read(dir.join("config.txt")).unwrap(), b"cfps=60");

        assert!(
            dump_if_anomalous(&root, &t, &[]).unwrap().is_none(),
            "anomaly was taken by the first dump"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn quiet_sessions_dump_nothing() {
        let t = Telemetry::recording();
        t.record(SimTime::ZERO, EventKind::FrameBegun { frame: 0 });
        let root = std::env::temp_dir().join("coplay-test-forensics-quiet");
        assert!(dump_if_anomalous(&root, &t, &[]).unwrap().is_none());
        assert!(!root.exists(), "no directory is created for quiet runs");
    }
}
