//! The cloneable `Telemetry` handle threaded through the stack.

use crate::event::{Event, EventKind};
use crate::metrics::MetricsRegistry;
use crate::recorder::FlightRecorder;
use coplay_clock::SimTime;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default flight-recorder capacity for [`Telemetry::recording`].
const DEFAULT_CAPACITY: usize = 16_384;

/// The shared sink behind an enabled handle.
#[derive(Debug)]
struct Sink {
    recorder: FlightRecorder,
    metrics: MetricsRegistry,
}

/// A cheap, cloneable handle to a flight recorder plus metrics registry.
///
/// The default handle ([`Telemetry::disabled`]) is a **no-op sink**: every
/// recording method is a single `Option` check that performs no work and
/// no allocation, so instrumentation can stay in place unconditionally on
/// hot paths. An enabled handle ([`Telemetry::recording`]) shares one sink
/// among all its clones, which is what lets a session hand the same trace
/// to its pacer, input synchronizer, and RTT estimator.
///
/// Recording an event also derives the obvious metrics from it (frame-time
/// and stall histograms, message counters, ...), so call sites make exactly
/// one telemetry call per occurrence.
///
/// Cloning is `O(1)`. The handle is `Send + Sync`; concurrent recorders
/// serialize on an internal mutex (uncontended in the deterministic
/// simulator, negligible next to a frame step elsewhere).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Sink>>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(disabled)"),
            Some(_) => write!(f, "Telemetry(enabled, {} events)", self.event_count()),
        }
    }
}

/// Two handles are equal when they are the *same* sink (or both disabled).
///
/// This intentionally ignores recorded contents so that configuration
/// structs carrying a handle can keep deriving `PartialEq`: a config clone
/// compares equal to its original even after more events arrive.
impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Telemetry {
    /// A disabled handle: every recording call is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with the default flight-recorder capacity
    /// (16 384 events).
    pub fn recording() -> Self {
        Telemetry::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled handle retaining at most `events` flight-recorder events.
    ///
    /// # Panics
    ///
    /// Panics if `events` is zero.
    pub fn with_capacity(events: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Sink {
                recorder: FlightRecorder::new(events),
                metrics: MetricsRegistry::new(),
            }))),
        }
    }

    /// `true` if this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Sink>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Records an event into the flight recorder and derives its metrics.
    ///
    /// No-op (and allocation-free) when disabled.
    pub fn record(&self, at: SimTime, kind: EventKind) {
        let Some(mut sink) = self.lock() else { return };
        sink.recorder.record(at, kind);
        derive_metrics(&mut sink.metrics, &kind);
    }

    /// Adds `v` to a named counter. No-op when disabled.
    pub fn counter_add(&self, name: &'static str, v: u64) {
        if let Some(mut sink) = self.lock() {
            sink.metrics.counter_add(name, v);
        }
    }

    /// Sets a named gauge. No-op when disabled.
    pub fn gauge_set(&self, name: &'static str, v: i64) {
        if let Some(mut sink) = self.lock() {
            sink.metrics.gauge_set(name, v);
        }
    }

    /// Records a sample into a named histogram. No-op when disabled.
    pub fn observe(&self, name: &'static str, v: u64) {
        if let Some(mut sink) = self.lock() {
            sink.metrics.observe(name, v);
        }
    }

    /// Number of events currently retained (0 when disabled).
    pub fn event_count(&self) -> usize {
        self.lock().map_or(0, |s| s.recorder.len())
    }

    /// Number of events evicted by ring-buffer wraparound.
    pub fn dropped_events(&self) -> u64 {
        self.lock().map_or(0, |s| s.recorder.dropped())
    }

    /// Copies the retained events out, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<Event> {
        self.lock().map_or_else(Vec::new, |s| s.recorder.to_vec())
    }

    /// The current value of a named counter (0 when disabled or untouched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().map_or(0, |s| s.metrics.counter(name))
    }

    /// The current value of a named gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.lock().and_then(|s| s.metrics.gauge(name))
    }

    /// The `p`-quantile of a named histogram, or `None` if it has no
    /// samples (or the handle is disabled).
    pub fn percentile(&self, name: &str, p: f64) -> Option<u64> {
        self.lock()
            .and_then(|s| s.metrics.histogram(name).map(|h| h.percentile(p)))
    }

    /// Dumps the flight recorder as JSON Lines (empty when disabled).
    pub fn dump_jsonl(&self) -> String {
        self.lock()
            .map_or_else(String::new, |s| s.recorder.to_jsonl())
    }

    /// Snapshots all metrics as one JSON object (`"{}"`-ish when disabled).
    pub fn metrics_json(&self) -> String {
        self.lock()
            .map_or_else(|| MetricsRegistry::new().to_json(), |s| s.metrics.to_json())
    }

    /// Renders all metrics in Prometheus text exposition format with the
    /// standard `coplay` prefix (empty string when disabled).
    pub fn prometheus(&self) -> String {
        self.prometheus_with_prefix("coplay")
    }

    /// Renders all metrics in Prometheus text exposition format with a
    /// caller-chosen metric name prefix.
    pub fn prometheus_with_prefix(&self, prefix: &str) -> String {
        self.lock()
            .map_or_else(String::new, |s| s.metrics.prometheus(prefix))
    }

    /// Discards all recorded events and metrics (keeps the handle enabled).
    pub fn clear(&self) {
        if let Some(mut sink) = self.lock() {
            sink.recorder.clear();
            sink.metrics = MetricsRegistry::new();
        }
    }
}

/// Maps an event to the metrics it implies, so instrumentation points make
/// a single `record` call.
fn derive_metrics(m: &mut MetricsRegistry, kind: &EventKind) {
    match *kind {
        EventKind::FrameBegun { .. } => {}
        EventKind::FrameExecuted { frame_time, .. } => {
            m.counter_add("frames_total", 1);
            m.observe("frame_time_us", frame_time.as_micros());
        }
        EventKind::StallBegin { .. } => {
            m.counter_add("stalls_total", 1);
        }
        EventKind::StallEnd { duration, .. } => {
            m.observe("stall_us", duration.as_micros());
        }
        EventKind::InputSent {
            count,
            retransmitted,
            ..
        } => {
            m.counter_add("input_messages_sent_total", 1);
            m.counter_add("input_frames_sent_total", count as u64);
            m.counter_add("retransmitted_frames_sent_total", retransmitted as u64);
        }
        EventKind::InputReceived {
            count,
            fresh,
            duplicate,
            ..
        } => {
            m.counter_add("input_messages_received_total", 1);
            m.counter_add("input_frames_received_total", count as u64);
            m.counter_add(
                "retransmitted_frames_received_total",
                (count - fresh) as u64,
            );
            if duplicate {
                m.counter_add("duplicate_messages_received_total", 1);
            }
        }
        EventKind::PaceAdjustment { delta } => {
            m.counter_add("pace_adjustments_total", 1);
            m.observe("pace_adjust_us", delta.abs().as_micros());
        }
        EventKind::RttSample { rtt } => {
            m.observe("rtt_us", rtt.as_micros());
        }
        EventKind::PeerJoined { .. } => {
            m.counter_add("peers_joined_total", 1);
        }
        EventKind::SnapshotServed { bytes, .. } => {
            m.counter_add("snapshots_served_total", 1);
            m.counter_add("snapshot_bytes_sent_total", bytes);
        }
        EventKind::SnapshotLoaded { .. } => {
            m.counter_add("snapshots_loaded_total", 1);
        }
        EventKind::PacketDropped { overflow, .. } => {
            m.counter_add("packets_dropped_total", 1);
            if overflow {
                m.counter_add("packets_overflowed_total", 1);
            }
        }
        EventKind::PacketDuplicated { .. } => {
            m.counter_add("packets_duplicated_total", 1);
        }
        EventKind::DesyncDetected { .. } => {
            m.counter_add("desyncs_total", 1);
        }
        EventKind::CheckpointSaved { bytes, .. } => {
            m.counter_add("checkpoints_saved_total", 1);
            m.observe("snapshot_bytes", bytes);
        }
        EventKind::InputMispredicted { .. } => {
            m.counter_add("mispredicted_frames_total", 1);
        }
        EventKind::RollbackExecuted {
            depth, resimulated, ..
        } => {
            m.counter_add("rollbacks_total", 1);
            m.counter_add("resimulated_frames_total", resimulated);
            m.observe("rollback_depth_frames", depth);
            m.observe("resimulated_frames", resimulated);
        }
        EventKind::DecodeCacheReport {
            hits,
            misses,
            flushes,
        } => {
            // The event carries deltas, so plain counter adds reconstruct
            // the session totals.
            m.counter_add("decode_cache_hits_total", hits);
            m.counter_add("decode_cache_misses_total", misses);
            m.counter_add("decode_cache_flushes_total", flushes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_clock::SimDuration;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        t.record(SimTime::ZERO, EventKind::FrameBegun { frame: 0 });
        t.counter_add("x", 1);
        t.observe("y", 1);
        t.gauge_set("z", 1);
        assert!(!t.is_enabled());
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.counter("x"), 0);
        assert_eq!(t.percentile("y", 0.5), None);
        assert!(t.dump_jsonl().is_empty());
        assert!(t.prometheus().is_empty());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
        assert_eq!(Telemetry::default(), Telemetry::disabled());
    }

    #[test]
    fn clones_share_one_sink() {
        let a = Telemetry::recording();
        let b = a.clone();
        b.record(SimTime::from_micros(5), EventKind::FrameBegun { frame: 1 });
        assert_eq!(a.event_count(), 1);
        assert_eq!(a, b);
        assert_ne!(a, Telemetry::recording(), "distinct sinks are not equal");
    }

    #[test]
    fn record_derives_metrics() {
        let t = Telemetry::recording();
        t.record(
            SimTime::from_millis(1),
            EventKind::FrameExecuted {
                frame: 0,
                frame_time: SimDuration::from_micros(16_667),
            },
        );
        t.record(
            SimTime::from_millis(2),
            EventKind::InputReceived {
                from: 1,
                first: 0,
                count: 4,
                fresh: 1,
                duplicate: false,
            },
        );
        t.record(
            SimTime::from_millis(3),
            EventKind::InputReceived {
                from: 1,
                first: 0,
                count: 4,
                fresh: 0,
                duplicate: true,
            },
        );
        assert_eq!(t.counter("frames_total"), 1);
        assert_eq!(t.counter("input_messages_received_total"), 2);
        assert_eq!(t.counter("retransmitted_frames_received_total"), 3 + 4);
        assert_eq!(t.counter("duplicate_messages_received_total"), 1);
        assert!(t.percentile("frame_time_us", 0.5).unwrap() >= 16_667);
    }

    #[test]
    fn dump_is_chronological_jsonl() {
        let t = Telemetry::with_capacity(4);
        for n in 0..6u64 {
            t.record(
                SimTime::from_micros(n * 10),
                EventKind::FrameBegun { frame: n },
            );
        }
        let dump = t.dump_jsonl();
        assert_eq!(dump.lines().count(), 4);
        assert_eq!(t.dropped_events(), 2);
        let times: Vec<u64> = t.events().iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![20, 30, 40, 50]);
    }

    #[test]
    fn clear_keeps_handle_enabled() {
        let t = Telemetry::recording();
        t.record(SimTime::ZERO, EventKind::FrameBegun { frame: 0 });
        t.clear();
        assert!(t.is_enabled());
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.counter("frames_total"), 0);
    }

    #[test]
    fn debug_does_not_leak_contents() {
        assert_eq!(
            format!("{:?}", Telemetry::disabled()),
            "Telemetry(disabled)"
        );
        assert!(format!("{:?}", Telemetry::recording()).starts_with("Telemetry(enabled"));
    }
}
