//! The cloneable `Telemetry` handle threaded through the stack.

use crate::event::{Event, EventKind};
use crate::metrics::MetricsRegistry;
use crate::recorder::FlightRecorder;
use crate::span::SpanStage;
use coplay_clock::{SimDuration, SimTime};
use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default flight-recorder capacity for [`Telemetry::recording`].
const DEFAULT_CAPACITY: usize = 16_384;

/// A stall longer than this latches an anomaly (see
/// [`Telemetry::take_anomaly`]). Roughly 12 frames at 60 FPS — twice the
/// paper's local-lag budget, far past any pacing hiccup.
const DEFAULT_STALL_ANOMALY: SimDuration = SimDuration::from_millis(200);

/// A rollback this deep (frames) latches an anomaly. The speculation
/// window defaults to 30 frames; repairs near that depth mean predictions
/// are failing wholesale.
const DEFAULT_DEPTH_ANOMALY: u64 = 20;

/// The shared sink behind an enabled handle.
#[derive(Debug)]
struct Sink {
    recorder: FlightRecorder,
    metrics: MetricsRegistry,
    /// Correlation identity stamped into trace dumps: an arbitrary session
    /// key (commonly the experiment seed or lobby session id) and the
    /// local site number.
    session: u64,
    site: u8,
    /// Where [`Telemetry::flush`] persists the trace, if anywhere.
    trace_path: Option<PathBuf>,
    /// First anomalous event observed since the last
    /// [`Telemetry::take_anomaly`], latched for black-box dumping.
    anomaly: Option<Event>,
    stall_anomaly: SimDuration,
    depth_anomaly: u64,
}

impl Sink {
    fn new(capacity: usize) -> Sink {
        Sink {
            recorder: FlightRecorder::new(capacity),
            metrics: MetricsRegistry::new(),
            session: 0,
            site: 0,
            trace_path: None,
            anomaly: None,
            stall_anomaly: DEFAULT_STALL_ANOMALY,
            depth_anomaly: DEFAULT_DEPTH_ANOMALY,
        }
    }
}

/// A cheap, cloneable handle to a flight recorder plus metrics registry.
///
/// The default handle ([`Telemetry::disabled`]) is a **no-op sink**: every
/// recording method is a single `Option` check that performs no work and
/// no allocation, so instrumentation can stay in place unconditionally on
/// hot paths. An enabled handle ([`Telemetry::recording`]) shares one sink
/// among all its clones, which is what lets a session hand the same trace
/// to its pacer, input synchronizer, and RTT estimator.
///
/// Recording an event also derives the obvious metrics from it (frame-time
/// and stall histograms, message counters, ...), so call sites make exactly
/// one telemetry call per occurrence.
///
/// Cloning is `O(1)`. The handle is `Send + Sync`; concurrent recorders
/// serialize on an internal mutex (uncontended in the deterministic
/// simulator, negligible next to a frame step elsewhere).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Sink>>>,
    /// Span tracing on/off, decided at construction and copied by clones.
    /// Kept on the handle (not in the sink) so the [`Telemetry::span`]
    /// hot path is a branch on a local bool, never a lock, when tracing
    /// is off.
    trace: bool,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(disabled)"),
            Some(_) => write!(f, "Telemetry(enabled, {} events)", self.event_count()),
        }
    }
}

/// Two handles are equal when they are the *same* sink (or both disabled).
///
/// This intentionally ignores recorded contents so that configuration
/// structs carrying a handle can keep deriving `PartialEq`: a config clone
/// compares equal to its original even after more events arrive.
impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Telemetry {
    /// A disabled handle: every recording call is a no-op.
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            trace: false,
        }
    }

    /// An enabled handle with the default flight-recorder capacity
    /// (16 384 events). Span tracing is **off**; see
    /// [`Telemetry::tracing`].
    pub fn recording() -> Self {
        Telemetry::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled handle retaining at most `events` flight-recorder events.
    ///
    /// # Panics
    ///
    /// Panics if `events` is zero.
    pub fn with_capacity(events: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Sink::new(events)))),
            trace: false,
        }
    }

    /// An enabled handle with frame-lifecycle span tracing **on** and the
    /// `(session, site)` correlation identity set.
    ///
    /// `session` is an arbitrary key shared by every site of one run (the
    /// experiment seed, a lobby session id, ...); `site` is the
    /// local site number. Both are stamped into the `trace_meta` header of
    /// [`Telemetry::trace_jsonl`] so dumps from different sites can be
    /// merged into one cross-site timeline.
    pub fn tracing(session: u64, site: u8) -> Self {
        let t = Telemetry::recording().with_tracing();
        t.set_identity(session, site);
        t
    }

    /// Turns span tracing on for this handle (and subsequent clones of
    /// it). Requires an enabled handle; a disabled handle stays a no-op.
    ///
    /// When the crate is built without the `trace` feature this is
    /// honored in name only: [`Telemetry::span`] compiles to nothing.
    #[must_use]
    pub fn with_tracing(mut self) -> Self {
        self.trace = self.inner.is_some();
        self
    }

    /// `true` if this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// `true` if [`Telemetry::span`] records span events.
    pub fn is_tracing(&self) -> bool {
        cfg!(feature = "trace") && self.trace
    }

    fn lock(&self) -> Option<MutexGuard<'_, Sink>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Records an event into the flight recorder and derives its metrics.
    ///
    /// No-op (and allocation-free) when disabled.
    pub fn record(&self, at: SimTime, kind: EventKind) {
        let Some(mut sink) = self.lock() else { return };
        sink.recorder.record(at, kind);
        derive_metrics(&mut sink.metrics, &kind);
        // Latch the first anomalous event for black-box forensics (see
        // `take_anomaly`): a stall past the threshold, a rollback near the
        // speculation window, or any replica divergence.
        if sink.anomaly.is_none() {
            let anomalous = match kind {
                EventKind::StallEnd { duration, .. } => duration >= sink.stall_anomaly,
                EventKind::RollbackExecuted { depth, .. } => depth >= sink.depth_anomaly,
                EventKind::DesyncDetected { .. } => true,
                _ => false,
            };
            if anomalous {
                sink.anomaly = Some(Event { at, kind });
            }
        }
    }

    /// Records one frame-lifecycle span stage.
    ///
    /// When tracing is off (the default, including every plain
    /// [`Telemetry::recording`] handle) this is a branch on a local bool —
    /// no lock, no allocation. Building the crate without the `trace`
    /// feature compiles the whole body away.
    #[inline]
    pub fn span(&self, at: SimTime, stage: SpanStage, frame: u64, peer: u8) {
        #[cfg(feature = "trace")]
        if self.trace {
            self.record(at, EventKind::Span { stage, frame, peer });
        }
        #[cfg(not(feature = "trace"))]
        let _ = (at, stage, frame, peer);
    }

    /// Sets the `(session, site)` correlation identity stamped into trace
    /// dumps. No-op when disabled.
    pub fn set_identity(&self, session: u64, site: u8) {
        if let Some(mut sink) = self.lock() {
            sink.session = session;
            sink.site = site;
        }
    }

    /// The `(session, site)` correlation identity, if the handle is
    /// enabled.
    pub fn identity(&self) -> Option<(u64, u8)> {
        self.lock().map(|s| (s.session, s.site))
    }

    /// Sets where [`Telemetry::flush`] persists the trace dump. No-op when
    /// disabled.
    pub fn set_trace_path(&self, path: impl Into<PathBuf>) {
        if let Some(mut sink) = self.lock() {
            sink.trace_path = Some(path.into());
        }
    }

    /// Writes the trace dump ([`Telemetry::trace_jsonl`]) to the path set
    /// by [`Telemetry::set_trace_path`], creating parent directories.
    ///
    /// Returns `Ok(None)` when the handle is disabled or no path is set;
    /// `Ok(Some(path))` after a successful write. Finished sessions call
    /// this on *every* exit path so buffered trace records are never
    /// silently dropped.
    ///
    /// # Errors
    ///
    /// Any filesystem error from creating directories or writing the file.
    pub fn flush(&self) -> std::io::Result<Option<PathBuf>> {
        let (path, dump) = {
            let Some(sink) = self.lock() else {
                return Ok(None);
            };
            let Some(path) = sink.trace_path.clone() else {
                return Ok(None);
            };
            (path, trace_jsonl_of(&sink))
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&path, dump)?;
        Ok(Some(path))
    }

    /// Takes the latched anomaly, if one occurred since the last call:
    /// a stall past the configured threshold, a rollback-depth spike, or a
    /// detected desync. Used by harnesses to decide when to write a
    /// black-box forensics bundle (see [`crate::forensics`]).
    pub fn take_anomaly(&self) -> Option<Event> {
        self.lock().and_then(|mut s| s.anomaly.take())
    }

    /// Overrides the anomaly thresholds: stalls of `stall` or longer and
    /// rollbacks `depth` frames deep or deeper latch an anomaly.
    pub fn set_anomaly_thresholds(&self, stall: SimDuration, depth: u64) {
        if let Some(mut sink) = self.lock() {
            sink.stall_anomaly = stall;
            sink.depth_anomaly = depth;
        }
    }

    /// Adds `v` to a named counter. No-op when disabled.
    pub fn counter_add(&self, name: &'static str, v: u64) {
        if let Some(mut sink) = self.lock() {
            sink.metrics.counter_add(name, v);
        }
    }

    /// Sets a named gauge. No-op when disabled.
    pub fn gauge_set(&self, name: &'static str, v: i64) {
        if let Some(mut sink) = self.lock() {
            sink.metrics.gauge_set(name, v);
        }
    }

    /// Records a sample into a named histogram. No-op when disabled.
    pub fn observe(&self, name: &'static str, v: u64) {
        if let Some(mut sink) = self.lock() {
            sink.metrics.observe(name, v);
        }
    }

    /// Number of events currently retained (0 when disabled).
    pub fn event_count(&self) -> usize {
        self.lock().map_or(0, |s| s.recorder.len())
    }

    /// Number of events evicted by ring-buffer wraparound.
    pub fn dropped_events(&self) -> u64 {
        self.lock().map_or(0, |s| s.recorder.dropped())
    }

    /// Number of *span* records evicted by ring-buffer wraparound — the
    /// trace-completeness signal surfaced in lobby heartbeats.
    pub fn dropped_spans(&self) -> u64 {
        self.lock().map_or(0, |s| s.recorder.dropped_spans())
    }

    /// Copies the retained events out, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<Event> {
        self.lock().map_or_else(Vec::new, |s| s.recorder.to_vec())
    }

    /// The current value of a named counter (0 when disabled or untouched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().map_or(0, |s| s.metrics.counter(name))
    }

    /// The current value of a named gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.lock().and_then(|s| s.metrics.gauge(name))
    }

    /// The `p`-quantile of a named histogram, or `None` if it has no
    /// samples (or the handle is disabled).
    pub fn percentile(&self, name: &str, p: f64) -> Option<u64> {
        self.lock()
            .and_then(|s| s.metrics.histogram(name).map(|h| h.percentile(p)))
    }

    /// Dumps the flight recorder as JSON Lines (empty when disabled).
    pub fn dump_jsonl(&self) -> String {
        self.lock()
            .map_or_else(String::new, |s| s.recorder.to_jsonl())
    }

    /// Dumps the flight recorder as JSON Lines prefixed with a
    /// `trace_meta` header carrying the `(session, site)` correlation
    /// identity and the drop counters. This is the per-site artifact the
    /// `tracescope` tool merges into a cross-site timeline.
    ///
    /// Empty when disabled.
    pub fn trace_jsonl(&self) -> String {
        self.lock().map_or_else(String::new, |s| trace_jsonl_of(&s))
    }

    /// Snapshots all metrics as one JSON object (`"{}"`-ish when disabled).
    pub fn metrics_json(&self) -> String {
        self.lock()
            .map_or_else(|| MetricsRegistry::new().to_json(), |s| s.metrics.to_json())
    }

    /// Renders all metrics in Prometheus text exposition format with the
    /// standard `coplay` prefix (empty string when disabled).
    pub fn prometheus(&self) -> String {
        self.prometheus_with_prefix("coplay")
    }

    /// Renders all metrics in Prometheus text exposition format with a
    /// caller-chosen metric name prefix.
    pub fn prometheus_with_prefix(&self, prefix: &str) -> String {
        self.lock()
            .map_or_else(String::new, |s| s.metrics.prometheus(prefix))
    }

    /// Discards all recorded events, metrics, and any latched anomaly
    /// (keeps the handle enabled and its identity/thresholds intact).
    pub fn clear(&self) {
        if let Some(mut sink) = self.lock() {
            sink.recorder.clear();
            sink.metrics = MetricsRegistry::new();
            sink.anomaly = None;
        }
    }
}

/// Renders a sink's trace dump: one `trace_meta` header line, then the
/// flight recorder as JSONL.
fn trace_jsonl_of(sink: &Sink) -> String {
    let mut out = String::with_capacity(64 + sink.recorder.len() * 64);
    let _ = write!(
        out,
        "{{\"event\":\"trace_meta\",\"session\":{},\"site\":{},\"dropped_events\":{},\"dropped_spans\":{}}}",
        sink.session,
        sink.site,
        sink.recorder.dropped(),
        sink.recorder.dropped_spans(),
    );
    out.push('\n');
    out.push_str(&sink.recorder.to_jsonl());
    out
}

/// Maps an event to the metrics it implies, so instrumentation points make
/// a single `record` call.
fn derive_metrics(m: &mut MetricsRegistry, kind: &EventKind) {
    match *kind {
        EventKind::FrameBegun { .. } => {}
        EventKind::FrameExecuted { frame_time, .. } => {
            m.counter_add("frames_total", 1);
            m.observe("frame_time_us", frame_time.as_micros());
        }
        EventKind::StallBegin { .. } => {
            m.counter_add("stalls_total", 1);
        }
        EventKind::StallEnd { duration, .. } => {
            m.observe("stall_us", duration.as_micros());
        }
        EventKind::InputSent {
            count,
            retransmitted,
            ..
        } => {
            m.counter_add("input_messages_sent_total", 1);
            m.counter_add("input_frames_sent_total", count as u64);
            m.counter_add("retransmitted_frames_sent_total", retransmitted as u64);
        }
        EventKind::InputReceived {
            count,
            fresh,
            duplicate,
            ..
        } => {
            m.counter_add("input_messages_received_total", 1);
            m.counter_add("input_frames_received_total", count as u64);
            m.counter_add(
                "retransmitted_frames_received_total",
                (count - fresh) as u64,
            );
            if duplicate {
                m.counter_add("duplicate_messages_received_total", 1);
            }
        }
        EventKind::PaceAdjustment { delta } => {
            m.counter_add("pace_adjustments_total", 1);
            m.observe("pace_adjust_us", delta.abs().as_micros());
        }
        EventKind::RttSample { rtt } => {
            m.observe("rtt_us", rtt.as_micros());
        }
        EventKind::PeerJoined { .. } => {
            m.counter_add("peers_joined_total", 1);
        }
        EventKind::SnapshotServed { bytes, .. } => {
            m.counter_add("snapshots_served_total", 1);
            m.counter_add("snapshot_bytes_sent_total", bytes);
        }
        EventKind::SnapshotLoaded { .. } => {
            m.counter_add("snapshots_loaded_total", 1);
        }
        EventKind::PacketDropped { overflow, .. } => {
            m.counter_add("packets_dropped_total", 1);
            if overflow {
                m.counter_add("packets_overflowed_total", 1);
            }
        }
        EventKind::PacketDuplicated { .. } => {
            m.counter_add("packets_duplicated_total", 1);
        }
        EventKind::DesyncDetected { .. } => {
            m.counter_add("desyncs_total", 1);
        }
        EventKind::CheckpointSaved { bytes, .. } => {
            m.counter_add("checkpoints_saved_total", 1);
            m.observe("snapshot_bytes", bytes);
        }
        EventKind::InputMispredicted { .. } => {
            m.counter_add("mispredicted_frames_total", 1);
        }
        EventKind::RollbackExecuted {
            depth, resimulated, ..
        } => {
            m.counter_add("rollbacks_total", 1);
            m.counter_add("resimulated_frames_total", resimulated);
            m.observe("rollback_depth_frames", depth);
            m.observe("resimulated_frames", resimulated);
        }
        EventKind::Span { .. } => {
            m.counter_add("spans_recorded_total", 1);
        }
        EventKind::RelayRegistered { spectator, .. } => {
            m.counter_add("relay_registrations_total", 1);
            if spectator {
                m.counter_add("relay_spectators_total", 1);
            }
        }
        EventKind::RelayEvicted { .. } => {
            m.counter_add("relay_members_evicted_total", 1);
        }
        EventKind::DecodeCacheReport {
            hits,
            misses,
            flushes,
            fused,
        } => {
            // The event carries deltas, so plain counter adds reconstruct
            // the session totals.
            m.counter_add("decode_cache_hits_total", hits);
            m.counter_add("decode_cache_misses_total", misses);
            m.counter_add("decode_cache_flushes_total", flushes);
            m.counter_add("decode_cache_fused_total", fused);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coplay_clock::SimDuration;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        t.record(SimTime::ZERO, EventKind::FrameBegun { frame: 0 });
        t.counter_add("x", 1);
        t.observe("y", 1);
        t.gauge_set("z", 1);
        assert!(!t.is_enabled());
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.counter("x"), 0);
        assert_eq!(t.percentile("y", 0.5), None);
        assert!(t.dump_jsonl().is_empty());
        assert!(t.prometheus().is_empty());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
        assert_eq!(Telemetry::default(), Telemetry::disabled());
    }

    #[test]
    fn clones_share_one_sink() {
        let a = Telemetry::recording();
        let b = a.clone();
        b.record(SimTime::from_micros(5), EventKind::FrameBegun { frame: 1 });
        assert_eq!(a.event_count(), 1);
        assert_eq!(a, b);
        assert_ne!(a, Telemetry::recording(), "distinct sinks are not equal");
    }

    #[test]
    fn record_derives_metrics() {
        let t = Telemetry::recording();
        t.record(
            SimTime::from_millis(1),
            EventKind::FrameExecuted {
                frame: 0,
                frame_time: SimDuration::from_micros(16_667),
            },
        );
        t.record(
            SimTime::from_millis(2),
            EventKind::InputReceived {
                from: 1,
                first: 0,
                count: 4,
                fresh: 1,
                duplicate: false,
            },
        );
        t.record(
            SimTime::from_millis(3),
            EventKind::InputReceived {
                from: 1,
                first: 0,
                count: 4,
                fresh: 0,
                duplicate: true,
            },
        );
        assert_eq!(t.counter("frames_total"), 1);
        assert_eq!(t.counter("input_messages_received_total"), 2);
        assert_eq!(t.counter("retransmitted_frames_received_total"), 3 + 4);
        assert_eq!(t.counter("duplicate_messages_received_total"), 1);
        assert!(t.percentile("frame_time_us", 0.5).unwrap() >= 16_667);
    }

    #[test]
    fn dump_is_chronological_jsonl() {
        let t = Telemetry::with_capacity(4);
        for n in 0..6u64 {
            t.record(
                SimTime::from_micros(n * 10),
                EventKind::FrameBegun { frame: n },
            );
        }
        let dump = t.dump_jsonl();
        assert_eq!(dump.lines().count(), 4);
        assert_eq!(t.dropped_events(), 2);
        let times: Vec<u64> = t.events().iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![20, 30, 40, 50]);
    }

    #[test]
    fn clear_keeps_handle_enabled() {
        let t = Telemetry::recording();
        t.record(SimTime::ZERO, EventKind::FrameBegun { frame: 0 });
        t.clear();
        assert!(t.is_enabled());
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.counter("frames_total"), 0);
    }

    #[test]
    fn span_is_a_noop_unless_tracing() {
        let t = Telemetry::recording();
        assert!(!t.is_tracing());
        t.span(SimTime::ZERO, SpanStage::Sampled, 1, 0);
        assert_eq!(t.event_count(), 0, "untraced handle records no spans");

        let t = Telemetry::tracing(0xFEED, 3);
        assert!(t.is_tracing());
        t.span(SimTime::from_micros(7), SpanStage::Sampled, 1, 0);
        t.span(SimTime::from_micros(9), SpanStage::Sent, 1, 1);
        assert_eq!(t.event_count(), 2);
        assert_eq!(t.counter("spans_recorded_total"), 2);
        assert_eq!(t.identity(), Some((0xFEED, 3)));
        let clone = t.clone();
        assert!(clone.is_tracing(), "clones keep tracing on");

        let disabled = Telemetry::disabled().with_tracing();
        assert!(!disabled.is_tracing(), "disabled handles cannot trace");
        disabled.span(SimTime::ZERO, SpanStage::Sampled, 1, 0);
        assert_eq!(disabled.event_count(), 0);
    }

    #[test]
    fn trace_dump_carries_the_correlation_header() {
        let t = Telemetry::tracing(42, 1);
        t.span(SimTime::from_micros(5), SpanStage::Received, 9, 0);
        let dump = t.trace_jsonl();
        let mut lines = dump.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"event\":\"trace_meta\""), "{header}");
        assert!(header.contains("\"session\":42"), "{header}");
        assert!(header.contains("\"site\":1"), "{header}");
        assert!(header.contains("\"dropped_spans\":0"), "{header}");
        let span = lines.next().unwrap();
        assert!(span.contains("\"stage\":\"received\""), "{span}");
        assert!(span.contains("\"frame\":9"), "{span}");
        assert!(Telemetry::disabled().trace_jsonl().is_empty());
    }

    #[test]
    fn anomalies_latch_and_take_once() {
        let t = Telemetry::recording();
        t.record(
            SimTime::from_millis(1),
            EventKind::StallEnd {
                frame: 5,
                duration: SimDuration::from_millis(10),
            },
        );
        assert!(t.take_anomaly().is_none(), "short stalls are normal");
        t.record(
            SimTime::from_millis(2),
            EventKind::StallEnd {
                frame: 6,
                duration: SimDuration::from_millis(500),
            },
        );
        t.record(
            SimTime::from_millis(3),
            EventKind::DesyncDetected { frame: 7 },
        );
        let anomaly = t.take_anomaly().expect("long stall latches");
        assert!(
            matches!(anomaly.kind, EventKind::StallEnd { frame: 6, .. }),
            "first anomaly wins: {anomaly:?}"
        );
        assert!(t.take_anomaly().is_none(), "taken");

        t.set_anomaly_thresholds(SimDuration::from_millis(1), 3);
        t.record(
            SimTime::from_millis(4),
            EventKind::RollbackExecuted {
                to_frame: 10,
                depth: 3,
                resimulated: 4,
            },
        );
        assert!(t.take_anomaly().is_some(), "tightened depth threshold");
    }

    #[test]
    fn flush_writes_the_trace_to_its_path() {
        let t = Telemetry::tracing(7, 0);
        assert_eq!(t.flush().unwrap(), None, "no path set yet");
        t.span(SimTime::from_micros(1), SpanStage::Sampled, 0, 0);
        let path = std::env::temp_dir().join("coplay-test-flush/trace.jsonl");
        t.set_trace_path(&path);
        let written = t.flush().unwrap().expect("path set");
        let contents = std::fs::read_to_string(&written).unwrap();
        assert!(contents.starts_with("{\"event\":\"trace_meta\""));
        assert_eq!(contents.lines().count(), 2);
        let _ = std::fs::remove_file(&written);
    }

    #[test]
    fn debug_does_not_leak_contents() {
        assert_eq!(
            format!("{:?}", Telemetry::disabled()),
            "Telemetry(disabled)"
        );
        assert!(format!("{:?}", Telemetry::recording()).starts_with("Telemetry(enabled"));
    }
}
