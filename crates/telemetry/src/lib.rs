//! In-band observability for coplay lockstep sessions.
//!
//! The paper's evaluation measures frame pacing and inter-site synchrony
//! from an *external* time server; an operator of a real netplay service
//! needs the same signals *in band*. This crate provides three layers,
//! all free of external dependencies:
//!
//! 1. A **flight recorder** ([`FlightRecorder`]) — a fixed-capacity ring
//!    buffer of compact [`SimTime`](coplay_clock::SimTime)-stamped
//!    [`Event`]s (frame begun/executed, stall begin/end, input message
//!    sent/received, pace adjustment, RTT sample, join/snapshot, desync)
//!    that can be dumped as JSONL for post-mortem analysis.
//! 2. A **metrics registry** ([`MetricsRegistry`]) — counters, gauges and
//!    log-bucketed [`Histogram`]s with p50/p95/p99 accessors.
//! 3. **Exporters** — a JSONL snapshot writer and a Prometheus-style text
//!    exposition (a plain `String`, no HTTP anywhere).
//! 4. **Frame-lifecycle tracing** — causal [`SpanStage`] chains for every
//!    input word (sampled → encoded → sent → received → merged →
//!    confirmed, plus the rollback repair stages), recorded into the same
//!    flight-recorder ring under `(session, site, frame)` correlation
//!    keys. Tracing is opt-in per handle ([`Telemetry::tracing`]); when
//!    off, [`Telemetry::span`] is a branch on a local bool, and building
//!    without the `trace` feature compiles it away entirely.
//! 5. **Black-box forensics** ([`forensics`]) — anomaly-triggered
//!    postmortem bundles (flight-recorder tail, metrics, caller-supplied
//!    artifacts) dumped to a directory.
//!
//! The [`Telemetry`] handle ties the layers together. It is a cheap
//! clonable reference; the default (disabled) handle is a no-op sink
//! whose hot path is a single `Option` check with no allocation, so it
//! can be threaded through every layer of the stack unconditionally.
//!
//! ```
//! use coplay_clock::{SimDuration, SimTime};
//! use coplay_telemetry::{EventKind, Telemetry};
//!
//! let tel = Telemetry::recording();
//! tel.record(
//!     SimTime::from_millis(16),
//!     EventKind::FrameExecuted { frame: 0, frame_time: SimDuration::from_millis(16) },
//! );
//! assert_eq!(tel.event_count(), 1);
//! assert_eq!(tel.counter("frames_total"), 1);
//! assert!(tel.prometheus().contains("coplay_frame_time_us{quantile=\"0.5\"}"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
pub mod forensics;
mod handle;
mod metrics;
mod recorder;
mod span;

pub use event::{Event, EventKind};
pub use handle::Telemetry;
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::FlightRecorder;
pub use span::SpanStage;
